//! The query-level result cache: serve **repeated enumerations** from the
//! interned solution store instead of re-running Algorithm 3.
//!
//! Production traffic over a data graph is repetitive — the same keyword
//! query, the same multicast group, the same pin set arrive again and
//! again while the graph itself changes rarely. A [`ResultCache`] keys a
//! finished enumeration by `(problem kind, graph fingerprint, query
//! fingerprint, limit)` and stores its full delivered stream as
//! [`SolutionId`]s in one shared [`SolutionInterner`] arena; a later run
//! of the identical query replays the interned stream in the exact
//! original order — O(output) total, no search, no per-solution
//! allocation beyond what the consumer itself does.
//!
//! The cache is wired in behind the builder:
//! [`Enumeration::cached`](crate::solver::Enumeration::cached) consults it
//! before preparing the problem and records into it at the delivery point
//! (the merge point under
//! [`with_threads`](crate::solver::Enumeration::with_threads), so cached
//! streams are byte-identical to sequential ones). Only **complete**
//! streams are stored: a run the consumer aborted early (a sink returning
//! `Break` before the configured limit) is discarded, so a hit always
//! reproduces exactly what a cold run of the same builder configuration
//! would deliver.
//!
//! Capacity is bounded by [`ResultCache::with_capacity_bytes`]: entries
//! are evicted least-recently-used, their solutions' refcounts released,
//! and the shared arena compacted once dead bytes dominate. Hit/miss
//! counters surface both here ([`ResultCache::stats`]) and per run in
//! [`EnumStats`](crate::stats::EnumStats).
//!
//! ```
//! use steiner_core::cache::ResultCache;
//! use steiner_core::{Enumeration, SteinerTree};
//! use steiner_graph::{EdgeId, UndirectedGraph, VertexId};
//!
//! let g = UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
//! let cache: ResultCache<EdgeId> = ResultCache::new();
//! let w = [VertexId(0), VertexId(2)];
//!
//! // Cold: runs the engine, then stores the delivered stream.
//! let cold = Enumeration::new(SteinerTree::new(&g, &w))
//!     .cached(&cache)
//!     .collect_vec()
//!     .unwrap();
//! // Warm: identical query, identical stream — served from the cache.
//! let warm = Enumeration::new(SteinerTree::new(&g, &w))
//!     .cached(&cache)
//!     .collect_vec()
//!     .unwrap();
//! assert_eq!(cold, warm);
//! assert_eq!(cache.stats().hits, 1);
//! assert_eq!(cache.stats().misses, 1);
//! ```

use crate::intern::{SolutionId, SolutionInterner};
use crate::snapshot::{
    fnv1a, Reader, SnapshotError, SnapshotItem, Writer, MAGIC, SNAPSHOT_VERSION,
};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::ops::ControlFlow;
use std::sync::{Arc, Mutex};
use steiner_graph::epoch::{RegionMap, RegionSignature};
use steiner_graph::{DiGraph, UndirectedGraph, VertexId};

/// Compact the shared arena once dead bytes pass this share of it.
const COMPACT_DEAD_FRACTION: f64 = 0.5;

/// What a [`MinimalSteinerProblem`](crate::problem::MinimalSteinerProblem)
/// reports about its identity for caching: the problem kind, the
/// epoch-qualified **region signature** of the graph regions the query
/// touches, and a fingerprint of the query parameters (terminals,
/// terminal sets, root).
///
/// The region signature ([`RegionSignature`]) carries the `(region id,
/// region fingerprint)` pairs of every connected component the query's
/// vertices lie in. Because the signature is *part of the key*, an entry
/// hits iff every region its query touched is unchanged on the serving
/// graph — a mutation in one region leaves entries keyed to other regions
/// hitting, with no explicit epoch comparison needed at lookup time.
///
/// Two instances with equal keys must enumerate identical solution
/// streams; the fingerprints are ordinary 64-bit hashes, so implementors
/// hash every piece of state that influences the stream (collisions are
/// astronomically unlikely but not impossible — the cache trades that for
/// never retaining a copy of the graph).
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey {
    /// The problem kind (its `NAME`), separating e.g. Steiner-tree from
    /// terminal-Steiner-tree streams over the same graph and terminals.
    pub kind: &'static str,
    /// Region signature of the instance graph restricted to the query's
    /// vertices: which components the stream can mention, each pinned to
    /// its exact edge-id/endpoint assignment.
    pub regions: RegionSignature,
    /// Fingerprint of the query parameters (terminals / sets / root) in
    /// the problem's **canonical** form — the four paper problems hash
    /// sorted terminals (or the reduced pair list), since `prepare()`
    /// canonicalizes and the stream cannot depend on the caller's order.
    pub query_fingerprint: u64,
}

/// The full lookup key: a [`CacheKey`] plus the builder's delivery limit
/// (a `with_limit(10)` stream is a different — shorter — stream than the
/// unlimited one over the same instance).
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub(crate) struct QueryKey {
    pub(crate) key: CacheKey,
    pub(crate) limit: Option<u64>,
}

/// Counters describing a [`ResultCache`]'s effectiveness.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the store.
    pub hits: u64,
    /// Lookups that fell through to a real enumeration.
    pub misses: u64,
    /// Entries (distinct queries) currently stored.
    pub entries: u64,
    /// Solution references across all entries (an interned solution
    /// shared by `q` queries counts `q` times here but is stored once).
    pub solutions: u64,
    /// Bytes of live interned solution payload in the shared arena.
    pub bytes: u64,
    /// Entries dropped by LRU eviction so far.
    pub evictions: u64,
    /// Arena compactions performed so far (dead interned bytes reclaimed
    /// in place after evictions and rollbacks pushed the dead fraction
    /// past the threshold, plus the final reclaim of [`ResultCache::clear`]).
    pub compactions: u64,
}

/// Pressure deltas one cache mutation caused: entries evicted to make
/// room, and arena compactions it triggered. The builder folds these into
/// the recording run's [`EnumStats`](crate::stats::EnumStats) so cache
/// pressure is attributable per run (and, aggregated, per tenant).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct CachePressure {
    pub(crate) evicted: u64,
    pub(crate) compactions: u64,
}

struct Entry {
    ids: Vec<SolutionId>,
    last_used: u64,
}

struct Inner<Item> {
    store: SolutionInterner<Item>,
    map: HashMap<QueryKey, Entry>,
    /// Monotonic logical clock for LRU accounting.
    epoch: u64,
    capacity_bytes: Option<u64>,
    hits: u64,
    misses: u64,
    evictions: u64,
    compactions: u64,
}

impl<Item: Copy + Eq + Hash> Inner<Item> {
    /// Compacts the arena when dead bytes dominate, counting the pass.
    /// Returns how many compactions ran (0 or 1) for pressure accounting.
    fn maybe_compact(&mut self) -> u64 {
        if self.store.dead_fraction() > COMPACT_DEAD_FRACTION {
            self.store.compact();
            self.compactions += 1;
            1
        } else {
            0
        }
    }
}

impl<Item> Default for Inner<Item> {
    fn default() -> Self {
        Inner {
            store: SolutionInterner::default(),
            map: HashMap::new(),
            epoch: 0,
            capacity_bytes: None,
            hits: 0,
            misses: 0,
            evictions: 0,
            compactions: 0,
        }
    }
}

/// A shared, clonable, thread-safe query→solutions cache over one
/// hash-consing arena. See the [module documentation](self) for the
/// contract and an end-to-end example.
pub struct ResultCache<Item> {
    inner: Arc<Mutex<Inner<Item>>>,
}

impl<Item> Clone for ResultCache<Item> {
    fn clone(&self) -> Self {
        ResultCache {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<Item> Default for ResultCache<Item> {
    fn default() -> Self {
        ResultCache {
            inner: Arc::new(Mutex::new(Inner::default())),
        }
    }
}

impl<Item: Copy + Eq + Hash> ResultCache<Item> {
    /// An unbounded cache (entries live until [`Self::clear`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// A cache that evicts least-recently-used entries once the live
    /// interned payload exceeds `bytes`.
    ///
    /// The most recently stored entry is always retained, so a single
    /// stream larger than `bytes` stays cached (and over cap) until a
    /// newer entry displaces it — the cap bounds accumulation across
    /// queries, not the size of one answer.
    pub fn with_capacity_bytes(bytes: u64) -> Self {
        let cache = Self::default();
        cache.lock().capacity_bytes = Some(bytes);
        cache
    }

    /// Current effectiveness counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.lock();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            entries: inner.map.len() as u64,
            solutions: inner.map.values().map(|e| e.ids.len() as u64).sum(),
            bytes: inner.store.bytes(),
            evictions: inner.evictions,
            compactions: inner.compactions,
        }
    }

    /// Drops every entry and reclaims the arena.
    pub fn clear(&self) {
        let mut inner = self.lock();
        let entries: Vec<Entry> = inner.map.drain().map(|(_, e)| e).collect();
        for entry in entries {
            for id in entry.ids {
                inner.store.release(id);
            }
        }
        inner.store.compact();
        inner.compactions += 1;
    }

    /// Bytes of live interned payload (the figure reported as
    /// [`EnumStats::interned_bytes`](crate::stats::EnumStats) after a
    /// cached run).
    pub fn bytes(&self) -> u64 {
        self.lock().store.bytes()
    }

    /// Replays the stored stream for `key` into `deliver`, in original
    /// order, counting a hit and touching the entry's LRU clock. Returns
    /// the number of solutions delivered, or `None` on a miss (which is
    /// counted too — callers fall through to a real enumeration).
    ///
    /// The stream is copied out of the arena under one short lock and
    /// delivered **unlocked**, so the sink may freely touch this cache
    /// (nested queries, `stats()`) without deadlocking, and a concurrent
    /// eviction cannot disturb the replay.
    pub(crate) fn replay(
        &self,
        key: &QueryKey,
        deliver: &mut dyn FnMut(&[Item]) -> ControlFlow<()>,
    ) -> Option<u64> {
        let (flat, lens) = {
            let mut inner = self.lock();
            inner.epoch += 1;
            let epoch = inner.epoch;
            // Split the borrow: ids live in the map, payload in the store.
            let Inner {
                store,
                map,
                hits,
                misses,
                ..
            } = &mut *inner;
            let Some(entry) = map.get_mut(key) else {
                *misses += 1;
                return None;
            };
            entry.last_used = epoch;
            *hits += 1;
            let total: usize = entry.ids.iter().map(|&id| store.resolve(id).len()).sum();
            let mut flat: Vec<Item> = Vec::with_capacity(total);
            let mut lens: Vec<u32> = Vec::with_capacity(entry.ids.len());
            for &id in &entry.ids {
                let items = store.resolve(id);
                flat.extend_from_slice(items);
                lens.push(items.len() as u32);
            }
            (flat, lens)
        };
        let mut delivered = 0u64;
        let mut start = 0usize;
        for len in lens {
            let end = start + len as usize;
            delivered += 1;
            if deliver(&flat[start..end]).is_break() {
                break;
            }
            start = end;
        }
        Some(delivered)
    }

    /// Checks out the stored stream for `key` as owned ids, taking one
    /// reference per solution so a concurrent eviction cannot free them.
    /// Callers resolve at their own pace ([`Self::resolve_owned`]) and
    /// must hand the references back via [`Self::release_ids`]. Counts a
    /// hit or a miss. Used by the iterator front-end, whose consumer
    /// outlives the lookup.
    pub(crate) fn checkout(&self, key: &QueryKey) -> Option<Vec<SolutionId>> {
        let mut inner = self.lock();
        inner.epoch += 1;
        let epoch = inner.epoch;
        let Some(entry) = inner.map.get_mut(key) else {
            inner.misses += 1;
            return None;
        };
        entry.last_used = epoch;
        let ids = entry.ids.clone();
        inner.hits += 1;
        for &id in &ids {
            inner.store.acquire(id);
        }
        Some(ids)
    }

    /// Copies the solutions for `ids` out of the arena under **one**
    /// lock, flattened with a length table (the iterator front-end's
    /// replay shape: its bounded channel may block per send, so it must
    /// not hold the lock — or take it — per solution).
    pub(crate) fn resolve_owned_batch(&self, ids: &[SolutionId]) -> (Vec<Item>, Vec<u32>) {
        let inner = self.lock();
        let total: usize = ids.iter().map(|&id| inner.store.resolve(id).len()).sum();
        let mut flat: Vec<Item> = Vec::with_capacity(total);
        let mut lens: Vec<u32> = Vec::with_capacity(ids.len());
        for &id in ids {
            let items = inner.store.resolve(id);
            flat.extend_from_slice(items);
            lens.push(items.len() as u32);
        }
        (flat, lens)
    }

    /// Interns one delivered solution while a cold run is being recorded
    /// (takes a reference; the recording either becomes an entry via
    /// [`Self::store_entry`] or is rolled back via [`Self::release_ids`]).
    pub(crate) fn intern(&self, items: &[Item]) -> SolutionId {
        self.lock().store.intern(items)
    }

    /// Stores a completed recording under `key`, then enforces the byte
    /// capacity by LRU eviction. Replaces any racing entry for the same
    /// key (the streams are identical by construction). Returns the
    /// pressure this store caused — entries evicted and compactions run —
    /// for the recording run's [`EnumStats`](crate::stats::EnumStats).
    pub(crate) fn store_entry(&self, key: QueryKey, ids: Vec<SolutionId>) -> CachePressure {
        let mut inner = self.lock();
        inner.epoch += 1;
        let entry = Entry {
            ids,
            last_used: inner.epoch,
        };
        if let Some(old) = inner.map.insert(key, entry) {
            for id in old.ids {
                inner.store.release(id);
            }
        }
        let mut pressure = CachePressure::default();
        if let Some(cap) = inner.capacity_bytes {
            if inner.store.bytes() > cap && inner.map.len() > 1 {
                // One LRU-ordered sweep, evicting until under the cap —
                // O(N log N) per store instead of an O(N) scan per
                // evicted entry, all under the same lock.
                let mut by_age: Vec<(u64, QueryKey)> = inner
                    .map
                    .iter()
                    .map(|(k, e)| (e.last_used, k.clone()))
                    .collect();
                by_age.sort_unstable_by_key(|&(age, _)| age);
                for (_, oldest) in by_age {
                    if inner.store.bytes() <= cap || inner.map.len() <= 1 {
                        break;
                    }
                    let evicted = inner.map.remove(&oldest).expect("key from the sweep");
                    for id in evicted.ids {
                        inner.store.release(id);
                    }
                    inner.evictions += 1;
                    pressure.evicted += 1;
                }
            }
        }
        pressure.compactions += inner.maybe_compact();
        pressure
    }

    /// Hands back references taken by [`Self::checkout`] or a rolled-back
    /// recording, compacting when dead bytes dominate. Returns the
    /// pressure (compactions only — releases never evict entries).
    pub(crate) fn release_ids(&self, ids: &[SolutionId]) -> CachePressure {
        let mut inner = self.lock();
        for &id in ids {
            inner.store.release(id);
        }
        CachePressure {
            evicted: 0,
            compactions: inner.maybe_compact(),
        }
    }

    /// Counts a miss for a query that could not even be keyed or looked
    /// up through the fast path (used by the builder when a problem
    /// reports no [`CacheKey`]).
    pub(crate) fn note_miss(&self) {
        self.lock().misses += 1;
    }

    /// Drops every entry whose region signature intersects `touched`
    /// (sorted region ids from a mutation report), releasing their
    /// solutions. Entries keyed entirely to untouched regions are
    /// retained — their keys still match the post-mutation graph, so they
    /// keep hitting. Returns `(retained, invalidated)` entry counts.
    ///
    /// Hashed lookup already makes stale entries unreachable (their
    /// signature no longer matches the serving graph's region map); this
    /// pass additionally reclaims their bytes instead of waiting for LRU
    /// pressure to age them out.
    pub fn invalidate_regions(&self, touched: &[u32]) -> (u64, u64) {
        let mut inner = self.lock();
        let stale: Vec<QueryKey> = inner
            .map
            .keys()
            .filter(|k| k.key.regions.intersects(touched))
            .cloned()
            .collect();
        let invalidated = stale.len() as u64;
        for key in stale {
            let entry = inner.map.remove(&key).expect("key from the scan");
            for id in entry.ids {
                inner.store.release(id);
            }
        }
        inner.maybe_compact();
        let retained = inner.map.len() as u64;
        (retained, invalidated)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<Item>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Size of the fixed snapshot header: magic, version, item tag, checksum.
const SNAPSHOT_HEADER_BYTES: usize = 4 + 4 + 4 + 8;

impl<Item: Copy + Eq + Hash + SnapshotItem> ResultCache<Item> {
    /// Serializes the cache's entries and their deduplicated solution
    /// payload into the versioned, checksummed format described in
    /// [`crate::snapshot`]. Deterministic: equal contents produce equal
    /// bytes (entries are sorted by key). Hit/miss counters and the LRU
    /// clock are *not* persisted — a snapshot captures answers, not
    /// telemetry.
    pub fn snapshot(&self) -> Vec<u8> {
        let inner = self.lock();
        let mut keys: Vec<&QueryKey> = inner.map.keys().collect();
        keys.sort_unstable();
        let mut kinds: Vec<&'static str> = keys.iter().map(|k| k.key.kind).collect();
        kinds.sort_unstable();
        kinds.dedup();
        // Solutions table in first-reference order, hash-consed: an id
        // shared by several entries is written once and indexed.
        let mut sol_index: HashMap<SolutionId, u32> = HashMap::new();
        let mut order: Vec<SolutionId> = Vec::new();
        for k in &keys {
            for &id in &inner.map[*k].ids {
                sol_index.entry(id).or_insert_with(|| {
                    order.push(id);
                    (order.len() - 1) as u32
                });
            }
        }
        let mut w = Writer::new();
        w.u32(kinds.len() as u32);
        for kind in &kinds {
            w.str(kind);
        }
        w.u32(order.len() as u32);
        for &id in &order {
            let items = inner.store.resolve(id);
            w.u32(items.len() as u32);
            for &item in items {
                w.u32(item.to_raw());
            }
        }
        w.u32(keys.len() as u32);
        for k in &keys {
            let entry = &inner.map[*k];
            let kind_idx = kinds
                .iter()
                .position(|&name| name == k.key.kind)
                .expect("kind collected from the same key set");
            w.u32(kind_idx as u32);
            let pairs = k.key.regions.pairs();
            w.u32(pairs.len() as u32);
            for &(region, fp) in pairs {
                w.u32(region);
                w.u64(fp);
            }
            w.u64(k.key.query_fingerprint);
            match k.limit {
                None => {
                    w.u32(0);
                    w.u64(0);
                }
                Some(l) => {
                    w.u32(1);
                    w.u64(l);
                }
            }
            w.u32(entry.ids.len() as u32);
            for &id in &entry.ids {
                w.u32(sol_index[&id]);
            }
        }
        let payload = w.buf;
        let mut out = Vec::with_capacity(SNAPSHOT_HEADER_BYTES + payload.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.extend_from_slice(&Item::TAG.to_le_bytes());
        out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Loads a [`Self::snapshot`] into this cache, returning how many
    /// entries were restored. The whole snapshot is validated — magic,
    /// version, item tag, checksum, structure, problem kinds (matched
    /// against `kinds`, usually
    /// [`paper_problem_kinds`](crate::snapshot::paper_problem_kinds)),
    /// and, when `expected` is given, every `(region, fingerprint)` pair
    /// of every entry's signature against the serving graph's region map
    /// — **before** anything is mutated: a rejected snapshot leaves the
    /// cache exactly as it was, and is never partially or silently
    /// served. Pre-epoch (v1) blobs are refused with
    /// [`SnapshotError::VersionSkew`].
    ///
    /// Restored entries merge with existing contents (same-key entries
    /// are replaced; the streams are identical by construction when keys
    /// collide honestly). Hit/miss counters are unaffected, and the byte
    /// capacity is not enforced during the load — the next recorded
    /// entry evicts as usual.
    pub fn restore(
        &self,
        bytes: &[u8],
        kinds: &[&'static str],
        expected: Option<&RegionMap>,
    ) -> Result<u64, SnapshotError> {
        let parsed = Self::parse_snapshot(bytes, kinds, expected)?;
        // Everything validated — commit under one lock.
        let mut inner = self.lock();
        let mut restored = 0u64;
        for (qkey, idxs) in parsed.entries {
            inner.epoch += 1;
            let epoch = inner.epoch;
            let ids: Vec<SolutionId> = idxs
                .iter()
                .map(|&i| inner.store.intern(&parsed.solutions[i as usize]))
                .collect();
            let entry = Entry {
                ids,
                last_used: epoch,
            };
            if let Some(old) = inner.map.insert(qkey, entry) {
                for id in old.ids {
                    inner.store.release(id);
                }
            }
            restored += 1;
        }
        Ok(restored)
    }

    /// Runs [`Self::restore`]'s full validation — header, checksum,
    /// structure, kinds, region signatures — without committing
    /// anything. Callers composing several snapshots atomically (the
    /// `steiner-service` engine frames an edge and an arc snapshot
    /// together) validate every part first so a half-bad blob cannot
    /// leave the stores half-restored.
    pub fn validate_snapshot(
        &self,
        bytes: &[u8],
        kinds: &[&'static str],
        expected: Option<&RegionMap>,
    ) -> Result<(), SnapshotError> {
        Self::parse_snapshot(bytes, kinds, expected).map(|_| ())
    }

    /// Decodes and fully validates a snapshot without touching the
    /// cache. Shared by [`Self::restore`] and [`Self::validate_snapshot`].
    fn parse_snapshot(
        bytes: &[u8],
        kinds: &[&'static str],
        expected: Option<&RegionMap>,
    ) -> Result<ParsedSnapshot<Item>, SnapshotError> {
        if bytes.len() < SNAPSHOT_HEADER_BYTES {
            return Err(SnapshotError::Corrupted("header truncated"));
        }
        if bytes[0..4] != MAGIC {
            return Err(SnapshotError::Corrupted("bad magic"));
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::VersionSkew {
                stored: version,
                supported: SNAPSHOT_VERSION,
            });
        }
        let tag = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if tag != Item::TAG {
            return Err(SnapshotError::ItemKindMismatch {
                stored: tag,
                expected: Item::TAG,
            });
        }
        let checksum = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
        let payload = &bytes[SNAPSHOT_HEADER_BYTES..];
        if fnv1a(payload) != checksum {
            return Err(SnapshotError::ChecksumMismatch);
        }
        let mut r = Reader::new(payload);
        // Counts come from the (checksummed) payload, but still bound
        // every preallocation by the payload size: each element costs at
        // least 4 bytes, so a structurally absurd count fails cheaply in
        // the element loop instead of aborting on allocation.
        let prealloc_cap = payload.len() / 4;
        let kind_count = r.u32()? as usize;
        let mut kind_names: Vec<&'static str> = Vec::with_capacity(kind_count.min(prealloc_cap));
        for _ in 0..kind_count {
            let name = r.str()?;
            let resolved = kinds
                .iter()
                .copied()
                .find(|&k| k == name)
                .ok_or(SnapshotError::UnknownProblemKind(name))?;
            kind_names.push(resolved);
        }
        let sol_count = r.u32()? as usize;
        let mut solutions: Vec<Vec<Item>> = Vec::with_capacity(sol_count.min(prealloc_cap));
        for _ in 0..sol_count {
            let len = r.u32()? as usize;
            let mut items: Vec<Item> = Vec::with_capacity(len.min(prealloc_cap));
            for _ in 0..len {
                items.push(Item::from_raw(r.u32()?));
            }
            solutions.push(items);
        }
        let entry_count = r.u32()? as usize;
        let mut entries: Vec<(QueryKey, Vec<u32>)> =
            Vec::with_capacity(entry_count.min(prealloc_cap));
        for _ in 0..entry_count {
            let kind_idx = r.u32()? as usize;
            let kind = *kind_names
                .get(kind_idx)
                .ok_or(SnapshotError::Corrupted("kind index out of range"))?;
            let pair_count = r.u32()? as usize;
            let mut pairs: Vec<(u32, u64)> = Vec::with_capacity(pair_count.min(prealloc_cap));
            for _ in 0..pair_count {
                let region = r.u32()?;
                let fp = r.u64()?;
                if let Some(map) = expected {
                    let current = map.fingerprint(region);
                    if current != Some(fp) {
                        return Err(SnapshotError::GraphMismatch {
                            stored: fp,
                            expected: current.unwrap_or(0),
                        });
                    }
                }
                pairs.push((region, fp));
            }
            let regions = RegionSignature::from_pairs(pairs);
            let query_fingerprint = r.u64()?;
            let limit = match (r.u32()?, r.u64()?) {
                (0, _) => None,
                (1, l) => Some(l),
                _ => return Err(SnapshotError::Corrupted("bad limit flag")),
            };
            let n = r.u32()? as usize;
            let mut idxs: Vec<u32> = Vec::with_capacity(n.min(prealloc_cap));
            for _ in 0..n {
                let i = r.u32()?;
                if i as usize >= solutions.len() {
                    return Err(SnapshotError::Corrupted("solution index out of range"));
                }
                idxs.push(i);
            }
            entries.push((
                QueryKey {
                    key: CacheKey {
                        kind,
                        regions,
                        query_fingerprint,
                    },
                    limit,
                },
                idxs,
            ));
        }
        r.finish()?;
        Ok(ParsedSnapshot { solutions, entries })
    }
}

/// A decoded, fully validated snapshot awaiting commit.
struct ParsedSnapshot<Item> {
    /// Deduplicated solution payload, indexed by the entries below.
    solutions: Vec<Vec<Item>>,
    /// Cache entries as (key, indices into `solutions`).
    entries: Vec<(QueryKey, Vec<u32>)>,
}

fn hasher() -> std::collections::hash_map::DefaultHasher {
    std::collections::hash_map::DefaultHasher::new()
}

/// Fingerprint of an undirected multigraph: compatibility wrapper over
/// the region machinery — the XOR fold of the graph's per-region
/// fingerprints ([`RegionMap::fold`]). An
/// [`EpochGraph`](steiner_graph::EpochGraph) answers the same figure from
/// its maintained map with no rescan; this free function recomputes it
/// for callers holding a bare graph. Pins the exact vertex count and
/// edge-id/endpoint assignment the solution slices refer to.
pub fn fingerprint_undirected(g: &UndirectedGraph) -> u64 {
    RegionMap::of_undirected(g).fold()
}

/// Fingerprint of a digraph: compatibility wrapper folding the weak-
/// component region fingerprints (see [`fingerprint_undirected`]).
pub fn fingerprint_digraph(d: &DiGraph) -> u64 {
    RegionMap::of_digraph(d).fold()
}

/// Fingerprint of a terminal list, order-sensitive. Problems whose
/// `prepare()` canonicalizes the terminal order (all four paper problems
/// sort it) should fingerprint the canonical — sorted — form, so
/// permuted repeats of the same logical query share one cache entry;
/// duplicates and out-of-range ids stay distinguishable because the full
/// multiset is hashed.
pub fn fingerprint_terminals(terminals: &[VertexId]) -> u64 {
    let mut h = hasher();
    for w in terminals {
        w.0.hash(&mut h);
    }
    terminals.len().hash(&mut h);
    h.finish()
}

/// Fingerprint of a family of terminal sets (the Steiner-forest query
/// shape), order-sensitive within and across sets. As with
/// [`fingerprint_terminals`], prefer fingerprinting the problem's
/// canonical form — for forests that is the reduced pair list
/// ([`fingerprint_vertex_pairs`] over
/// [`pairs_from_sets`](crate::forest::pairs_from_sets)).
pub fn fingerprint_terminal_sets(sets: &[Vec<VertexId>]) -> u64 {
    let mut h = hasher();
    sets.len().hash(&mut h);
    for set in sets {
        set.len().hash(&mut h);
        for w in set {
            w.0.hash(&mut h);
        }
    }
    h.finish()
}

/// Fingerprint of a vertex-pair list — the Steiner-forest problem's
/// canonical query form (sorted, deduplicated connection requirements).
pub fn fingerprint_vertex_pairs(pairs: &[(VertexId, VertexId)]) -> u64 {
    let mut h = hasher();
    pairs.len().hash(&mut h);
    for (a, b) in pairs {
        (a.0, b.0).hash(&mut h);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use steiner_graph::EdgeId;

    fn key(kind: &'static str, q: u64, limit: Option<u64>) -> QueryKey {
        QueryKey {
            key: CacheKey {
                kind,
                regions: RegionSignature::from_pairs(vec![(0, 1)]),
                query_fingerprint: q,
            },
            limit,
        }
    }

    fn sols(lens: &[usize]) -> Vec<Vec<EdgeId>> {
        lens.iter()
            .enumerate()
            .map(|(i, &l)| (0..l).map(|j| EdgeId((i * 100 + j) as u32)).collect())
            .collect()
    }

    fn record(cache: &ResultCache<EdgeId>, k: QueryKey, solutions: &[Vec<EdgeId>]) {
        let ids: Vec<SolutionId> = solutions.iter().map(|s| cache.intern(s)).collect();
        cache.store_entry(k, ids);
    }

    fn replay_all(cache: &ResultCache<EdgeId>, k: &QueryKey) -> Option<Vec<Vec<EdgeId>>> {
        let mut out = Vec::new();
        cache
            .replay(k, &mut |items| {
                out.push(items.to_vec());
                ControlFlow::Continue(())
            })
            .map(|_| out)
    }

    #[test]
    fn store_then_replay_round_trips_in_order() {
        let cache = ResultCache::new();
        let k = key("st", 7, None);
        let solutions = sols(&[3, 1, 2]);
        record(&cache, k.clone(), &solutions);
        assert_eq!(replay_all(&cache, &k).unwrap(), solutions);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries, s.solutions), (1, 0, 1, 3));
        assert!(s.bytes > 0);
    }

    #[test]
    fn distinct_limits_are_distinct_entries() {
        let cache = ResultCache::new();
        let full = sols(&[1, 2, 3]);
        record(&cache, key("st", 7, None), &full);
        record(&cache, key("st", 7, Some(2)), &full[..2]);
        assert_eq!(replay_all(&cache, &key("st", 7, Some(2))).unwrap().len(), 2);
        assert_eq!(replay_all(&cache, &key("st", 7, None)).unwrap().len(), 3);
        assert!(replay_all(&cache, &key("st", 8, None)).is_none(), "miss");
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn shared_solutions_are_stored_once() {
        let cache = ResultCache::new();
        let solutions = sols(&[2, 2, 4]);
        record(&cache, key("st", 1, None), &solutions);
        let before = cache.bytes();
        // A second query with the same payload (e.g. its limit-3 prefix
        // under another key) adds references, not bytes.
        record(&cache, key("st", 1, Some(3)), &solutions);
        assert_eq!(cache.bytes(), before, "hash-consing across entries");
        assert_eq!(cache.stats().solutions, 6, "but both entries are whole");
    }

    #[test]
    fn lru_eviction_respects_capacity_and_recency() {
        // Each entry is one 25-item solution = 100 bytes; three fit.
        let cache = ResultCache::with_capacity_bytes(350);
        let payloads: Vec<Vec<Vec<EdgeId>>> = (0u32..4)
            .map(|i| vec![(0u32..25).map(|j| EdgeId(i * 1000 + j)).collect()])
            .collect();
        for (i, p) in payloads.iter().enumerate().take(3) {
            record(&cache, key("st", i as u64, None), p);
        }
        assert_eq!(cache.stats().evictions, 0, "three entries fit");
        // Touch entry 0 so entry 1 is the LRU victim of the next insert.
        assert!(replay_all(&cache, &key("st", 0, None)).is_some());
        record(&cache, key("st", 3, None), &payloads[3]);
        assert!(cache.stats().bytes <= 350);
        assert_eq!(cache.stats().evictions, 1);
        assert!(
            replay_all(&cache, &key("st", 1, None)).is_none(),
            "the least recently used entry was evicted"
        );
        assert!(replay_all(&cache, &key("st", 0, None)).is_some());
        assert!(replay_all(&cache, &key("st", 2, None)).is_some());
        assert!(replay_all(&cache, &key("st", 3, None)).is_some());
    }

    #[test]
    fn checkout_survives_eviction() {
        let cache = ResultCache::with_capacity_bytes(120);
        let a = sols(&[25]);
        record(&cache, key("st", 0, None), &a);
        let ids = cache.checkout(&key("st", 0, None)).expect("hit");
        // Evict the entry by inserting two more oversized ones.
        record(&cache, key("st", 1, None), &sols(&[25]));
        record(&cache, key("st", 2, None), &sols(&[25]));
        // The checked-out references keep the payload alive.
        let (flat, lens) = cache.resolve_owned_batch(&ids);
        assert_eq!(flat[..lens[0] as usize], a[0]);
        cache.release_ids(&ids);
    }

    #[test]
    fn replay_sink_may_reenter_the_cache() {
        let cache = ResultCache::new();
        let k = key("st", 3, None);
        record(&cache, k.clone(), &sols(&[2, 3]));
        let mut seen = 0;
        cache
            .replay(&k, &mut |_| {
                // A sink that inspects — or even queries — the same cache
                // must not deadlock: replay delivers outside the lock.
                assert!(cache.stats().entries >= 1);
                assert!(cache
                    .replay(&key("st", 99, None), &mut |_| ControlFlow::Continue(()))
                    .is_none());
                seen += 1;
                ControlFlow::Continue(())
            })
            .unwrap();
        assert_eq!(seen, 2);
    }

    #[test]
    fn store_entry_reports_eviction_pressure() {
        // Same shape as the LRU test: three 100-byte entries fit, the
        // fourth forces one eviction — and the store that caused it gets
        // the delta back for its run's stats.
        let cache = ResultCache::with_capacity_bytes(350);
        let payloads: Vec<Vec<Vec<EdgeId>>> = (0u32..4)
            .map(|i| vec![(0u32..25).map(|j| EdgeId(i * 1000 + j)).collect()])
            .collect();
        for (i, p) in payloads.iter().enumerate().take(3) {
            let ids: Vec<SolutionId> = p.iter().map(|s| cache.intern(s)).collect();
            let pressure = cache.store_entry(key("st", i as u64, None), ids);
            assert_eq!(pressure, CachePressure::default(), "within capacity");
        }
        let ids: Vec<SolutionId> = payloads[3].iter().map(|s| cache.intern(s)).collect();
        let pressure = cache.store_entry(key("st", 3, None), ids);
        assert_eq!(pressure.evicted, 1, "the displaced entry is attributed");
        assert_eq!(cache.stats().evictions, 1, "and counted globally");
        assert_eq!(cache.stats().compactions, pressure.compactions);
    }

    #[test]
    fn rollback_release_reports_compaction_pressure() {
        // A rolled-back recording that dominated the arena triggers a
        // compaction, attributed to the releasing run.
        let cache: ResultCache<EdgeId> = ResultCache::new();
        record(&cache, key("st", 0, None), &sols(&[2]));
        let big: Vec<Vec<EdgeId>> = sols(&[40, 40, 40]);
        let ids: Vec<SolutionId> = big.iter().map(|s| cache.intern(s)).collect();
        let pressure = cache.release_ids(&ids);
        assert_eq!(pressure.evicted, 0, "releases never evict entries");
        assert_eq!(pressure.compactions, 1, "dead bytes dominated");
        assert_eq!(cache.stats().compactions, 1);
        // The surviving entry still replays.
        assert_eq!(replay_all(&cache, &key("st", 0, None)).unwrap(), sols(&[2]));
    }

    #[test]
    fn clear_empties_everything() {
        let cache = ResultCache::new();
        record(&cache, key("st", 0, None), &sols(&[3, 4]));
        cache.clear();
        let s = cache.stats();
        assert_eq!((s.entries, s.solutions, s.bytes), (0, 0, 0));
        assert!(replay_all(&cache, &key("st", 0, None)).is_none());
    }

    #[test]
    fn fingerprints_separate_structures() {
        let g1 = UndirectedGraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let g2 = UndirectedGraph::from_edges(3, &[(0, 1), (0, 2)]).unwrap();
        assert_ne!(fingerprint_undirected(&g1), fingerprint_undirected(&g2));
        let mut d1 = DiGraph::new(2);
        d1.add_arc_indices(0, 1).unwrap();
        let mut d2 = DiGraph::new(2);
        d2.add_arc_indices(1, 0).unwrap();
        assert_ne!(fingerprint_digraph(&d1), fingerprint_digraph(&d2));
        assert_ne!(
            fingerprint_terminals(&[VertexId(0), VertexId(1)]),
            fingerprint_terminals(&[VertexId(1), VertexId(0)]),
            "terminal order changes the emission order, so it must key"
        );
        assert_ne!(
            fingerprint_terminal_sets(&[vec![VertexId(0)], vec![VertexId(1)]]),
            fingerprint_terminal_sets(&[vec![VertexId(0), VertexId(1)]]),
            "set boundaries matter"
        );
    }
}
