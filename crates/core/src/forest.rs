//! Minimal Steiner forest enumeration (§5, Theorems 23 & 25), exposed as
//! the [`SteinerForest`] problem type for the generic
//! [`crate::solver::Enumeration`] engine.
//!
//! Terminal sets are reduced to pairs (`{w₁,…,w_k}` →
//! `{w₁,w₂}, …, {w₁,w_k}` — the observation before Lemma 21). A partial
//! solution is a forest `F` that is a union of paths for a subset of the
//! pairs; children attach one `w`-`w′` path of the contracted multigraph
//! `G/E(F)` for some still-disconnected pair (valid paths ↔ paths of
//! `G/E(F)`, Lemma 24's surrounding discussion).
//!
//! The improved node rule (Theorem 25): a pair has a *unique* valid path
//! iff its endpoints coincide after also contracting the bridges of
//! `G/E(F)` (Lemma 24). If some disconnected pair does not coincide,
//! branch on it (≥ 2 children guaranteed); otherwise `F` plus the bridges
//! contains the unique minimal completion, which is extracted with the
//! LCA-based marking procedure in linear time.

use crate::problem::{MinimalSteinerProblem, NodeStep, Prepared, SteinerError, SubtreeRecord};
use crate::queue::{DirectSink, OutputQueue, QueueConfig, SolutionSink};
use crate::solver::run_sink_lenient;
use crate::stats::EnumStats;
use crate::trail::{FrameLog, ScratchUsage};
use std::borrow::Cow;
use std::collections::BTreeSet;
use std::ops::ControlFlow;
use steiner_graph::bridges::{bridges, bridges_csr_into, BridgeScratch};
use steiner_graph::connectivity::all_in_one_component;
use steiner_graph::csr::{grow, IncidenceCsr};
use steiner_graph::spanning::{DynamicSpanning, SpanMark};
use steiner_graph::union_find::UnionFind;
use steiner_graph::{CsrDigraph, CsrUndirected, EdgeId, UndirectedGraph, VertexId};
use steiner_paths::enumerate::{enumerate_paths_view, EnumerateOptions, PathScratch};

/// Reduces terminal sets to deduplicated unordered pairs. Singleton and
/// empty sets impose no constraint and vanish.
pub fn pairs_from_sets(sets: &[Vec<VertexId>]) -> Vec<(VertexId, VertexId)> {
    let mut pairs: BTreeSet<(VertexId, VertexId)> = BTreeSet::new();
    for set in sets {
        let mut members = set.clone();
        members.sort_unstable();
        members.dedup();
        if let Some((&first, rest)) = members.split_first() {
            for &w in rest {
                pairs.insert((first.min(w), first.max(w)));
            }
        }
    }
    pairs.into_iter().collect()
}

/// The minimal Steiner forest problem (§5): find all inclusion-minimal
/// edge sets connecting every terminal set of `sets` (each set within
/// itself; different sets may or may not share trees).
///
/// ```
/// use steiner_core::{Enumeration, SteinerForest};
/// use steiner_graph::{UndirectedGraph, VertexId};
///
/// // Path 0-1-2-3 with pairs {0,1} and {2,3}: the unique minimal forest
/// // takes the two outer edges.
/// let g = UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
/// let sets = vec![vec![VertexId(0), VertexId(1)], vec![VertexId(2), VertexId(3)]];
/// let forests = Enumeration::new(SteinerForest::new(&g, &sets)).collect_vec().unwrap();
/// assert_eq!(forests.len(), 1);
/// assert_eq!(forests[0].len(), 2);
/// ```
pub struct SteinerForest<'g> {
    g: Cow<'g, UndirectedGraph>,
    sets: Vec<Vec<VertexId>>,
    stats: EnumStats,
    search: Option<ForestSearch>,
    level_cache_cap: Option<usize>,
    incremental: bool,
    packed: bool,
}

/// The typed checkpoint frame of one descent: forest-edge stack length,
/// union–find snapshot, and the connectivity layer's mark.
struct ForestFrame {
    base: usize,
    uf: usize,
    span: SpanMark,
}

/// Mutable search state installed by `prepare`. All hot-path buffers are
/// preallocated; `classify`/`branch` never allocate.
struct ForestSearch {
    pairs: Vec<(VertexId, VertexId)>,
    uf: UnionFind,
    forest_edges: Vec<EdgeId>,
    /// Pair classified for branching; the matching contraction sits in
    /// `pool[depth]` (avoids recomputing `G/E(F)`).
    pending: Option<(VertexId, VertexId)>,
    /// Flat CSR of the original graph (built once).
    gcsr: CsrUndirected,
    /// Dense-id assignment per union–find representative (per branch).
    rep_id: Vec<u32>,
    /// Bridge-contracted connectivity `G″ = G′/B` (rebuild path only).
    uf2: UnionFind,
    bridge: BridgeScratch,
    /// Bridges of `G`, computed once. The bridges of the contracted
    /// multigraph `G/E(F)` are **exactly these edges minus the ones
    /// `E(F)` turns into self-loops**: contraction can neither create a
    /// bridge (a cycle's image stays a closed walk through every
    /// surviving cycle edge) nor destroy one (the two sides of a bridge
    /// of `G` cannot be joined by `F`-paths, which avoid the bridge). So
    /// Lemma 24's per-node `G″ = G/E(F)/B` connectivity is maintainable
    /// incrementally from static state.
    gbridge: Vec<bool>,
    /// The ids of `gbridge`, ascending — the order the contracted graph
    /// presents its bridges in, so the incremental `F + B` assembly is
    /// byte-identical to the rebuild path's.
    bridge_ids: Vec<EdgeId>,
    /// Incremental component labels of `G″`: the bridges of `G` are
    /// contracted once in `prepare`, forest-edge deltas are contracted on
    /// descent and rolled back on backtrack.
    span: DynamicSpanning,
    /// Typed checkpoint frames of the active descent (LIFO).
    frames: FrameLog<ForestFrame>,
    /// Whether `pool[depth]` already holds the contraction for the
    /// pending branch (the rebuild path computes it in `classify`, the
    /// incremental path defers it to `branch`).
    contraction_ready: bool,
    uc: UniqueCompletionScratch,
    /// Per-branch-depth contraction + path-enumeration scratch.
    pool: Vec<ForestDepthScratch>,
    depth: usize,
    /// Per-level BFS cache preallocation cap for pool growth.
    level_cache_cap: usize,
    extra_allocs: u64,
    baseline_allocs: u64,
}

/// Per-branch-depth reusable state: the contracted multigraph `G/E(F)` in
/// CSR form with its translation tables, its doubled digraph, and the path
/// enumerator's scratch. The contraction must survive the whole branch
/// (children recurse while it is in use), hence one per depth.
#[derive(Default)]
struct ForestDepthScratch {
    endpoints_buf: Vec<(VertexId, VertexId)>,
    orig_edge: Vec<EdgeId>,
    vertex_map: Vec<VertexId>,
    cg: CsrUndirected,
    doubled: CsrDigraph,
    path: PathScratch,
    /// Original-edge buffer for one child's path (descend input).
    edges: Vec<EdgeId>,
    allocs: u64,
}

impl ForestDepthScratch {
    fn preallocate(&mut self, n: usize, m: usize, level_cache_cap: usize) {
        if self.endpoints_buf.capacity() < m {
            self.endpoints_buf
                .reserve(m - self.endpoints_buf.capacity());
        }
        if self.orig_edge.capacity() < m {
            self.orig_edge.reserve(m - self.orig_edge.capacity());
        }
        grow(&mut self.vertex_map, n, VertexId(0), &mut self.allocs);
        self.cg.preallocate(n, m);
        self.doubled.preallocate(n, 2 * m);
        self.path
            .preallocate_capped(n + 2, 2 * m + 2, level_cache_cap);
        if self.edges.capacity() < n + 1 {
            self.edges.reserve(n + 1 - self.edges.capacity());
        }
        self.allocs = 0;
    }

    fn usage(&self) -> ScratchUsage {
        ScratchUsage::new(
            self.allocs
                + self.cg.alloc_events()
                + self.doubled.alloc_events()
                + self.path.alloc_events(),
            self.cg.capacity_bytes()
                + self.doubled.capacity_bytes()
                + self.path.capacity_bytes()
                + (self.endpoints_buf.capacity() * std::mem::size_of::<(VertexId, VertexId)>()
                    + (self.orig_edge.capacity() + self.edges.capacity())
                        * std::mem::size_of::<EdgeId>()
                    + self.vertex_map.capacity() * std::mem::size_of::<VertexId>())
                    as u64,
        )
    }

    /// Rebuilds `G/E(F)` in place: `classes[v]` is the contracted image of
    /// `v` (computed by the caller from the union–find; normally this
    /// scratch's own `vertex_map`, temporarily moved out). Surviving edges
    /// keep their relative order and remember their original ids.
    fn rebuild_contraction(&mut self, g: &CsrUndirected, classes: &[VertexId], cn: usize) {
        self.endpoints_buf.clear();
        self.orig_edge.clear();
        for i in 0..g.num_edges() {
            let e = EdgeId::new(i);
            let (u, v) = g.endpoints(e);
            let (nu, nv) = (classes[u.index()], classes[v.index()]);
            if nu == nv {
                continue; // contracted or self-loop after contraction
            }
            if self.endpoints_buf.len() == self.endpoints_buf.capacity() {
                self.allocs += 1;
            }
            self.endpoints_buf.push((nu, nv));
            if self.orig_edge.len() == self.orig_edge.capacity() {
                self.allocs += 1;
            }
            self.orig_edge.push(e);
        }
        self.cg.rebuild_from_edges(cn, &self.endpoints_buf);
    }
}

/// Reusable buffers for the unique-completion marking (offline
/// Tarjan LCA over the forest `F + B`, replacing the sparse-table
/// structure that allocated per leaf).
#[derive(Default)]
struct UniqueCompletionScratch {
    /// `F + B` (original edge ids).
    fb: Vec<EdgeId>,
    inc: IncidenceCsr,
    parent: Vec<u32>,
    parent_edge: Vec<u32>,
    depthv: Vec<u32>,
    visited: Vec<bool>,
    present: Vec<bool>,
    dfs_stack: Vec<(VertexId, u32)>,
    // Offline-LCA state.
    ufp: Vec<u32>,
    ufsz: Vec<u32>,
    ancestor: Vec<u32>,
    black: Vec<bool>,
    lca: Vec<u32>,
    entries: Vec<(u32, VertexId, VertexId)>,
    marked: Vec<bool>,
    // Pair queries by endpoint (CSR, built once in `prepare`).
    q_off: Vec<u32>,
    q_items: Vec<u32>,
    allocs: u64,
}

impl UniqueCompletionScratch {
    fn preallocate(&mut self, n: usize, m: usize, pairs: &[(VertexId, VertexId)]) {
        grow(
            &mut self.fb,
            n + m.min(n * 2) + 4,
            EdgeId(0),
            &mut self.allocs,
        );
        self.fb.clear();
        self.inc.preallocate(n, n + m.min(2 * n) + 4);
        grow(&mut self.parent, n, 0u32, &mut self.allocs);
        grow(&mut self.parent_edge, n, 0u32, &mut self.allocs);
        grow(&mut self.depthv, n, 0u32, &mut self.allocs);
        grow(&mut self.visited, n, false, &mut self.allocs);
        grow(&mut self.present, n, false, &mut self.allocs);
        grow(
            &mut self.dfs_stack,
            n + 1,
            (VertexId(0), 0u32),
            &mut self.allocs,
        );
        self.dfs_stack.clear();
        grow(&mut self.ufp, n, 0u32, &mut self.allocs);
        grow(&mut self.ufsz, n, 0u32, &mut self.allocs);
        grow(&mut self.ancestor, n, 0u32, &mut self.allocs);
        grow(&mut self.black, n, false, &mut self.allocs);
        grow(&mut self.lca, pairs.len(), 0u32, &mut self.allocs);
        grow(
            &mut self.entries,
            2 * pairs.len(),
            (0u32, VertexId(0), VertexId(0)),
            &mut self.allocs,
        );
        self.entries.clear();
        grow(&mut self.marked, m, false, &mut self.allocs);
        // Pair-query CSR by endpoint: static for the whole enumeration.
        grow(&mut self.q_off, n + 1, 0u32, &mut self.allocs);
        for &(w, w2) in pairs {
            self.q_off[w.index() + 1] += 1;
            self.q_off[w2.index() + 1] += 1;
        }
        for i in 0..n {
            self.q_off[i + 1] += self.q_off[i];
        }
        grow(&mut self.q_items, 2 * pairs.len(), 0u32, &mut self.allocs);
        for (k, &(w, w2)) in pairs.iter().enumerate() {
            for v in [w, w2] {
                self.q_items[self.q_off[v.index()] as usize] = k as u32;
                self.q_off[v.index()] += 1;
            }
        }
        for v in (1..=n).rev() {
            self.q_off[v] = self.q_off[v - 1];
        }
        self.q_off[0] = 0;
        self.allocs = 0;
    }

    fn usage(&self) -> ScratchUsage {
        ScratchUsage::new(
            self.allocs + self.inc.alloc_events(),
            self.inc.capacity_bytes()
                + (self.fb.capacity() * std::mem::size_of::<EdgeId>()
                    + (self.parent.capacity()
                        + self.parent_edge.capacity()
                        + self.depthv.capacity()
                        + self.ufp.capacity()
                        + self.ufsz.capacity()
                        + self.ancestor.capacity()
                        + self.lca.capacity()
                        + self.q_off.capacity()
                        + self.q_items.capacity())
                        * std::mem::size_of::<u32>()
                    + (self.visited.capacity()
                        + self.present.capacity()
                        + self.black.capacity()
                        + self.marked.capacity())
                        * std::mem::size_of::<bool>()
                    + self.dfs_stack.capacity() * std::mem::size_of::<(VertexId, u32)>()
                    + self.entries.capacity() * std::mem::size_of::<(u32, VertexId, VertexId)>())
                    as u64,
        )
    }
}

impl ForestSearch {
    fn usage(&self) -> ScratchUsage {
        let pool: ScratchUsage = self.pool.iter().map(|b| b.usage()).sum();
        ScratchUsage::new(
            self.gcsr.alloc_events() + self.bridge.alloc_events() + self.span.alloc_events(),
            self.gcsr.capacity_bytes()
                + self.bridge.capacity_bytes()
                + self.span.capacity_bytes()
                + (self.rep_id.capacity() * std::mem::size_of::<u32>()
                    + self.gbridge.capacity() * std::mem::size_of::<bool>()
                    + self.bridge_ids.capacity() * std::mem::size_of::<EdgeId>())
                    as u64,
        ) + self.uc.usage()
            + self.frames.usage()
            + pool
            + ScratchUsage::new(self.extra_allocs, 0)
    }

    /// Builds `G′ = G/E(F)` into `pool[depth]` from the union–find
    /// partition (dense ids in first-member order), returning the
    /// contracted vertex count. Moved here from the per-node classify:
    /// the incremental path only pays it per *branch*.
    fn build_contraction(&mut self, depth: usize) -> usize {
        let n = self.gcsr.num_vertices();
        self.rep_id.clear();
        self.rep_id.resize(n, u32::MAX);
        let ds = &mut self.pool[depth];
        ds.vertex_map.clear();
        let mut count = 0u32;
        for v in 0..n {
            let rep = self.uf.find(VertexId::new(v));
            if self.rep_id[rep.index()] == u32::MAX {
                self.rep_id[rep.index()] = count;
                count += 1;
            }
            ds.vertex_map.push(VertexId(self.rep_id[rep.index()]));
        }
        let cn = count as usize;
        // Rebuild the contraction in place (classes are in vertex_map
        // already, so rebuild_contraction reuses it verbatim).
        let classes = std::mem::take(&mut ds.vertex_map);
        ds.rebuild_contraction(&self.gcsr, &classes, cn);
        ds.vertex_map = classes;
        cn
    }

    /// Grows the per-depth pool on demand (the recursion outran the
    /// preallocation).
    fn ensure_depth(&mut self, depth: usize, level_cache_cap: usize) {
        if self.pool.len() <= depth {
            self.extra_allocs += 1;
            let mut fresh = ForestDepthScratch::default();
            fresh.preallocate(
                self.gcsr.num_vertices(),
                self.gcsr.num_edges(),
                level_cache_cap,
            );
            self.pool.push(fresh);
        }
    }

    /// Debug cross-check of the static-bridge theorem: the bridges of the
    /// contracted multigraph `G/E(F)` (computed fresh) must be exactly
    /// the static bridges of `G` minus self-loops, and the incremental
    /// `G″` labels must agree with the fresh `uf2` on every pair.
    #[cfg(debug_assertions)]
    fn debug_check_bridge_contraction(&mut self, depth: usize) {
        let cn = self.build_contraction(depth);
        let ds = &self.pool[depth];
        bridges_csr_into(&ds.cg, None, &mut self.bridge);
        for i in 0..ds.cg.num_edges() {
            debug_assert_eq!(
                self.bridge.is_bridge[i],
                self.gbridge[ds.orig_edge[i].index()],
                "bridge of G/E(F) disagrees with the static bridge of G (edge {:?})",
                ds.orig_edge[i]
            );
        }
        self.uf2.reset(cn);
        for i in 0..ds.cg.num_edges() {
            if self.bridge.is_bridge[i] {
                let (u, v) = ds.cg.endpoints(EdgeId::new(i));
                self.uf2.union(u, v);
            }
        }
        for &(w, w2) in &self.pairs {
            debug_assert_eq!(
                self.uf2
                    .same(ds.vertex_map[w.index()], ds.vertex_map[w2.index()]),
                self.span.connected(w, w2),
                "incremental G″ labels disagree with the fresh pass for {w:?},{w2:?}"
            );
        }
    }
}

impl<'g> SteinerForest<'g> {
    /// A problem instance borrowing the graph.
    pub fn new(g: &'g UndirectedGraph, sets: &[Vec<VertexId>]) -> Self {
        SteinerForest {
            g: Cow::Borrowed(g),
            sets: sets.to_vec(),
            stats: EnumStats::default(),
            search: None,
            level_cache_cap: None,
            incremental: true,
            packed: true,
        }
    }

    /// A problem instance owning the graph.
    pub fn from_graph(g: UndirectedGraph, sets: &[Vec<VertexId>]) -> SteinerForest<'static> {
        SteinerForest {
            g: Cow::Owned(g),
            sets: sets.to_vec(),
            stats: EnumStats::default(),
            search: None,
            level_cache_cap: None,
            incremental: true,
            packed: true,
        }
    }

    /// Clones the borrowed graph (if any) so the instance becomes
    /// `'static` for the iterator front-end.
    pub fn into_owned(self) -> SteinerForest<'static> {
        SteinerForest {
            g: Cow::Owned(self.g.into_owned()),
            sets: self.sets,
            stats: self.stats,
            search: self.search,
            level_cache_cap: self.level_cache_cap,
            incremental: self.incremental,
            packed: self.packed,
        }
    }
}

impl SteinerForest<'_> {
    /// The descend half of the branch protocol: appends one valid path's
    /// original edges to `F`, joins them in the rollback union–find and
    /// (incrementally) in the G″ contract-delta layer, and pushes the
    /// combined typed frame. Shared by locally generated children and
    /// replayed root children.
    fn descend_edges(&mut self, edges: &[EdgeId]) {
        let incremental = self.incremental;
        let search = self.search.as_mut().expect("search state");
        let frame = ForestFrame {
            base: search.forest_edges.len(),
            uf: search.uf.snapshot(),
            span: search.span.mark(),
        };
        for &e in edges {
            let (u, v) = search.gcsr.endpoints(e);
            let joined = search.uf.union(u, v);
            debug_assert!(joined, "a valid path never closes a cycle in F");
            if incremental {
                search.span.contract(u, v);
            }
            search.forest_edges.push(e);
        }
        search.frames.push(frame);
    }

    /// The undo half: pops the innermost frame and restores every layer.
    fn retract_frame(&mut self) {
        let search = self.search.as_mut().expect("search state");
        let frame = search.frames.pop();
        search.forest_edges.truncate(frame.base);
        search.uf.rollback(frame.uf);
        search.span.undo_to(frame.span);
    }
}

/// The unique minimal Steiner forest containing `F`, given that every
/// disconnected pair has a unique valid path: mark, over the forest
/// `F + B` (in `s.fb`), the edges lying on some pair's tree path and
/// append exactly those to `out`.
///
/// LCAs come from one offline Tarjan sweep over the forest (union–find
/// with path halving), replacing the per-leaf Euler-tour/sparse-table
/// build; entries are then processed shallowest-LCA-first so the
/// marked-edge early stop stays sound. Allocation-free over `s`.
fn unique_completion_csr(
    g: &CsrUndirected,
    pairs: &[(VertexId, VertexId)],
    s: &mut UniqueCompletionScratch,
    out: &mut Vec<EdgeId>,
    work: &mut u64,
) {
    let n = g.num_vertices();
    const NONE: u32 = u32::MAX;
    *work += (n + s.fb.len()) as u64;
    s.inc.rebuild(n, &s.fb, |e| g.endpoints(e));
    grow(&mut s.present, n, false, &mut s.allocs);
    for &e in &s.fb {
        let (u, v) = g.endpoints(e);
        s.present[u.index()] = true;
        s.present[v.index()] = true;
    }
    grow(&mut s.parent, n, NONE, &mut s.allocs);
    grow(&mut s.parent_edge, n, NONE, &mut s.allocs);
    grow(&mut s.depthv, n, 0u32, &mut s.allocs);
    grow(&mut s.visited, n, false, &mut s.allocs);
    grow(&mut s.black, n, false, &mut s.allocs);
    grow(&mut s.ufsz, n, 1u32, &mut s.allocs);
    grow(&mut s.ancestor, n, NONE, &mut s.allocs);
    grow(&mut s.lca, pairs.len(), NONE, &mut s.allocs);
    s.ufp.clear();
    s.ufp.extend(0..n as u32);
    // Union–find with path halving (no rollback needed here).
    fn find(ufp: &mut [u32], mut x: u32) -> u32 {
        while ufp[x as usize] != x {
            ufp[x as usize] = ufp[ufp[x as usize] as usize];
            x = ufp[x as usize];
        }
        x
    }
    // One DFS per tree of F + B; Tarjan's offline LCA answers each pair
    // at its second-finished endpoint.
    for root in 0..n {
        if !s.present[root] || s.visited[root] {
            continue;
        }
        s.visited[root] = true;
        s.depthv[root] = 0;
        s.ancestor[root] = root as u32;
        s.dfs_stack.clear();
        s.dfs_stack.push((VertexId::new(root), 0));
        while let Some(&mut (u, ref mut next)) = s.dfs_stack.last_mut() {
            let slot = s.inc.incident(u).get(*next as usize).copied();
            match slot {
                Some(e) => {
                    *next += 1;
                    *work += 1;
                    let v = g.other_endpoint(e, u);
                    if !s.visited[v.index()] {
                        s.visited[v.index()] = true;
                        s.parent[v.index()] = u.0;
                        s.parent_edge[v.index()] = e.0;
                        s.depthv[v.index()] = s.depthv[u.index()] + 1;
                        s.ancestor[v.index()] = v.0;
                        s.dfs_stack.push((v, 0));
                    }
                }
                None => {
                    s.dfs_stack.pop();
                    s.black[u.index()] = true;
                    let (q_lo, q_hi) = (s.q_off[u.index()], s.q_off[u.index() + 1]);
                    for qi in q_lo..q_hi {
                        let k = s.q_items[qi as usize] as usize;
                        let (a, b) = pairs[k];
                        let other = if a == u { b } else { a };
                        if s.black[other.index()] {
                            s.lca[k] = s.ancestor[find(&mut s.ufp, other.0) as usize];
                        }
                    }
                    if let Some(&(p, _)) = s.dfs_stack.last() {
                        // Union by size, then re-anchor the class ancestor.
                        let (ru, rp) = (find(&mut s.ufp, u.0), find(&mut s.ufp, p.0));
                        if ru != rp {
                            let (big, small) = if s.ufsz[rp as usize] >= s.ufsz[ru as usize] {
                                (rp, ru)
                            } else {
                                (ru, rp)
                            };
                            s.ufp[small as usize] = big;
                            s.ufsz[big as usize] += s.ufsz[small as usize];
                        }
                        s.ancestor[find(&mut s.ufp, p.0) as usize] = p.0;
                    }
                }
            }
        }
    }
    // Marking entries (depth of LCA, endpoint, LCA), processed with the
    // shallowest LCAs first so early stopping is sound.
    s.entries.clear();
    for (k, &(w, w2)) in pairs.iter().enumerate() {
        let a = s.lca[k];
        debug_assert_ne!(
            a, NONE,
            "every pair is connected in F + B at a unique-completion node"
        );
        let a = VertexId(a);
        let d = s.depthv[a.index()];
        s.entries.push((d, w, a));
        s.entries.push((d, w2, a));
    }
    s.entries.sort_unstable();
    grow(&mut s.marked, g.num_edges(), false, &mut s.allocs);
    for i in 0..s.entries.len() {
        let (_, start, stop) = s.entries[i];
        let mut cur = start;
        while cur != stop {
            *work += 1;
            let e = s.parent_edge[cur.index()];
            debug_assert_ne!(e, NONE, "stop is an ancestor of start");
            if s.marked[e as usize] {
                break; // the rest of the walk is already marked
            }
            s.marked[e as usize] = true;
            cur = VertexId(s.parent[cur.index()]);
        }
    }
    out.extend(s.fb.iter().copied().filter(|e| s.marked[e.index()]));
}

impl MinimalSteinerProblem for SteinerForest<'_> {
    type Item = EdgeId;
    type Branch = (VertexId, VertexId);

    const NAME: &'static str = "minimal Steiner forest";

    fn split_root(&self, _shard: crate::problem::RootShard) -> Option<Self> {
        Some(SteinerForest {
            g: self.g.clone(),
            sets: self.sets.clone(),
            stats: EnumStats::default(),
            search: None,
            level_cache_cap: self.level_cache_cap,
            incremental: self.incremental,
            packed: self.packed,
        })
    }

    fn set_level_cache_cap(&mut self, cap: usize) {
        self.level_cache_cap = Some(cap.max(1));
    }

    fn set_incremental(&mut self, on: bool) {
        self.incremental = on;
    }

    fn set_packed_frontiers(&mut self, on: bool) {
        self.packed = on;
    }

    fn cache_key(&self) -> Option<crate::cache::CacheKey> {
        // The search depends on the set family only through its reduced
        // pair list (sorted, deduplicated — see `pairs_from_sets`), and
        // set-level validity is equivalent to pair-level validity (a set
        // lies in one component iff every `(first, w)` pair does), so
        // the canonical pairs are a sound and maximally-sharing key.
        let pairs = pairs_from_sets(&self.sets);
        // A forest solution lives in the components of its demand
        // vertices, so the key pins exactly those regions.
        let regions = steiner_graph::RegionMap::of_undirected(&self.g)
            .signature_of(pairs.iter().flat_map(|&(a, b)| [a, b]));
        Some(crate::cache::CacheKey {
            kind: Self::NAME,
            regions,
            query_fingerprint: crate::cache::fingerprint_vertex_pairs(&pairs),
        })
    }

    fn validate(&self) -> Result<(), SteinerError> {
        if self.sets.is_empty() {
            return Err(SteinerError::EmptyInstance);
        }
        let n = self.g.num_vertices();
        for set in &self.sets {
            // Empty sets are valid (they impose no constraint), so only
            // the member checks apply.
            crate::problem::validate_terminal_members(set, n)?;
        }
        Ok(())
    }

    fn prepare(&mut self) -> Result<Prepared<EdgeId>, SteinerError> {
        self.validate()?;
        let g = &*self.g;
        self.stats.preprocessing_work = (g.num_vertices() + g.num_edges()) as u64;
        // Precondition: each terminal set inside one component.
        for (i, set) in self.sets.iter().enumerate() {
            if !all_in_one_component(g, set, None) {
                return Err(SteinerError::DisconnectedTerminals { set: i });
            }
        }
        let pairs = pairs_from_sets(&self.sets);
        if pairs.is_empty() {
            // The empty forest is the unique minimal Steiner forest.
            return Ok(Prepared::Single(Vec::new()));
        }
        let (n, m) = (g.num_vertices(), g.num_edges());
        // Build the flat CSR once and size every scratch buffer now, so
        // the search never allocates (asserted via `scratch_allocs`).
        let gcsr = CsrUndirected::from_graph(g);
        let mut uf = UnionFind::new(n);
        uf.reserve_history(n + 1);
        let mut uf2 = UnionFind::new(n);
        uf2.reserve_history(m + 1);
        let mut bridge = BridgeScratch::default();
        bridge.preallocate(n, m);
        // The static bridges of G and the incremental G″ labels: the
        // bridges are contracted once here, forest-edge deltas join in on
        // descent (see the `gbridge` field docs for why this is exact).
        let gbridge = bridges(g, None);
        self.stats.preprocessing_work += (n + m) as u64;
        let bridge_ids: Vec<EdgeId> = (0..m)
            .map(EdgeId::new)
            .filter(|e| gbridge[e.index()])
            .collect();
        let mut span = DynamicSpanning::new();
        span.preallocate(n, 0);
        span.begin_skeleton(n);
        span.finish_skeleton();
        for &e in &bridge_ids {
            let (u, v) = gcsr.endpoints(e);
            span.contract(u, v);
        }
        let mut frames = FrameLog::new();
        frames.preallocate(pairs.len() + 2);
        let mut uc = UniqueCompletionScratch::default();
        uc.preallocate(n, m, &pairs);
        let level_cache_cap = self
            .level_cache_cap
            .unwrap_or(steiner_paths::enumerate::DEFAULT_LEVEL_CACHE_CAP);
        let mut pool = Vec::with_capacity(pairs.len() + 1);
        for _ in 0..pairs.len() + 1 {
            let mut ds = ForestDepthScratch::default();
            ds.preallocate(n, m, level_cache_cap);
            pool.push(ds);
        }
        let mut search = ForestSearch {
            pairs,
            uf,
            forest_edges: Vec::with_capacity(n + 1),
            pending: None,
            gcsr,
            rep_id: Vec::with_capacity(n),
            uf2,
            bridge,
            gbridge,
            bridge_ids,
            span,
            frames,
            contraction_ready: false,
            uc,
            pool,
            depth: 0,
            level_cache_cap,
            extra_allocs: 0,
            baseline_allocs: 0,
        };
        search.baseline_allocs = search.usage().allocs;
        self.search = Some(search);
        Ok(Prepared::Search)
    }

    fn instance_size(&self) -> (usize, usize) {
        (self.g.num_vertices(), self.g.num_edges())
    }

    fn stats(&self) -> &EnumStats {
        &self.stats
    }

    fn stats_mut(&mut self) -> &mut EnumStats {
        &mut self.stats
    }

    fn classify(&mut self, out: &mut Vec<EdgeId>) -> NodeStep<(VertexId, VertexId)> {
        let incremental = self.incremental;
        let stats = &mut self.stats;
        let search = self
            .search
            .as_mut()
            .expect("prepare() runs before the search");
        stats.work += search.pairs.len() as u64;
        if search.pairs.iter().all(|&(w, w2)| search.uf.same(w, w2)) {
            // F is a minimal Steiner forest (Lemma 21).
            return NodeStep::Complete;
        }
        let n = search.gcsr.num_vertices();
        let depth = search.depth;
        let level_cache_cap = search.level_cache_cap;
        search.ensure_depth(depth, level_cache_cap);
        if incremental {
            // Fully incremental classification: F-connectivity comes from
            // the rollback union–find and Lemma 24's G″ = G/E(F)/B labels
            // from the contract-delta layer (bridges of G/E(F) ≡ static
            // bridges of G minus self-loops — see the `gbridge` docs), so
            // no contraction or bridge pass runs here at all. O(#pairs).
            stats.classify_incremental += 1;
            #[cfg(debug_assertions)]
            search.debug_check_bridge_contraction(depth);
            let uf = &search.uf;
            let span = &search.span;
            let branch = search
                .pairs
                .iter()
                .copied()
                .find(|&(w, w2)| !uf.same(w, w2) && !span.connected(w, w2));
            return match branch {
                Some(pair) => {
                    search.pending = Some(pair);
                    // `branch` builds G/E(F) itself — only internal nodes
                    // pay for the contraction now.
                    search.contraction_ready = false;
                    NodeStep::Branch(pair)
                }
                None => {
                    // Every remaining pair goes through bridges only:
                    // unique completion inside F + B, with the live
                    // bridges read off the static list (an edge of B is a
                    // self-loop of G/E(F) iff F already connects its
                    // endpoints).
                    search.uc.fb.clear();
                    search.uc.fb.extend_from_slice(&search.forest_edges);
                    for &e in &search.bridge_ids {
                        let (u, v) = search.gcsr.endpoints(e);
                        if !search.uf.same(u, v) {
                            search.uc.fb.push(e);
                        }
                    }
                    stats.work += search.bridge_ids.len() as u64;
                    unique_completion_csr(
                        &search.gcsr,
                        &search.pairs,
                        &mut search.uc,
                        out,
                        &mut stats.work,
                    );
                    NodeStep::Unique
                }
            };
        }
        // Rebuild path (incremental classification disabled): the
        // pre-incremental engine, kept byte-identical as the conformance
        // reference — per-node contraction, bridge pass, and fresh G″.
        stats.classify_rebuilds += 1;
        let cn = search.build_contraction(depth);
        let ds = &mut search.pool[depth];
        // Bridges of the multigraph G′; G″ = G′/B.
        bridges_csr_into(&ds.cg, None, &mut search.bridge);
        stats.work += 2 * (n + search.gcsr.num_edges()) as u64;
        search.uf2.reset(cn);
        for i in 0..ds.cg.num_edges() {
            if search.bridge.is_bridge[i] {
                let (u, v) = ds.cg.endpoints(EdgeId::new(i));
                search.uf2.union(u, v);
            }
        }
        // A disconnected pair whose images differ in G″ has ≥ 2 valid paths
        // (Lemma 24): branch on the first such pair.
        let vertex_map = &ds.vertex_map;
        let uf = &search.uf;
        let uf2 = &search.uf2;
        let branch = search.pairs.iter().copied().find(|&(w, w2)| {
            !uf.same(w, w2) && !uf2.same(vertex_map[w.index()], vertex_map[w2.index()])
        });
        match branch {
            Some(pair) => {
                search.pending = Some(pair);
                search.contraction_ready = true;
                NodeStep::Branch(pair)
            }
            None => {
                // Every remaining pair goes through bridges only: unique
                // completion inside F + B.
                search.uc.fb.clear();
                search.uc.fb.extend_from_slice(&search.forest_edges);
                for i in 0..ds.cg.num_edges() {
                    if search.bridge.is_bridge[i] {
                        search.uc.fb.push(ds.orig_edge[i]);
                    }
                }
                unique_completion_csr(
                    &search.gcsr,
                    &search.pairs,
                    &mut search.uc,
                    out,
                    &mut stats.work,
                );
                NodeStep::Unique
            }
        }
    }

    fn solution(&self, out: &mut Vec<EdgeId>) {
        let search = self
            .search
            .as_ref()
            .expect("prepare() runs before the search");
        out.extend_from_slice(&search.forest_edges);
    }

    fn seal_stats(&mut self) {
        if let Some(search) = &self.search {
            let usage = search.usage();
            self.stats.note_scratch(ScratchUsage::new(
                usage.allocs - search.baseline_allocs,
                usage.bytes,
            ));
            self.stats.note_connectivity(search.span.repair_stats());
        }
    }

    fn record_subtree(&self) -> Option<SubtreeRecord<EdgeId>> {
        let search = self.search.as_ref()?;
        Some(SubtreeRecord {
            vertices: Vec::new(),
            items: search.forest_edges.clone(),
            meta: 0,
        })
    }

    fn replay_subtree(
        &mut self,
        record: &SubtreeRecord<EdgeId>,
        child: &mut dyn FnMut(&mut Self) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        self.stats.work += (self.g.num_vertices() + self.g.num_edges()) as u64;
        self.descend_edges(&record.items);
        let flow = child(self);
        self.retract_frame();
        flow
    }

    fn branch(
        &mut self,
        pair: (VertexId, VertexId),
        child: &mut dyn FnMut(&mut Self) -> ControlFlow<()>,
    ) -> (u64, ControlFlow<()>) {
        let per_child = (self.g.num_vertices() + self.g.num_edges()) as u64;
        // Take this depth's scratch — holding the contraction, built here
        // on the incremental path (only internal nodes pay for it) or by
        // `classify` on the rebuild path — so the enumeration can borrow
        // it while the sink mutates `self`.
        let (mut ds, depth) = {
            let search = self
                .search
                .as_mut()
                .expect("prepare() runs before the search");
            let pending = search
                .pending
                .take()
                .expect("classify() stashes the branch pair");
            debug_assert_eq!(pending, pair, "branch target matches the classified pair");
            let depth = search.depth;
            if !search.contraction_ready {
                let _cn = search.build_contraction(depth);
                self.stats.work += (search.gcsr.num_vertices() + search.gcsr.num_edges()) as u64;
            }
            search.contraction_ready = false;
            search.depth = depth + 1;
            (std::mem::take(&mut search.pool[depth]), depth)
        };
        let (w, w2) = pair;
        let (cw, cw2) = (ds.vertex_map[w.index()], ds.vertex_map[w2.index()]);
        ds.doubled.rebuild_doubled_from_csr(&ds.cg);
        // The doubled graph was just rebuilt from this branch's
        // contraction, so stale BFS trees from other contractions must
        // not survive: full `begin`, not `begin_same_graph`.
        ds.path.begin(ds.doubled.num_vertices());
        let mut children = 0u64;
        let mut flow = ControlFlow::Continue(());
        let ForestDepthScratch {
            doubled,
            path,
            orig_edge,
            edges,
            ..
        } = &mut ds;
        let pstats = enumerate_paths_view(
            doubled,
            cw,
            cw2,
            EnumerateOptions {
                packed_frontiers: self.packed,
                ..EnumerateOptions::default()
            },
            false,
            path,
            &mut |p| {
                children += 1;
                self.stats.work += per_child;
                // Doubled arc → contracted edge → original edge.
                edges.clear();
                edges.extend(p.arcs.iter().map(|a| orig_edge[a.index() / 2]));
                self.descend_edges(edges);
                let f = child(self);
                self.retract_frame();
                if f.is_break() {
                    flow = ControlFlow::Break(());
                }
                f
            },
        );
        self.stats.path_gen_work += pstats.work;
        self.stats.fstp_cache_hits += pstats.fstp_cache_hits;
        self.stats.fstp_cache_misses += pstats.fstp_cache_misses;
        let search = self.search.as_mut().expect("search state");
        search.pool[depth] = ds;
        search.depth = depth;
        debug_assert!(
            children >= 2 || flow.is_break(),
            "Lemma 24 guarantees at least two valid paths on a branch pair"
        );
        (children, flow)
    }
}

/// Enumerates all minimal Steiner forests of `(g, sets)` through an
/// arbitrary [`SolutionSink`].
///
/// **Deprecated shim** over the [`Enumeration`](crate::solver::Enumeration)
/// builder — new code should write `solver::run_with_sink(&mut SteinerForest::new(g, sets), emitter)`.
/// The shim keeps the pre-0.2 lenient contract: empty, disconnected, or
/// unreachable instances silently emit nothing (where the builder returns
/// a typed [`SteinerError`]), and out-of-range ids panic.
#[deprecated(
    since = "0.2.0",
    note = "use `Enumeration::new(SteinerForest::new(g, sets))` with a custom sink"
)]
pub fn enumerate_minimal_steiner_forests_with(
    g: &UndirectedGraph,
    sets: &[Vec<VertexId>],
    emitter: &mut dyn SolutionSink<EdgeId>,
) -> EnumStats {
    if sets.is_empty() {
        // Historical lenient contract: no constraints, so the empty forest
        // is the unique minimal Steiner forest.
        let mut stats = EnumStats::default();
        stats.preprocessing_work = (g.num_vertices() + g.num_edges()) as u64;
        stats.note_emission();
        let _ = emitter.solution(&[], stats.work);
        let _ = emitter.finish();
        stats.note_end();
        return stats;
    }
    // Historical lenient contract: duplicate members within a set were
    // silently deduplicated (the strict API reports them).
    let deduped: Vec<Vec<VertexId>> = sets
        .iter()
        .map(|set| {
            let mut s = set.clone();
            s.sort_unstable();
            s.dedup();
            s
        })
        .collect();
    let mut problem = SteinerForest::new(g, &deduped);
    run_sink_lenient(&mut problem, emitter)
}

/// Enumerates all minimal Steiner forests of `(g, sets)` with amortized
/// O(n + m) time per solution (Theorem 25), emitting directly.
///
/// **Deprecated shim** over the [`Enumeration`](crate::solver::Enumeration)
/// builder — new code should write `Enumeration::new(SteinerForest::new(g, sets)).for_each(sink)`.
/// The shim keeps the pre-0.2 lenient contract: empty, disconnected, or
/// unreachable instances silently emit nothing (where the builder returns
/// a typed [`SteinerError`]), and out-of-range ids panic.
#[deprecated(
    since = "0.2.0",
    note = "use `Enumeration::new(SteinerForest::new(g, sets)).for_each(sink)`"
)]
pub fn enumerate_minimal_steiner_forests(
    g: &UndirectedGraph,
    sets: &[Vec<VertexId>],
    sink: &mut dyn FnMut(&[EdgeId]) -> ControlFlow<()>,
) -> EnumStats {
    let mut direct = DirectSink { sink };
    #[allow(deprecated)]
    enumerate_minimal_steiner_forests_with(g, sets, &mut direct)
}

/// Queued variant: worst-case O(n + m) delay via the output queue
/// (Theorem 25).
///
/// **Deprecated shim** over the [`Enumeration`](crate::solver::Enumeration)
/// builder — new code should write `Enumeration::new(SteinerForest::new(g, sets)).with_queue(config).for_each(sink)`.
/// The shim keeps the pre-0.2 lenient contract: empty, disconnected, or
/// unreachable instances silently emit nothing (where the builder returns
/// a typed [`SteinerError`]), and out-of-range ids panic.
#[deprecated(
    since = "0.2.0",
    note = "use `Enumeration::new(SteinerForest::new(g, sets)).with_queue(config).for_each(sink)`"
)]
pub fn enumerate_minimal_steiner_forests_queued(
    g: &UndirectedGraph,
    sets: &[Vec<VertexId>],
    config: Option<QueueConfig>,
    sink: &mut dyn FnMut(&[EdgeId]) -> ControlFlow<()>,
) -> EnumStats {
    let config = config.unwrap_or_else(|| QueueConfig::for_graph(g.num_vertices(), g.num_edges()));
    let mut queue = OutputQueue::new(config, sink);
    #[allow(deprecated)]
    enumerate_minimal_steiner_forests_with(g, sets, &mut queue)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;
    use crate::solver::Enumeration;

    fn collect(g: &UndirectedGraph, sets: &[Vec<VertexId>]) -> BTreeSet<Vec<EdgeId>> {
        let mut out = BTreeSet::new();
        Enumeration::new(SteinerForest::new(g, sets))
            .for_each(|edges| {
                assert!(out.insert(edges.to_vec()), "duplicate solution {edges:?}");
                ControlFlow::Continue(())
            })
            .expect("valid instance");
        out
    }

    #[test]
    fn pairs_conversion() {
        let sets = vec![
            vec![VertexId(3), VertexId(1), VertexId(2)],
            vec![VertexId(1), VertexId(3)],
            vec![VertexId(5)],
            vec![],
        ];
        let pairs = pairs_from_sets(&sets);
        assert_eq!(
            pairs,
            vec![(VertexId(1), VertexId(2)), (VertexId(1), VertexId(3)),]
        );
    }

    #[test]
    fn single_set_equals_steiner_tree_enumeration() {
        use crate::improved::SteinerTree;
        let g = steiner_graph::generators::grid(2, 4);
        let w = vec![VertexId(0), VertexId(7)];
        let forests = collect(&g, std::slice::from_ref(&w));
        let trees: BTreeSet<Vec<EdgeId>> = Enumeration::new(SteinerTree::new(&g, &w))
            .collect_vec()
            .unwrap()
            .into_iter()
            .collect();
        assert_eq!(forests, trees, "|W| = 1 set: forest == tree enumeration");
    }

    #[test]
    fn empty_pairs_give_empty_forest() {
        let g = UndirectedGraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let got = collect(&g, &[vec![VertexId(1)]]);
        assert_eq!(got.len(), 1);
        assert!(got.contains(&Vec::new()));
    }

    #[test]
    fn two_disjoint_pairs_on_a_path() {
        let g = UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let sets = vec![
            vec![VertexId(0), VertexId(1)],
            vec![VertexId(2), VertexId(3)],
        ];
        let got = collect(&g, &sets);
        assert_eq!(got, brute::minimal_steiner_forests(&g, &sets));
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn overlapping_pairs_share_structure() {
        // Square: pairs {0,2} and {1,3} interact heavily.
        let g = UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let sets = vec![
            vec![VertexId(0), VertexId(2)],
            vec![VertexId(1), VertexId(3)],
        ];
        let got = collect(&g, &sets);
        assert_eq!(got, brute::minimal_steiner_forests(&g, &sets));
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xf0123);
        for case in 0..50 {
            let n = 3 + case % 5;
            let m = (n - 1 + rng.gen_range(0..4)).min(n * (n - 1) / 2);
            let g = steiner_graph::generators::random_connected_graph(n, m, &mut rng);
            let num_sets = 1 + rng.gen_range(0..3usize);
            let sets: Vec<Vec<VertexId>> = (0..num_sets)
                .map(|_| {
                    let k = 2 + rng.gen_range(0..2usize).min(n - 2);
                    steiner_graph::generators::random_terminals(n, k, &mut rng)
                })
                .collect();
            assert_eq!(
                collect(&g, &sets),
                brute::minimal_steiner_forests(&g, &sets),
                "graph {g:?} sets {sets:?}"
            );
        }
    }

    #[test]
    fn all_outputs_verify_minimal() {
        let g = steiner_graph::generators::grid(3, 3);
        let sets = vec![
            vec![VertexId(0), VertexId(8)],
            vec![VertexId(2), VertexId(6)],
        ];
        let mut count = 0;
        Enumeration::new(SteinerForest::new(&g, &sets))
            .for_each(|edges| {
                count += 1;
                assert!(crate::verify::is_minimal_steiner_forest(&g, &sets, edges));
                ControlFlow::Continue(())
            })
            .unwrap();
        assert!(count > 1);
    }

    #[test]
    fn queued_matches_direct() {
        let g = steiner_graph::generators::grid(3, 3);
        let sets = vec![
            vec![VertexId(0), VertexId(8)],
            vec![VertexId(2), VertexId(6)],
        ];
        let direct = collect(&g, &sets);
        let mut queued = BTreeSet::new();
        Enumeration::new(SteinerForest::new(&g, &sets))
            .with_default_queue()
            .for_each(|edges| {
                assert!(queued.insert(edges.to_vec()));
                ControlFlow::Continue(())
            })
            .unwrap();
        assert_eq!(direct, queued);
    }

    #[test]
    fn iterator_front_end_matches_direct() {
        let g = steiner_graph::generators::grid(3, 3);
        let sets = vec![
            vec![VertexId(0), VertexId(8)],
            vec![VertexId(2), VertexId(6)],
        ];
        let direct = collect(&g, &sets);
        let iterated: BTreeSet<Vec<EdgeId>> = Enumeration::new(SteinerForest::from_graph(g, &sets))
            .into_iter()
            .unwrap()
            .collect();
        assert_eq!(direct, iterated);
    }

    #[test]
    fn search_does_not_allocate_after_prepare() {
        let g = steiner_graph::generators::grid(3, 4);
        let sets = vec![
            vec![VertexId(0), VertexId(11)],
            vec![VertexId(3), VertexId(8)],
        ];
        let (run, stats) = Enumeration::new(SteinerForest::new(&g, &sets)).with_stats();
        run.run().unwrap();
        let stats = stats.get();
        assert!(stats.solutions > 0);
        assert_eq!(
            stats.scratch_allocs, 0,
            "the search must not allocate after prepare()"
        );
        assert!(stats.peak_scratch_bytes > 0, "scratch accounting is live");
    }

    #[test]
    fn disconnected_set_is_an_error() {
        let g = UndirectedGraph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let err = Enumeration::new(SteinerForest::new(&g, &[vec![VertexId(0), VertexId(2)]]))
            .run()
            .unwrap_err();
        assert_eq!(err, SteinerError::DisconnectedTerminals { set: 0 });
    }

    #[test]
    fn deprecated_shim_treats_disconnected_as_empty() {
        #![allow(deprecated)]
        let g = UndirectedGraph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let mut got = BTreeSet::new();
        enumerate_minimal_steiner_forests(&g, &[vec![VertexId(0), VertexId(2)]], &mut |e| {
            got.insert(e.to_vec());
            ControlFlow::Continue(())
        });
        assert!(got.is_empty());
    }
}
