//! Minimal Steiner forest enumeration (§5, Theorems 23 & 25), exposed as
//! the [`SteinerForest`] problem type for the generic
//! [`crate::solver::Enumeration`] engine.
//!
//! Terminal sets are reduced to pairs (`{w₁,…,w_k}` →
//! `{w₁,w₂}, …, {w₁,w_k}` — the observation before Lemma 21). A partial
//! solution is a forest `F` that is a union of paths for a subset of the
//! pairs; children attach one `w`-`w′` path of the contracted multigraph
//! `G/E(F)` for some still-disconnected pair (valid paths ↔ paths of
//! `G/E(F)`, Lemma 24's surrounding discussion).
//!
//! The improved node rule (Theorem 25): a pair has a *unique* valid path
//! iff its endpoints coincide after also contracting the bridges of
//! `G/E(F)` (Lemma 24). If some disconnected pair does not coincide,
//! branch on it (≥ 2 children guaranteed); otherwise `F` plus the bridges
//! contains the unique minimal completion, which is extracted with the
//! LCA-based marking procedure in linear time.

use crate::problem::{MinimalSteinerProblem, NodeStep, Prepared, SteinerError};
use crate::queue::{DirectSink, OutputQueue, QueueConfig, SolutionSink};
use crate::solver::run_sink_lenient;
use crate::stats::EnumStats;
use std::borrow::Cow;
use std::collections::BTreeSet;
use std::ops::ControlFlow;
use steiner_graph::bridges::bridges;
use steiner_graph::connectivity::all_in_one_component;
use steiner_graph::contraction::{contract_edge_set, ContractedGraph};
use steiner_graph::lca::Lca;
use steiner_graph::union_find::UnionFind;
use steiner_graph::{EdgeId, UndirectedGraph, VertexId};
use steiner_paths::undirected::enumerate_st_paths;

/// Reduces terminal sets to deduplicated unordered pairs. Singleton and
/// empty sets impose no constraint and vanish.
pub fn pairs_from_sets(sets: &[Vec<VertexId>]) -> Vec<(VertexId, VertexId)> {
    let mut pairs: BTreeSet<(VertexId, VertexId)> = BTreeSet::new();
    for set in sets {
        let mut members = set.clone();
        members.sort_unstable();
        members.dedup();
        if let Some((&first, rest)) = members.split_first() {
            for &w in rest {
                pairs.insert((first.min(w), first.max(w)));
            }
        }
    }
    pairs.into_iter().collect()
}

/// The minimal Steiner forest problem (§5): find all inclusion-minimal
/// edge sets connecting every terminal set of `sets` (each set within
/// itself; different sets may or may not share trees).
///
/// ```
/// use steiner_core::{Enumeration, SteinerForest};
/// use steiner_graph::{UndirectedGraph, VertexId};
///
/// // Path 0-1-2-3 with pairs {0,1} and {2,3}: the unique minimal forest
/// // takes the two outer edges.
/// let g = UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
/// let sets = vec![vec![VertexId(0), VertexId(1)], vec![VertexId(2), VertexId(3)]];
/// let forests = Enumeration::new(SteinerForest::new(&g, &sets)).collect_vec().unwrap();
/// assert_eq!(forests.len(), 1);
/// assert_eq!(forests[0].len(), 2);
/// ```
pub struct SteinerForest<'g> {
    g: Cow<'g, UndirectedGraph>,
    sets: Vec<Vec<VertexId>>,
    stats: EnumStats,
    search: Option<ForestSearch>,
}

/// Mutable search state installed by `prepare`.
struct ForestSearch {
    pairs: Vec<(VertexId, VertexId)>,
    uf: UnionFind,
    forest_edges: Vec<EdgeId>,
    /// Contraction computed by `classify`, consumed by the matching
    /// `branch` call (avoids recomputing `G/E(F)`).
    pending: Option<PendingBranch>,
}

struct PendingBranch {
    contraction: ContractedGraph,
    pair: (VertexId, VertexId),
}

impl<'g> SteinerForest<'g> {
    /// A problem instance borrowing the graph.
    pub fn new(g: &'g UndirectedGraph, sets: &[Vec<VertexId>]) -> Self {
        SteinerForest {
            g: Cow::Borrowed(g),
            sets: sets.to_vec(),
            stats: EnumStats::default(),
            search: None,
        }
    }

    /// A problem instance owning the graph.
    pub fn from_graph(g: UndirectedGraph, sets: &[Vec<VertexId>]) -> SteinerForest<'static> {
        SteinerForest {
            g: Cow::Owned(g),
            sets: sets.to_vec(),
            stats: EnumStats::default(),
            search: None,
        }
    }

    /// Clones the borrowed graph (if any) so the instance becomes
    /// `'static` for the iterator front-end.
    pub fn into_owned(self) -> SteinerForest<'static> {
        SteinerForest {
            g: Cow::Owned(self.g.into_owned()),
            sets: self.sets,
            stats: self.stats,
            search: self.search,
        }
    }
}

/// The unique minimal Steiner forest containing `F`, given that every
/// disconnected pair has a unique valid path: mark, over the forest
/// `F + B`, the edges lying on some pair's tree path (the paper's
/// sorted-LCA marking), and return exactly those.
fn unique_completion(
    g: &UndirectedGraph,
    pairs: &[(VertexId, VertexId)],
    forest_plus_bridges: &[EdgeId],
    work: &mut u64,
) -> Vec<EdgeId> {
    let n = g.num_vertices();
    *work += (n + forest_plus_bridges.len()) as u64;
    // Root the forest: BFS over the edge set.
    let mut incident: Vec<Vec<EdgeId>> = vec![Vec::new(); n];
    let mut present = vec![false; n];
    for &e in forest_plus_bridges {
        let (u, v) = g.endpoints(e);
        incident[u.index()].push(e);
        incident[v.index()].push(e);
        present[u.index()] = true;
        present[v.index()] = true;
    }
    let mut parent: Vec<Option<VertexId>> = vec![None; n];
    let mut parent_edge: Vec<Option<EdgeId>> = vec![None; n];
    let mut visited = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    for v in 0..n {
        if !present[v] || visited[v] {
            continue;
        }
        visited[v] = true;
        queue.push_back(VertexId::new(v));
        while let Some(u) = queue.pop_front() {
            for &e in &incident[u.index()] {
                let w = g.other_endpoint(e, u);
                if !visited[w.index()] {
                    visited[w.index()] = true;
                    parent[w.index()] = Some(u);
                    parent_edge[w.index()] = Some(e);
                    queue.push_back(w);
                }
            }
        }
    }
    let lca = Lca::from_parents(&parent, &present);
    // Marking entries (depth of LCA, endpoint, LCA), processed with the
    // shallowest LCAs first so early stopping is sound.
    let mut entries: Vec<(u32, VertexId, VertexId)> = Vec::with_capacity(2 * pairs.len());
    for &(w, w2) in pairs {
        let a = lca
            .lca(w, w2)
            .expect("every pair is connected in F + B at a unique-completion node");
        let d = lca.depth_of(a);
        entries.push((d, w, a));
        entries.push((d, w2, a));
    }
    entries.sort_unstable();
    let mut marked = vec![false; g.num_edges()];
    for &(_, start, stop) in &entries {
        let mut cur = start;
        while cur != stop {
            *work += 1;
            let e = parent_edge[cur.index()].expect("stop is an ancestor of start");
            if marked[e.index()] {
                break; // the rest of the walk is already marked
            }
            marked[e.index()] = true;
            cur = parent[cur.index()].expect("stop is an ancestor of start");
        }
    }
    forest_plus_bridges
        .iter()
        .copied()
        .filter(|e| marked[e.index()])
        .collect()
}

impl MinimalSteinerProblem for SteinerForest<'_> {
    type Item = EdgeId;
    type Branch = (VertexId, VertexId);

    const NAME: &'static str = "minimal Steiner forest";

    fn validate(&self) -> Result<(), SteinerError> {
        if self.sets.is_empty() {
            return Err(SteinerError::EmptyInstance);
        }
        let n = self.g.num_vertices();
        for set in &self.sets {
            // Empty sets are valid (they impose no constraint), so only
            // the member checks apply.
            crate::problem::validate_terminal_members(set, n)?;
        }
        Ok(())
    }

    fn prepare(&mut self) -> Result<Prepared<EdgeId>, SteinerError> {
        self.validate()?;
        let g = &*self.g;
        self.stats.preprocessing_work = (g.num_vertices() + g.num_edges()) as u64;
        // Precondition: each terminal set inside one component.
        for (i, set) in self.sets.iter().enumerate() {
            if !all_in_one_component(g, set, None) {
                return Err(SteinerError::DisconnectedTerminals { set: i });
            }
        }
        let pairs = pairs_from_sets(&self.sets);
        if pairs.is_empty() {
            // The empty forest is the unique minimal Steiner forest.
            return Ok(Prepared::Single(Vec::new()));
        }
        self.search = Some(ForestSearch {
            pairs,
            uf: UnionFind::new(g.num_vertices()),
            forest_edges: Vec::new(),
            pending: None,
        });
        Ok(Prepared::Search)
    }

    fn instance_size(&self) -> (usize, usize) {
        (self.g.num_vertices(), self.g.num_edges())
    }

    fn stats(&self) -> &EnumStats {
        &self.stats
    }

    fn stats_mut(&mut self) -> &mut EnumStats {
        &mut self.stats
    }

    fn classify(&mut self) -> NodeStep<EdgeId, (VertexId, VertexId)> {
        let g: &UndirectedGraph = &self.g;
        let stats = &mut self.stats;
        let search = self
            .search
            .as_mut()
            .expect("prepare() runs before the search");
        stats.work += search.pairs.len() as u64;
        if search.pairs.iter().all(|&(w, w2)| search.uf.same(w, w2)) {
            // F is a minimal Steiner forest (Lemma 21).
            return NodeStep::Complete;
        }
        // G′ = G/E(F); bridges of the multigraph; G″ = G′/B.
        let contraction = contract_edge_set(g, &search.forest_edges);
        let bridge = bridges(&contraction.graph, None);
        stats.work += 2 * (g.num_vertices() + g.num_edges()) as u64;
        let mut uf2 = UnionFind::new(contraction.graph.num_vertices());
        for e in contraction.graph.edges() {
            if bridge[e.index()] {
                let (u, v) = contraction.graph.endpoints(e);
                uf2.union(u, v);
            }
        }
        // A disconnected pair whose images differ in G″ has ≥ 2 valid paths
        // (Lemma 24): branch on the first such pair.
        let branch = search.pairs.iter().copied().find(|&(w, w2)| {
            !search.uf.same(w, w2) && !uf2.same(contraction.image(w), contraction.image(w2))
        });
        match branch {
            Some(pair) => {
                search.pending = Some(PendingBranch { contraction, pair });
                NodeStep::Branch(pair)
            }
            None => {
                // Every remaining pair goes through bridges only: unique
                // completion inside F + B.
                let mut fb = search.forest_edges.clone();
                fb.extend(
                    contraction
                        .graph
                        .edges()
                        .filter(|e| bridge[e.index()])
                        .map(|e| contraction.orig_edge[e.index()]),
                );
                NodeStep::Unique(unique_completion(g, &search.pairs, &fb, &mut stats.work))
            }
        }
    }

    fn solution(&self, out: &mut Vec<EdgeId>) {
        let search = self
            .search
            .as_ref()
            .expect("prepare() runs before the search");
        out.extend_from_slice(&search.forest_edges);
    }

    fn branch(
        &mut self,
        pair: (VertexId, VertexId),
        child: &mut dyn FnMut(&mut Self) -> ControlFlow<()>,
    ) -> (u64, ControlFlow<()>) {
        let per_child = (self.g.num_vertices() + self.g.num_edges()) as u64;
        let pending = {
            let search = self
                .search
                .as_mut()
                .expect("prepare() runs before the search");
            search
                .pending
                .take()
                .expect("classify() stashes the contraction")
        };
        debug_assert_eq!(
            pending.pair, pair,
            "branch target matches the classified pair"
        );
        let (w, w2) = pair;
        let contraction = pending.contraction;
        let mut children = 0u64;
        let mut flow = ControlFlow::Continue(());
        let _pstats = enumerate_st_paths(
            &contraction.graph,
            contraction.image(w),
            contraction.image(w2),
            None,
            &mut |p| {
                children += 1;
                self.stats.work += per_child;
                let orig: Vec<EdgeId> = p
                    .edges
                    .iter()
                    .map(|e| contraction.orig_edge[e.index()])
                    .collect();
                let search = self.search.as_mut().expect("search state");
                let snap = search.uf.snapshot();
                for &e in &orig {
                    let (u, v) = self.g.endpoints(e);
                    let joined = search.uf.union(u, v);
                    debug_assert!(joined, "a valid path never closes a cycle in F");
                }
                let base = search.forest_edges.len();
                search.forest_edges.extend_from_slice(&orig);
                let f = child(self);
                let search = self.search.as_mut().expect("search state");
                search.forest_edges.truncate(base);
                search.uf.rollback(snap);
                if f.is_break() {
                    flow = ControlFlow::Break(());
                }
                f
            },
        );
        debug_assert!(
            children >= 2 || flow.is_break(),
            "Lemma 24 guarantees at least two valid paths on a branch pair"
        );
        (children, flow)
    }
}

/// Enumerates all minimal Steiner forests of `(g, sets)` through an
/// arbitrary [`SolutionSink`].
#[deprecated(
    since = "0.2.0",
    note = "use `Enumeration::new(SteinerForest::new(g, sets))` with a custom sink"
)]
pub fn enumerate_minimal_steiner_forests_with(
    g: &UndirectedGraph,
    sets: &[Vec<VertexId>],
    emitter: &mut dyn SolutionSink<EdgeId>,
) -> EnumStats {
    if sets.is_empty() {
        // Historical lenient contract: no constraints, so the empty forest
        // is the unique minimal Steiner forest.
        let mut stats = EnumStats::default();
        stats.preprocessing_work = (g.num_vertices() + g.num_edges()) as u64;
        stats.note_emission();
        let _ = emitter.solution(&[], stats.work);
        let _ = emitter.finish();
        stats.note_end();
        return stats;
    }
    // Historical lenient contract: duplicate members within a set were
    // silently deduplicated (the strict API reports them).
    let deduped: Vec<Vec<VertexId>> = sets
        .iter()
        .map(|set| {
            let mut s = set.clone();
            s.sort_unstable();
            s.dedup();
            s
        })
        .collect();
    let mut problem = SteinerForest::new(g, &deduped);
    run_sink_lenient(&mut problem, emitter)
}

/// Enumerates all minimal Steiner forests of `(g, sets)` with amortized
/// O(n + m) time per solution (Theorem 25), emitting directly.
#[deprecated(
    since = "0.2.0",
    note = "use `Enumeration::new(SteinerForest::new(g, sets)).for_each(sink)`"
)]
pub fn enumerate_minimal_steiner_forests(
    g: &UndirectedGraph,
    sets: &[Vec<VertexId>],
    sink: &mut dyn FnMut(&[EdgeId]) -> ControlFlow<()>,
) -> EnumStats {
    let mut direct = DirectSink { sink };
    #[allow(deprecated)]
    enumerate_minimal_steiner_forests_with(g, sets, &mut direct)
}

/// Queued variant: worst-case O(m) delay via the output queue (Theorem 25).
#[deprecated(
    since = "0.2.0",
    note = "use `Enumeration::new(SteinerForest::new(g, sets)).with_queue(config).for_each(sink)`"
)]
pub fn enumerate_minimal_steiner_forests_queued(
    g: &UndirectedGraph,
    sets: &[Vec<VertexId>],
    config: Option<QueueConfig>,
    sink: &mut dyn FnMut(&[EdgeId]) -> ControlFlow<()>,
) -> EnumStats {
    let config = config.unwrap_or_else(|| QueueConfig::for_graph(g.num_vertices(), g.num_edges()));
    let mut queue = OutputQueue::new(config, sink);
    #[allow(deprecated)]
    enumerate_minimal_steiner_forests_with(g, sets, &mut queue)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;
    use crate::solver::Enumeration;

    fn collect(g: &UndirectedGraph, sets: &[Vec<VertexId>]) -> BTreeSet<Vec<EdgeId>> {
        let mut out = BTreeSet::new();
        Enumeration::new(SteinerForest::new(g, sets))
            .for_each(|edges| {
                assert!(out.insert(edges.to_vec()), "duplicate solution {edges:?}");
                ControlFlow::Continue(())
            })
            .expect("valid instance");
        out
    }

    #[test]
    fn pairs_conversion() {
        let sets = vec![
            vec![VertexId(3), VertexId(1), VertexId(2)],
            vec![VertexId(1), VertexId(3)],
            vec![VertexId(5)],
            vec![],
        ];
        let pairs = pairs_from_sets(&sets);
        assert_eq!(
            pairs,
            vec![(VertexId(1), VertexId(2)), (VertexId(1), VertexId(3)),]
        );
    }

    #[test]
    fn single_set_equals_steiner_tree_enumeration() {
        use crate::improved::SteinerTree;
        let g = steiner_graph::generators::grid(2, 4);
        let w = vec![VertexId(0), VertexId(7)];
        let forests = collect(&g, std::slice::from_ref(&w));
        let trees: BTreeSet<Vec<EdgeId>> = Enumeration::new(SteinerTree::new(&g, &w))
            .collect_vec()
            .unwrap()
            .into_iter()
            .collect();
        assert_eq!(forests, trees, "|W| = 1 set: forest == tree enumeration");
    }

    #[test]
    fn empty_pairs_give_empty_forest() {
        let g = UndirectedGraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let got = collect(&g, &[vec![VertexId(1)]]);
        assert_eq!(got.len(), 1);
        assert!(got.contains(&Vec::new()));
    }

    #[test]
    fn two_disjoint_pairs_on_a_path() {
        let g = UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let sets = vec![
            vec![VertexId(0), VertexId(1)],
            vec![VertexId(2), VertexId(3)],
        ];
        let got = collect(&g, &sets);
        assert_eq!(got, brute::minimal_steiner_forests(&g, &sets));
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn overlapping_pairs_share_structure() {
        // Square: pairs {0,2} and {1,3} interact heavily.
        let g = UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let sets = vec![
            vec![VertexId(0), VertexId(2)],
            vec![VertexId(1), VertexId(3)],
        ];
        let got = collect(&g, &sets);
        assert_eq!(got, brute::minimal_steiner_forests(&g, &sets));
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xf0123);
        for case in 0..50 {
            let n = 3 + case % 5;
            let m = (n - 1 + rng.gen_range(0..4)).min(n * (n - 1) / 2);
            let g = steiner_graph::generators::random_connected_graph(n, m, &mut rng);
            let num_sets = 1 + rng.gen_range(0..3usize);
            let sets: Vec<Vec<VertexId>> = (0..num_sets)
                .map(|_| {
                    let k = 2 + rng.gen_range(0..2usize).min(n - 2);
                    steiner_graph::generators::random_terminals(n, k, &mut rng)
                })
                .collect();
            assert_eq!(
                collect(&g, &sets),
                brute::minimal_steiner_forests(&g, &sets),
                "graph {g:?} sets {sets:?}"
            );
        }
    }

    #[test]
    fn all_outputs_verify_minimal() {
        let g = steiner_graph::generators::grid(3, 3);
        let sets = vec![
            vec![VertexId(0), VertexId(8)],
            vec![VertexId(2), VertexId(6)],
        ];
        let mut count = 0;
        Enumeration::new(SteinerForest::new(&g, &sets))
            .for_each(|edges| {
                count += 1;
                assert!(crate::verify::is_minimal_steiner_forest(&g, &sets, edges));
                ControlFlow::Continue(())
            })
            .unwrap();
        assert!(count > 1);
    }

    #[test]
    fn queued_matches_direct() {
        let g = steiner_graph::generators::grid(3, 3);
        let sets = vec![
            vec![VertexId(0), VertexId(8)],
            vec![VertexId(2), VertexId(6)],
        ];
        let direct = collect(&g, &sets);
        let mut queued = BTreeSet::new();
        Enumeration::new(SteinerForest::new(&g, &sets))
            .with_default_queue()
            .for_each(|edges| {
                assert!(queued.insert(edges.to_vec()));
                ControlFlow::Continue(())
            })
            .unwrap();
        assert_eq!(direct, queued);
    }

    #[test]
    fn iterator_front_end_matches_direct() {
        let g = steiner_graph::generators::grid(3, 3);
        let sets = vec![
            vec![VertexId(0), VertexId(8)],
            vec![VertexId(2), VertexId(6)],
        ];
        let direct = collect(&g, &sets);
        let iterated: BTreeSet<Vec<EdgeId>> =
            Enumeration::new(SteinerForest::from_graph(g.clone(), &sets))
                .into_iter()
                .unwrap()
                .collect();
        assert_eq!(direct, iterated);
    }

    #[test]
    fn disconnected_set_is_an_error() {
        let g = UndirectedGraph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let err = Enumeration::new(SteinerForest::new(&g, &[vec![VertexId(0), VertexId(2)]]))
            .run()
            .unwrap_err();
        assert_eq!(err, SteinerError::DisconnectedTerminals { set: 0 });
    }

    #[test]
    fn deprecated_shim_treats_disconnected_as_empty() {
        #![allow(deprecated)]
        let g = UndirectedGraph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let mut got = BTreeSet::new();
        enumerate_minimal_steiner_forests(&g, &[vec![VertexId(0), VertexId(2)]], &mut |e| {
            got.insert(e.to_vec());
            ControlFlow::Continue(())
        });
        assert!(got.is_empty());
    }
}
