//! The generic Algorithm-3 engine and the [`Enumeration`] builder.
//!
//! [`Enumeration`] drives any [`MinimalSteinerProblem`] through one shared
//! recursion and offers three interchangeable front-ends:
//!
//! * **push** — [`Enumeration::for_each`] hands each solution to a sink
//!   closure the moment it is emitted (return
//!   [`ControlFlow::Break`](std::ops::ControlFlow) to stop early);
//! * **pull** — [`Enumeration::into_iter`] runs the enumeration on a
//!   dedicated large-stack worker thread (via
//!   [`steiner_paths::streaming`]) and yields owned solutions through a
//!   plain [`Iterator`]; dropping the iterator stops the producer;
//! * **bounded** — [`Enumeration::with_limit`] caps the number of
//!   delivered solutions, and [`Enumeration::with_queue`] /
//!   [`Enumeration::with_default_queue`] interpose the Theorem-20 output
//!   queue for a worst-case (rather than amortized) delay bound.
//!
//! ```
//! use steiner_core::{Enumeration, SteinerTree};
//! use steiner_graph::{UndirectedGraph, VertexId};
//!
//! // A square: two ways to connect opposite corners.
//! let g = UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
//! let trees = Enumeration::new(SteinerTree::new(&g, &[VertexId(0), VertexId(2)]))
//!     .collect_vec()
//!     .unwrap();
//! assert_eq!(trees.len(), 2);
//! ```

use crate::problem::{MinimalSteinerProblem, NodeStep, Prepared, SteinerError};
use crate::queue::{DirectSink, OutputQueue, QueueConfig, SolutionSink};
use crate::stats::EnumStats;
use std::ops::ControlFlow;
use std::sync::{Arc, Mutex};

/// A shared, clonable handle to the statistics of one enumeration run,
/// produced by [`Enumeration::with_stats`]. The final [`EnumStats`] are
/// published when the run finishes (also on early termination); for the
/// iterator front-end that happens on the worker thread, so read the
/// handle only after the iterator is exhausted or dropped.
#[derive(Clone, Default)]
pub struct StatsHandle(Arc<Mutex<EnumStats>>);

impl StatsHandle {
    /// The most recently published statistics.
    ///
    /// Robust against a poisoned inner mutex: if the worker thread
    /// panicked mid-run, later reads recover the last published value
    /// instead of compounding the panic.
    pub fn get(&self) -> EnumStats {
        *self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn set(&self, stats: EnumStats) {
        *self.0.lock().unwrap_or_else(|e| e.into_inner()) = stats;
    }
}

/// The shared Algorithm-3 recursion: classify the node, emit leaves,
/// branch internal nodes. `scratch` is the engine's only per-run buffer —
/// classify writes unique completions straight into it, so a node costs
/// zero engine-side allocations.
fn recurse<P: MinimalSteinerProblem>(
    p: &mut P,
    depth: u32,
    emitter: &mut dyn SolutionSink<P::Item>,
    scratch: &mut Vec<P::Item>,
) -> ControlFlow<()> {
    emitter.tick(p.stats().work)?;
    scratch.clear();
    match p.classify(scratch) {
        NodeStep::Complete => {
            p.stats_mut().note_node(0, depth);
            scratch.clear();
            p.solution(scratch);
            emit(p, emitter, scratch)
        }
        NodeStep::Unique => {
            // classify filled `scratch` with the unique completion.
            p.stats_mut().note_node(0, depth);
            emit(p, emitter, scratch)
        }
        NodeStep::Branch(at) => {
            let (children, flow) = p.branch(at, &mut |q| recurse(q, depth + 1, emitter, scratch));
            p.stats_mut().note_node(children, depth);
            flow
        }
    }
}

fn emit<P: MinimalSteinerProblem>(
    p: &mut P,
    emitter: &mut dyn SolutionSink<P::Item>,
    scratch: &mut [P::Item],
) -> ControlFlow<()> {
    scratch.sort_unstable();
    p.stats_mut().note_emission();
    emitter.solution(scratch, p.stats().work)
}

/// Runs a prepared problem to completion through `emitter`, finishing and
/// sealing the statistics. This is the engine under every front-end; the
/// deprecated free-function shims call it directly.
pub fn run_prepared<P: MinimalSteinerProblem>(
    p: &mut P,
    prepared: Prepared<P::Item>,
    emitter: &mut dyn SolutionSink<P::Item>,
) -> EnumStats {
    let flow = match prepared {
        Prepared::Empty => ControlFlow::Continue(()),
        Prepared::Single(items) => {
            let mut scratch = items;
            scratch.sort_unstable();
            p.stats_mut().note_emission();
            emitter.solution(&scratch, p.stats().work)
        }
        Prepared::Search => {
            // Solutions are forests: at most n − 1 items each, so sizing
            // the emission buffer once keeps the whole run allocation-free
            // on the engine side.
            let (n, _) = p.instance_size();
            let mut scratch = Vec::with_capacity(n + 1);
            recurse(p, 0, emitter, &mut scratch)
        }
    };
    if flow.is_continue() {
        let _ = emitter.finish();
    }
    p.seal_stats();
    p.stats_mut().note_end();
    *p.stats()
}

/// Prepares and runs `p` through an arbitrary [`SolutionSink`].
pub fn run_with_sink<P: MinimalSteinerProblem>(
    p: &mut P,
    emitter: &mut dyn SolutionSink<P::Item>,
) -> Result<EnumStats, SteinerError> {
    let prepared = p.prepare()?;
    Ok(run_prepared(p, prepared, emitter))
}

/// Backwards-compatibility runner for the deprecated free functions: their
/// lenient contract treated empty, disconnected, and unreachable instances
/// as "no solutions" rather than errors (and panicked on ids out of
/// range). New code should use [`Enumeration`] and match on
/// [`SteinerError`] instead.
pub(crate) fn run_sink_lenient<P: MinimalSteinerProblem>(
    p: &mut P,
    emitter: &mut dyn SolutionSink<P::Item>,
) -> EnumStats {
    match run_with_sink(p, emitter) {
        Ok(stats) => stats,
        Err(e) if e.means_no_solutions() => *p.stats(),
        Err(e) => panic!("invalid {} instance: {e}", P::NAME),
    }
}

enum QueueOpt {
    Direct,
    DefaultQueue,
    Explicit(QueueConfig),
}

/// Builder over a [`MinimalSteinerProblem`]: configure the run, then pick
/// a front-end. See the [module documentation](self) for an example.
pub struct Enumeration<P: MinimalSteinerProblem> {
    problem: P,
    queue: QueueOpt,
    limit: Option<u64>,
    stats_handle: Option<StatsHandle>,
}

impl<P: MinimalSteinerProblem> Enumeration<P> {
    /// Wraps a problem instance with the default configuration: direct
    /// emission (amortized-linear time per solution), no limit.
    pub fn new(problem: P) -> Self {
        Enumeration {
            problem,
            queue: QueueOpt::Direct,
            limit: None,
            stats_handle: None,
        }
    }

    /// Routes emissions through the Theorem-20 output queue with an
    /// explicit configuration, turning the amortized per-solution bound
    /// into a worst-case delay bound (at O(n²) buffer space).
    pub fn with_queue(mut self, config: QueueConfig) -> Self {
        self.queue = QueueOpt::Explicit(config);
        self
    }

    /// Routes emissions through the output queue with the paper's default
    /// parameters for this instance's size ([`QueueConfig::for_graph`]).
    pub fn with_default_queue(mut self) -> Self {
        self.queue = QueueOpt::DefaultQueue;
        self
    }

    /// Stops after delivering `n` solutions (early termination without
    /// writing a breaking sink).
    pub fn with_limit(mut self, n: u64) -> Self {
        self.limit = Some(n);
        self
    }

    /// Publishes the run's [`EnumStats`] through a clonable handle —
    /// useful when the statistics are needed outside the sink (benches,
    /// the iterator front-end).
    pub fn with_stats(mut self) -> (Self, StatsHandle) {
        let handle = StatsHandle::default();
        self.stats_handle = Some(handle.clone());
        (self, handle)
    }

    /// A shared reference to the wrapped problem.
    pub fn problem(&self) -> &P {
        &self.problem
    }

    fn queue_config(&self) -> Option<QueueConfig> {
        match self.queue {
            QueueOpt::Direct => None,
            QueueOpt::DefaultQueue => {
                let (n, m) = self.problem.instance_size();
                Some(QueueConfig::for_graph(n, m))
            }
            QueueOpt::Explicit(config) => Some(config),
        }
    }

    /// **Push front-end.** Runs the enumeration, handing each solution (a
    /// sorted item slice) to `sink`; return
    /// [`ControlFlow::Break`](std::ops::ControlFlow) to stop early.
    pub fn for_each(
        mut self,
        mut sink: impl FnMut(&[P::Item]) -> ControlFlow<()>,
    ) -> Result<EnumStats, SteinerError> {
        let prepared = self.problem.prepare()?;
        let queue = self.queue_config();
        let stats = run_configured(&mut self.problem, prepared, queue, self.limit, &mut sink);
        if let Some(handle) = &self.stats_handle {
            handle.set(stats);
        }
        Ok(stats)
    }

    /// Runs the enumeration for its statistics alone (every solution is
    /// generated and discarded).
    pub fn run(self) -> Result<EnumStats, SteinerError> {
        self.for_each(|_| ControlFlow::Continue(()))
    }

    /// Collects every solution into a vector of sorted item sets.
    pub fn collect_vec(self) -> Result<Vec<Vec<P::Item>>, SteinerError> {
        let mut out = Vec::new();
        self.for_each(|items| {
            out.push(items.to_vec());
            ControlFlow::Continue(())
        })?;
        Ok(out)
    }

    /// Counts the solutions (respecting [`Self::with_limit`]).
    pub fn count(self) -> Result<u64, SteinerError> {
        let mut n = 0u64;
        self.for_each(|_| {
            n += 1;
            ControlFlow::Continue(())
        })?;
        Ok(n)
    }

    /// **Pull front-end.** Validates and preprocesses on the calling
    /// thread (so instance errors are returned synchronously), then runs
    /// the enumeration on a dedicated large-stack worker thread, yielding
    /// owned solutions through a bounded channel. Dropping the iterator
    /// stops the producer at its next emission.
    ///
    /// The problem must own its instance data (`P: 'static`); use the
    /// problems' `from_graph` constructors or `into_owned` adapters.
    ///
    /// Named after `IntoIterator::into_iter` deliberately — the trait
    /// itself cannot be implemented because preparation is fallible.
    #[allow(clippy::should_implement_trait)]
    pub fn into_iter(mut self) -> Result<Solutions<P::Item>, SteinerError>
    where
        P: Send + 'static,
        P::Item: Send + 'static,
    {
        let prepared = self.problem.prepare()?;
        let queue = self.queue_config();
        let limit = self.limit;
        let handle = self.stats_handle.clone();
        let mut problem = self.problem;
        let inner = steiner_paths::streaming::Enumeration::spawn(move |send| {
            let stats = run_configured(
                &mut problem,
                prepared,
                queue,
                limit,
                &mut |items: &[P::Item]| send(items.to_vec()),
            );
            if let Some(handle) = handle {
                handle.set(stats);
            }
        });
        Ok(Solutions { inner })
    }
}

/// Assembles the sink chain (limit cap, optional output queue) and runs
/// the prepared problem.
fn run_configured<P: MinimalSteinerProblem>(
    p: &mut P,
    prepared: Prepared<P::Item>,
    queue: Option<QueueConfig>,
    limit: Option<u64>,
    sink: &mut dyn FnMut(&[P::Item]) -> ControlFlow<()>,
) -> EnumStats {
    let mut remaining = limit;
    let mut limited = |items: &[P::Item]| -> ControlFlow<()> {
        if remaining == Some(0) {
            return ControlFlow::Break(());
        }
        let flow = sink(items);
        if let Some(r) = &mut remaining {
            *r -= 1;
            if *r == 0 {
                return ControlFlow::Break(());
            }
        }
        flow
    };
    if limit == Some(0) {
        // Nothing may be delivered; skip the search entirely.
        p.stats_mut().note_end();
        return *p.stats();
    }
    match queue {
        None => {
            let mut direct = DirectSink { sink: &mut limited };
            run_prepared(p, prepared, &mut direct)
        }
        Some(config) => {
            let mut queued = OutputQueue::new(config, &mut limited);
            run_prepared(p, prepared, &mut queued)
        }
    }
}

/// Iterator over the solutions of a background enumeration, returned by
/// [`Enumeration::into_iter`]. Each item is a sorted `Vec` of edge/arc
/// ids.
pub struct Solutions<Item> {
    inner: steiner_paths::streaming::Enumeration<Vec<Item>>,
}

impl<Item> Iterator for Solutions<Item> {
    type Item = Vec<Item>;

    /// Yields the next solution. If the producer thread **panicked**, the
    /// panic is re-raised here instead of silently ending the stream — a
    /// partial enumeration is never passed off as a complete one.
    fn next(&mut self) -> Option<Vec<Item>> {
        self.inner.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::improved::SteinerTree;
    use steiner_graph::{EdgeId, UndirectedGraph, VertexId};

    #[test]
    fn stats_handle_recovers_from_poisoned_mutex() {
        // Poison the inner mutex by panicking while holding the lock on
        // another thread — the situation after a worker-thread panic
        // mid-run. Later reads must return the last published value
        // instead of panicking in turn.
        let handle = StatsHandle::default();
        let mut stats = EnumStats::default();
        stats.solutions = 7;
        handle.set(stats);
        let poisoner = handle.clone();
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.0.lock().unwrap();
            panic!("worker dies while holding the stats lock");
        })
        .join();
        assert!(handle.0.is_poisoned(), "the mutex is actually poisoned");
        assert_eq!(handle.get().solutions, 7, "get() recovers the value");
        let mut stats2 = EnumStats::default();
        stats2.solutions = 9;
        handle.set(stats2);
        assert_eq!(handle.get().solutions, 9, "set() keeps working too");
    }

    /// A problem whose sink-side machinery panics mid-enumeration: it
    /// claims two solutions but blows up while classifying the second.
    struct PanickingProblem {
        emitted: u64,
        stats: EnumStats,
    }

    impl MinimalSteinerProblem for PanickingProblem {
        type Item = EdgeId;
        type Branch = ();

        const NAME: &'static str = "panicking test problem";

        fn validate(&self) -> Result<(), SteinerError> {
            Ok(())
        }

        fn prepare(&mut self) -> Result<Prepared<EdgeId>, SteinerError> {
            Ok(Prepared::Search)
        }

        fn instance_size(&self) -> (usize, usize) {
            (2, 1)
        }

        fn stats(&self) -> &EnumStats {
            &self.stats
        }

        fn stats_mut(&mut self) -> &mut EnumStats {
            &mut self.stats
        }

        fn classify(&mut self, _out: &mut Vec<EdgeId>) -> NodeStep<()> {
            match self.emitted {
                0 => NodeStep::Branch(()),
                1 => NodeStep::Complete,
                _ => panic!("enumeration dies after the first solution"),
            }
        }

        fn solution(&self, out: &mut Vec<EdgeId>) {
            out.push(EdgeId(0));
        }

        fn branch(
            &mut self,
            _at: (),
            child: &mut dyn FnMut(&mut Self) -> ControlFlow<()>,
        ) -> (u64, ControlFlow<()>) {
            let mut children = 0;
            let mut flow = ControlFlow::Continue(());
            for _ in 0..2 {
                self.emitted += 1;
                let f = child(self);
                if f.is_break() {
                    flow = ControlFlow::Break(());
                    break;
                }
                children += 1;
            }
            (children, flow)
        }
    }

    #[test]
    fn iterator_surfaces_producer_panic() {
        let mut iter = Enumeration::new(PanickingProblem {
            emitted: 0,
            stats: EnumStats::default(),
        })
        .into_iter()
        .expect("prepare succeeds");
        // The first solution arrives before the panic.
        assert_eq!(iter.next(), Some(vec![EdgeId(0)]));
        // Draining past the panic must re-raise it, not end the stream.
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                move || {
                    while iter.next().is_some() {}
                },
            ));
        let payload = outcome.expect_err("the producer panic propagates to the consumer");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("non-string payload");
        assert!(
            msg.contains("dies after the first solution"),
            "the original panic message survives: {msg:?}"
        );
    }

    #[test]
    fn completed_iterator_ends_cleanly() {
        let g = UndirectedGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        let mut iter = Enumeration::new(SteinerTree::from_graph(g, &[VertexId(0), VertexId(1)]))
            .into_iter()
            .unwrap();
        assert!(iter.next().is_some());
        assert!(iter.next().is_some());
        assert_eq!(iter.next(), None, "normal completion stays a clean None");
        assert_eq!(iter.next(), None, "and is idempotent");
    }
}
