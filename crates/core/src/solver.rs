//! The generic Algorithm-3 engine and the [`Enumeration`] builder.
//!
//! [`Enumeration`] drives any [`MinimalSteinerProblem`] through one shared
//! recursion and offers three interchangeable front-ends:
//!
//! * **push** — [`Enumeration::for_each`] hands each solution to a sink
//!   closure the moment it is emitted (return
//!   [`ControlFlow::Break`](std::ops::ControlFlow) to stop early);
//! * **pull** — [`Enumeration::into_iter`] runs the enumeration on a
//!   dedicated large-stack worker thread (via
//!   [`steiner_paths::streaming`]) and yields owned solutions through a
//!   plain [`Iterator`]; dropping the iterator stops the producer;
//! * **bounded** — [`Enumeration::with_limit`] caps the number of
//!   delivered solutions, and [`Enumeration::with_queue`] /
//!   [`Enumeration::with_default_queue`] interpose the Theorem-20 output
//!   queue for a worst-case (rather than amortized) delay bound.
//!
//! [`Enumeration::with_threads`] additionally **shards** the run across a
//! pool of worker threads: the root node's children are split round-robin
//! (child `i` goes to worker `i mod k`), every worker owns an independent
//! problem copy ([`MinimalSteinerProblem::split_root`]) with its own
//! scratch pools and statistics, and a deterministic merge
//! ([`steiner_paths::streaming::ShardMerge`]) re-interleaves the
//! per-worker streams so the delivered sequence is **identical to the
//! sequential front-end**, including under limits, queues, and early
//! termination. [`Enumeration::with_stealing`] adds a second level of
//! parallelism on top: workers that drain their residue class early
//! claim whole subtrees published at deeper branch nodes (see
//! [`crate::steal`]), and the merge splices each stolen subtree's stream
//! back in at its exact tree position, so the delivered order still
//! matches the sequential engine byte for byte.
//!
//! ```
//! use steiner_core::{Enumeration, SteinerTree};
//! use steiner_graph::{UndirectedGraph, VertexId};
//!
//! // A square: two ways to connect opposite corners.
//! let g = UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
//! let trees = Enumeration::new(SteinerTree::new(&g, &[VertexId(0), VertexId(2)]))
//!     .collect_vec()
//!     .unwrap();
//! assert_eq!(trees.len(), 2);
//! ```

use crate::cache::{CachePressure, QueryKey, ResultCache};
use crate::intern::{SolutionId, SolutionSet};
use crate::problem::{
    MinimalSteinerProblem, NodeStep, Prepared, RootShard, SteinerError, SubtreeRecord,
};
use crate::queue::{DirectSink, OutputQueue, QueueConfig, SolutionSink};
use crate::stats::EnumStats;
use crate::steal::{PendingTask, StealObserver, StealPool, StealSchedule};
use crossbeam_channel::Sender;
use std::cell::Cell;
use std::hash::Hash;
use std::ops::ControlFlow;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use steiner_paths::streaming::{self, MergeEvent, ShardMerge, ShardMsg};

/// A shared, clonable handle to the statistics of one enumeration run,
/// produced by [`Enumeration::with_stats`]. The final [`EnumStats`] are
/// published when the run finishes (also on early termination); for the
/// iterator front-end that happens on the worker thread, so read the
/// handle only after the iterator is exhausted or dropped.
#[derive(Clone, Default)]
pub struct StatsHandle(Arc<Mutex<EnumStats>>);

impl StatsHandle {
    /// The most recently published statistics.
    ///
    /// Robust against a poisoned inner mutex: if the worker thread
    /// panicked mid-run, later reads recover the last published value
    /// instead of compounding the panic.
    pub fn get(&self) -> EnumStats {
        *self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn set(&self, stats: EnumStats) {
        *self.0.lock().unwrap_or_else(|e| e.into_inner()) = stats;
    }
}

/// The shared Algorithm-3 recursion: classify the node, emit leaves,
/// branch internal nodes. `scratch` is the engine's only per-run buffer —
/// classify writes unique completions straight into it, so a node costs
/// zero engine-side allocations.
fn recurse<P: MinimalSteinerProblem>(
    p: &mut P,
    depth: u32,
    emitter: &mut dyn SolutionSink<P::Item>,
    scratch: &mut Vec<P::Item>,
) -> ControlFlow<()> {
    emitter.tick(p.stats().work)?;
    scratch.clear();
    match p.classify(scratch) {
        NodeStep::Complete => {
            p.stats_mut().note_node(0, depth);
            scratch.clear();
            p.solution(scratch);
            emit(p, emitter, scratch, P::SORTED_SOLUTIONS)
        }
        NodeStep::Unique => {
            // classify filled `scratch` with the unique completion.
            p.stats_mut().note_node(0, depth);
            emit(p, emitter, scratch, false)
        }
        NodeStep::Branch(at) => {
            let (children, flow) = p.branch(at, &mut |q| recurse(q, depth + 1, emitter, scratch));
            p.stats_mut().note_node(children, depth);
            flow
        }
    }
}

fn emit<P: MinimalSteinerProblem>(
    p: &mut P,
    emitter: &mut dyn SolutionSink<P::Item>,
    scratch: &mut [P::Item],
    presorted: bool,
) -> ControlFlow<()> {
    if presorted {
        debug_assert!(scratch.is_sorted(), "SORTED_SOLUTIONS contract broken");
    } else {
        scratch.sort_unstable();
    }
    p.stats_mut().note_emission();
    emitter.solution(scratch, p.stats().work)
}

/// Runs a prepared problem to completion through `emitter`, finishing and
/// sealing the statistics. This is the engine under every front-end; the
/// deprecated free-function shims call it directly.
pub fn run_prepared<P: MinimalSteinerProblem>(
    p: &mut P,
    prepared: Prepared<P::Item>,
    emitter: &mut dyn SolutionSink<P::Item>,
) -> EnumStats {
    let flow = match prepared {
        Prepared::Empty => ControlFlow::Continue(()),
        Prepared::Single(items) => {
            let mut scratch = items;
            scratch.sort_unstable();
            p.stats_mut().note_emission();
            emitter.solution(&scratch, p.stats().work)
        }
        Prepared::Search => {
            // Solutions are forests: at most n − 1 items each, so sizing
            // the emission buffer once keeps the whole run allocation-free
            // on the engine side.
            let (n, _) = p.instance_size();
            let mut scratch = Vec::with_capacity(n + 1);
            recurse(p, 0, emitter, &mut scratch)
        }
    };
    if flow.is_continue() {
        let _ = emitter.finish();
    }
    p.seal_stats();
    p.stats_mut().note_end();
    *p.stats()
}

/// Prepares and runs `p` through an arbitrary [`SolutionSink`].
pub fn run_with_sink<P: MinimalSteinerProblem>(
    p: &mut P,
    emitter: &mut dyn SolutionSink<P::Item>,
) -> Result<EnumStats, SteinerError> {
    let prepared = p.prepare()?;
    Ok(run_prepared(p, prepared, emitter))
}

/// Backwards-compatibility runner for the deprecated free functions: their
/// lenient contract treated empty, disconnected, and unreachable instances
/// as "no solutions" rather than errors (and panicked on ids out of
/// range). New code should use [`Enumeration`] and match on
/// [`SteinerError`] instead.
pub(crate) fn run_sink_lenient<P: MinimalSteinerProblem>(
    p: &mut P,
    emitter: &mut dyn SolutionSink<P::Item>,
) -> EnumStats {
    match run_with_sink(p, emitter) {
        Ok(stats) => stats,
        Err(e) if e.means_no_solutions() => *p.stats(),
        // lint:allow(panic) documented back-compat contract: the deprecated free functions panicked on invalid instances
        Err(e) => panic!("invalid {} instance: {e}", P::NAME),
    }
}

enum QueueOpt {
    Direct,
    DefaultQueue,
    Explicit(QueueConfig),
}

/// Builder over a [`MinimalSteinerProblem`]: configure the run, then pick
/// a front-end. Options compose freely — sharding, limits, the output
/// queue, interning, and the result cache all deliver the identical
/// stream:
///
/// ```
/// use steiner_core::cache::ResultCache;
/// use steiner_core::{Enumeration, SteinerTree};
/// use steiner_graph::{EdgeId, UndirectedGraph, VertexId};
///
/// let g = UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
/// let w = [VertexId(0), VertexId(2)];
/// let cache: ResultCache<EdgeId> = ResultCache::new();
/// let plain = Enumeration::new(SteinerTree::new(&g, &w)).collect_vec().unwrap();
/// let fancy = Enumeration::new(SteinerTree::new(&g, &w))
///     .cached(&cache)          // record this stream for replay
///     .with_threads(2)         // sharded execution, deterministic merge
///     .with_default_queue()    // Theorem-20 worst-case delay
///     .with_limit(10)          // early termination
///     .collect_vec()
///     .unwrap();
/// assert_eq!(fancy, plain[..plain.len().min(10)]);
/// ```
///
/// See the [module documentation](self) for the front-end overview.
pub struct Enumeration<P: MinimalSteinerProblem> {
    problem: P,
    queue: QueueOpt,
    limit: Option<u64>,
    deadline: Option<Instant>,
    stats_handle: Option<StatsHandle>,
    threads: usize,
    stealing: bool,
    steal_schedule: Option<StealSchedule>,
    interner: Option<SolutionSet<P::Item>>,
    cache: Option<ResultCache<P::Item>>,
}

impl<P: MinimalSteinerProblem> Enumeration<P> {
    /// Wraps a problem instance with the default configuration: direct
    /// emission (amortized-linear time per solution), no limit.
    pub fn new(problem: P) -> Self {
        Enumeration {
            problem,
            queue: QueueOpt::Direct,
            limit: None,
            deadline: None,
            stats_handle: None,
            threads: 1,
            stealing: false,
            steal_schedule: None,
            interner: None,
            cache: None,
        }
    }

    /// **Hash-consing.** Interns every delivered solution into the shared
    /// [`SolutionSet`] — structurally equal solutions (across this run,
    /// earlier runs, and other problems over the same id space) are
    /// stored once, and consumers holding
    /// [`SolutionId`]s re-emit in O(1).
    ///
    /// The delivered stream is untouched (same slices, same order — under
    /// [`Self::with_threads`] the interning happens at the merge point,
    /// after the deterministic re-interleave). The final
    /// [`EnumStats::interned_bytes`] reports the set's live payload.
    ///
    /// ```
    /// use steiner_core::intern::SolutionSet;
    /// use steiner_core::{Enumeration, SteinerTree};
    /// use steiner_graph::{EdgeId, UndirectedGraph, VertexId};
    ///
    /// let g = UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
    /// let set: SolutionSet<EdgeId> = SolutionSet::new();
    /// Enumeration::new(SteinerTree::new(&g, &[VertexId(0), VertexId(2)]))
    ///     .with_interning(&set)
    ///     .run()
    ///     .unwrap();
    /// assert_eq!(set.len(), 2); // both minimal trees, materialized once
    /// ```
    pub fn with_interning(mut self, set: &SolutionSet<P::Item>) -> Self {
        self.interner = Some(set.clone());
        self
    }

    /// **Query-level caching.** Consults `cache` before running: a query
    /// with the same [`cache_key`](MinimalSteinerProblem::cache_key) and
    /// the same [`Self::with_limit`] that previously ran to completion is
    /// **replayed** from the interned store — same solutions, same order,
    /// no search. On a miss the run executes normally (composing with
    /// [`Self::with_threads`] and [`Self::with_queue`]; recording happens
    /// at the delivery/merge point) and its complete stream is stored.
    /// Runs a sink aborted early (before the limit) are not stored.
    ///
    /// Hits and misses are visible in the returned
    /// [`EnumStats::cache_hits`] / [`EnumStats::cache_misses`] and in
    /// [`ResultCache::stats`]. See [`crate::cache`] for an end-to-end
    /// example and the eviction policy.
    pub fn cached(mut self, cache: &ResultCache<P::Item>) -> Self {
        self.cache = Some(cache.clone());
        self
    }

    /// Routes emissions through the Theorem-20 output queue with an
    /// explicit configuration, turning the amortized per-solution bound
    /// into a worst-case delay bound (at O(n²) buffer space).
    pub fn with_queue(mut self, config: QueueConfig) -> Self {
        self.queue = QueueOpt::Explicit(config);
        self
    }

    /// Routes emissions through the output queue with the paper's default
    /// parameters for this instance's size ([`QueueConfig::for_graph`]).
    pub fn with_default_queue(mut self) -> Self {
        self.queue = QueueOpt::DefaultQueue;
        self
    }

    /// Stops after delivering `n` solutions (early termination without
    /// writing a breaking sink).
    pub fn with_limit(mut self, n: u64) -> Self {
        self.limit = Some(n);
        self
    }

    /// **Per-query deadline.** Aborts the run once `deadline` passes,
    /// returning [`SteinerError::DeadlineExceeded`] from the push
    /// front-ends (or surfacing it through [`Solutions::error`] on the
    /// pull front-end). Every solution delivered before the expiry is
    /// valid — the stream is a correct *prefix* of the full answer in the
    /// engine's deterministic order — but the run is incomplete, so a
    /// [`Self::cached`] recording is rolled back exactly as for a sink
    /// abort, and buffered [`Self::with_queue`] output is dropped rather
    /// than flushed.
    ///
    /// The clock is checked at every delivery and every
    /// [`DEADLINE_CHECK_INTERVAL`]-th engine tick (once per search-tree
    /// node), so the overshoot past the deadline is bounded by a constant
    /// number of node expansions — the same linear-delay granularity the
    /// paper's guarantee is stated in. Under [`Self::with_threads`] the
    /// check runs at the merge point; workers stop at their next
    /// (bounded) channel send. A cache **hit** is never interrupted:
    /// replay is O(output) with no search, and the stored stream is only
    /// ever a complete answer.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// [`Self::with_deadline`] measured from now: the run aborts once
    /// `timeout` has elapsed.
    pub fn with_timeout(self, timeout: Duration) -> Self {
        // lint:allow(clock) with_timeout anchors the caller's duration to the sanctioned deadline clock
        let deadline = Instant::now() + timeout;
        self.with_deadline(deadline)
    }

    /// Publishes the run's [`EnumStats`] through a clonable handle —
    /// useful when the statistics are needed outside the sink (benches,
    /// the iterator front-end).
    pub fn with_stats(mut self) -> (Self, StatsHandle) {
        let handle = StatsHandle::default();
        self.stats_handle = Some(handle.clone());
        (self, handle)
    }

    /// **Sharded execution.** Splits the root node's children across `k`
    /// worker threads — child `i` (in the engine's deterministic order)
    /// goes to worker `i mod k` — and merges the per-worker streams back
    /// into the sequential emission order, so every front-end delivers a
    /// stream **identical to the single-threaded run** (same solutions,
    /// same order), including under [`Self::with_limit`],
    /// [`Self::with_queue`], and sinks that return
    /// [`ControlFlow::Break`].
    ///
    /// Every worker owns an independent instance copy
    /// ([`MinimalSteinerProblem::split_root`]) with its own `prepare()`,
    /// scratch pools, and statistics; workers communicate only through
    /// bounded channels, so a worker ahead of the merge point blocks
    /// instead of buffering unboundedly. The published stats are the
    /// workers' counters [merged](EnumStats::merge), with `solutions` set
    /// to the delivered count and `max_emission_gap` re-measured as the
    /// delivery gap on the merged work clock.
    ///
    /// Sharding pays off when the subtrees under the root carry the bulk
    /// of the work (the usual case: every worker re-generates the root's
    /// children, which costs O(n + m) each, but only descends into its
    /// own). `k ≤ 1`, or a problem whose `split_root` returns `None`,
    /// falls back to the sequential engine.
    pub fn with_threads(mut self, k: usize) -> Self {
        self.threads = k.max(1);
        self
    }

    /// **Second-level work stealing** for [`Self::with_threads`] runs.
    ///
    /// Root-only sharding load-balances poorly when the root has few
    /// children or one subtree dominates. With stealing on, a worker
    /// reaching a branch child while the shared [`crate::steal`] pool is
    /// hungry *publishes* the child as a replayable checkpoint instead
    /// of descending; an idle worker (or the merge point itself) claims
    /// and executes it, and the merge splices the subtree's stream back
    /// in at its exact position — the delivered stream stays
    /// **byte-identical to the sequential engine** regardless of which
    /// worker executed which subtree (asserted across every front-end in
    /// `tests/stealing.rs`).
    ///
    /// Accepted steals and refused offers are reported in
    /// [`EnumStats::subtrees_stolen`] / [`EnumStats::steal_failures`].
    /// No effect without `with_threads(k ≥ 2)`, and problems that do not
    /// support subtree checkpoints
    /// ([`MinimalSteinerProblem::record_subtree`]) silently fall back to
    /// root-only sharding. Off by default here; the service layer turns
    /// it on for pooled queries.
    pub fn with_stealing(mut self, on: bool) -> Self {
        self.stealing = on;
        self
    }

    /// **Scripted stealing** (test instrument): replaces the adaptive
    /// spawn policy with a deterministic [`StealSchedule`], so steal
    /// interleavings replay exactly — even on a single-core CI machine.
    /// Implies [`Self::with_stealing`]. Scripted runs widen the shard
    /// channels to [`SCRIPTED_CHANNEL_CAPACITY`] so adversarial scripts
    /// cannot wedge the pipeline; that sizing makes schedules unsuitable
    /// as a production policy.
    pub fn with_steal_schedule(mut self, schedule: StealSchedule) -> Self {
        self.stealing = true;
        self.steal_schedule = Some(schedule);
        self
    }

    fn steal_mode(&self) -> StealMode {
        match (&self.steal_schedule, self.stealing) {
            (Some(s), _) => StealMode::Scripted(s.clone()),
            (None, true) => StealMode::Auto,
            (None, false) => StealMode::Off,
        }
    }

    /// Enables or disables **incremental classification** (default: on
    /// for the four paper problems).
    ///
    /// On, `classify` reads trail-backed connectivity state maintained
    /// across parent/child search-tree nodes
    /// ([`steiner_graph::spanning::DynamicSpanning`]) and answers
    /// leaf-certifying queries in O(|W|) instead of re-running a full
    /// O(n + m) spanning-growth / contraction pass per node; off, every
    /// non-trivial node recomputes from scratch — the pre-incremental
    /// engine, kept as the conformance reference. **The delivered stream
    /// is byte-identical either way** (asserted across all four problems
    /// and every front-end in `tests/incremental.rs`); the difference is
    /// visible only in wall-clock time and in
    /// [`EnumStats::classify_incremental`] /
    /// [`EnumStats::classify_rebuilds`].
    ///
    /// ```
    /// use steiner_core::{Enumeration, SteinerTree};
    /// use steiner_graph::{UndirectedGraph, VertexId};
    ///
    /// let g = UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
    /// let w = [VertexId(0), VertexId(2)];
    /// let on = Enumeration::new(SteinerTree::new(&g, &w)).collect_vec().unwrap();
    /// let off = Enumeration::new(SteinerTree::new(&g, &w))
    ///     .with_incremental(false)
    ///     .collect_vec()
    ///     .unwrap();
    /// assert_eq!(on, off);
    /// ```
    pub fn with_incremental(mut self, on: bool) -> Self {
        self.problem.set_incremental(on);
        self
    }

    /// Enables or disables **word-packed path generation** (default: on
    /// for the four paper problems).
    ///
    /// On, each branch node's child paths come from the packed
    /// enumerator: the `F-STP` reverse BFS sweeps `u64`-word bitset
    /// frontiers instead of per-vertex stamps, per-level BFS trees are
    /// reused across branch nodes whose removed-mask signature matches
    /// (counted in [`EnumStats::fstp_cache_hits`] /
    /// [`EnumStats::fstp_cache_misses`]), and all child paths of a
    /// branch node are reconstructed in one flat batch; off, the
    /// per-vertex reference enumerator runs — kept as the A/B
    /// conformance path. **The delivered stream is byte-identical either
    /// way** (asserted across all four problems and every front-end in
    /// `tests/packed_frontiers.rs`); the difference is visible only in
    /// wall-clock time and the cache counters.
    ///
    /// ```
    /// use steiner_core::{Enumeration, SteinerTree};
    /// use steiner_graph::{UndirectedGraph, VertexId};
    ///
    /// let g = UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
    /// let w = [VertexId(0), VertexId(2)];
    /// let packed = Enumeration::new(SteinerTree::new(&g, &w)).collect_vec().unwrap();
    /// let reference = Enumeration::new(SteinerTree::new(&g, &w))
    ///     .with_packed_frontiers(false)
    ///     .collect_vec()
    ///     .unwrap();
    /// assert_eq!(packed, reference);
    /// ```
    pub fn with_packed_frontiers(mut self, on: bool) -> Self {
        self.problem.set_packed_frontiers(on);
        self
    }

    /// Caps the per-level path-enumeration caches each worker
    /// preallocates in `prepare` — the
    /// [ROADMAP's level-cache memory knob](crate::problem::MinimalSteinerProblem::set_level_cache_cap)
    /// for memory-constrained embeddings. Levels beyond the cap are grown
    /// on demand (counted in [`EnumStats::scratch_allocs`]); results are
    /// unaffected.
    pub fn with_level_cache_cap(mut self, cap: usize) -> Self {
        self.problem.set_level_cache_cap(cap.max(1));
        self
    }

    /// A shared reference to the wrapped problem.
    pub fn problem(&self) -> &P {
        &self.problem
    }

    fn queue_config(&self) -> Option<QueueConfig> {
        match self.queue {
            QueueOpt::Direct => None,
            QueueOpt::DefaultQueue => {
                let (n, m) = self.problem.instance_size();
                Some(QueueConfig::for_graph(n, m))
            }
            QueueOpt::Explicit(config) => Some(config),
        }
    }

    /// The workers' problem copies for a sharded run, or `None` when the
    /// problem does not support sharding (or only one thread is asked).
    fn split_shards(&self) -> Option<Vec<P>> {
        if self.threads <= 1 {
            return None;
        }
        let k = self.threads as u32;
        (0..k)
            .map(|i| {
                self.problem.split_root(RootShard {
                    index: i,
                    modulus: k,
                })
            })
            .collect()
    }

    /// **Push front-end.** Runs the enumeration, handing each solution (a
    /// sorted item slice) to `sink`; return
    /// [`ControlFlow::Break`](std::ops::ControlFlow) to stop early.
    ///
    /// With [`Self::with_threads`], the calling thread becomes the merge
    /// point of the shard pool and `sink` observes the exact sequential
    /// order. Since 0.2 the problem must be `Send` (its `Item` too) so a
    /// single builder serves both execution modes; all problem types in
    /// this workspace are. The sink itself never crosses threads and
    /// needs no `Send`.
    pub fn for_each(
        mut self,
        mut sink: impl FnMut(&[P::Item]) -> ControlFlow<()>,
    ) -> Result<EnumStats, SteinerError>
    where
        P: Send,
        P::Item: Send,
    {
        let cache = self.cache.take();
        let interner = self.interner.take();
        let handle = self.stats_handle.clone();
        let limit = self.limit;

        // The interning stage sits closest to the user sink, so it sees
        // the final delivered stream (post-merge, post-queue, post-limit).
        let mut interning = |items: &[P::Item]| -> ControlFlow<()> {
            if let Some(set) = &interner {
                set.intern(items);
            }
            sink(items)
        };
        let publish = |mut stats: EnumStats| -> EnumStats {
            if let Some(set) = &interner {
                stats.interned_bytes = stats.interned_bytes.max(set.bytes());
            }
            if let Some(h) = &handle {
                h.set(stats);
            }
            stats
        };

        let Some(cache) = cache else {
            return Ok(publish(self.run_plain(&mut interning)?));
        };
        let Some(key) = self.problem.cache_key() else {
            // The problem opted out of caching: always a (counted) miss.
            cache.note_miss();
            let mut stats = self.run_plain(&mut interning)?;
            stats.cache_misses = 1;
            return Ok(publish(stats));
        };
        // Malformed instances must error identically warm and cold: the
        // canonical fingerprints can make a malformed query (e.g. a
        // duplicate terminal inside a forest set) collide with a valid
        // query's key, so validate structurally before the lookup.
        self.problem.validate()?;
        let qkey = QueryKey { key, limit };
        if let Some(delivered) = cache.replay(&qkey, &mut interning) {
            return Ok(publish(EnumStats::for_cache_hit(delivered, cache.bytes())));
        }
        // Miss: run the engine, recording the delivered stream.
        let mut ids: Vec<SolutionId> = Vec::new();
        let mut delivered = 0u64;
        let mut user_broke = false;
        let run = {
            let mut recording = |items: &[P::Item]| -> ControlFlow<()> {
                ids.push(cache.intern(items));
                delivered += 1;
                let flow = interning(items);
                if flow.is_break() {
                    user_broke = true;
                }
                flow
            };
            self.run_plain(&mut recording)
        };
        match run {
            Ok(mut stats) => {
                // A stream is complete — and therefore cacheable — when
                // the sink did not abort it, or when the abort coincided
                // with the configured limit (the limit is part of the
                // key, so the capped stream is the full answer for it).
                let pressure = if !user_broke || Some(delivered) == limit {
                    cache.store_entry(qkey, ids)
                } else {
                    cache.release_ids(&ids)
                };
                stats.cache_misses = 1;
                stats.evicted_entries += pressure.evicted;
                stats.compactions += pressure.compactions;
                stats.interned_bytes = cache.bytes();
                Ok(publish(stats))
            }
            Err(e) => {
                let _ = cache.release_ids(&ids);
                Err(e)
            }
        }
    }

    /// The execution core under [`Self::for_each`]: dispatches to the
    /// sharded pool or the sequential engine, with the limit/queue sink
    /// chain already described on those methods. Cache and interner have
    /// been peeled off by the caller.
    fn run_plain(
        mut self,
        sink: &mut dyn FnMut(&[P::Item]) -> ControlFlow<()>,
    ) -> Result<EnumStats, SteinerError>
    where
        P: Send,
        P::Item: Send,
    {
        if let Some(shards) = self.split_shards() {
            let queue = self.queue_config();
            let steal = self.steal_mode();
            // The original instance becomes the recorder: its root branch
            // runs once here, producing the shared child log the workers
            // replay instead of each re-generating every root child.
            let mut original = self.problem;
            let prepared = original.prepare()?;
            let root_log = record_root_log(&mut original, prepared, self.limit);
            let (stats, expired) = run_sharded(
                &mut original,
                shards,
                root_log,
                steal,
                queue,
                self.limit,
                self.deadline,
                self.stats_handle.as_ref(),
                sink,
            )?;
            if expired {
                return Err(SteinerError::DeadlineExceeded);
            }
            return Ok(stats);
        }
        let prepared = self.problem.prepare()?;
        let queue = self.queue_config();
        let (stats, expired) = run_configured(
            &mut self.problem,
            prepared,
            queue,
            self.limit,
            self.deadline,
            sink,
        );
        if let Some(handle) = &self.stats_handle {
            handle.set(stats);
        }
        if expired {
            // The handle already carries the partial-run stats; the error
            // is the caller-facing verdict (and triggers cache rollback
            // in `for_each`'s recording path).
            return Err(SteinerError::DeadlineExceeded);
        }
        Ok(stats)
    }

    /// Runs the enumeration for its statistics alone (every solution is
    /// generated and discarded).
    pub fn run(self) -> Result<EnumStats, SteinerError>
    where
        P: Send,
        P::Item: Send,
    {
        self.for_each(|_| ControlFlow::Continue(()))
    }

    /// Collects every solution into a vector of sorted item sets.
    pub fn collect_vec(self) -> Result<Vec<Vec<P::Item>>, SteinerError>
    where
        P: Send,
        P::Item: Send,
    {
        let mut out = Vec::new();
        self.for_each(|items| {
            out.push(items.to_vec());
            ControlFlow::Continue(())
        })?;
        Ok(out)
    }

    /// Counts the solutions (respecting [`Self::with_limit`]).
    pub fn count(self) -> Result<u64, SteinerError>
    where
        P: Send,
        P::Item: Send,
    {
        let mut n = 0u64;
        self.for_each(|_| {
            n += 1;
            ControlFlow::Continue(())
        })?;
        Ok(n)
    }

    /// **Pull front-end.** Validates and preprocesses on the calling
    /// thread (so instance errors are returned synchronously), then runs
    /// the enumeration on a dedicated large-stack worker thread, yielding
    /// owned solutions through a bounded channel. Dropping the iterator
    /// stops the producer at its next emission.
    ///
    /// The problem must own its instance data (`P: 'static`); use the
    /// problems' `from_graph` constructors or `into_owned` adapters.
    ///
    /// Named after `IntoIterator::into_iter` deliberately — the trait
    /// itself cannot be implemented because preparation is fallible.
    ///
    /// With [`Self::with_threads`], a coordinator thread hosts the shard
    /// pool and its merge point; instance errors are still returned
    /// synchronously (the original problem is prepared once up front for
    /// validation before the workers re-prepare their own copies).
    #[allow(clippy::should_implement_trait)]
    pub fn into_iter(mut self) -> Result<Solutions<P::Item>, SteinerError>
    where
        P: Send + 'static,
        P::Item: Send + 'static,
    {
        let cache = self.cache.take();
        let interner = self.interner.take();
        let limit = self.limit;
        let deadline = self.deadline;
        let handle = self.stats_handle.clone();
        // Terminal-error slot shared with the worker thread, surfaced
        // through [`Solutions::error`] once the stream ends.
        let error_slot: Arc<Mutex<Option<SteinerError>>> = Arc::new(Mutex::new(None));
        // Cache lookup first: a hit replays the interned stream without
        // preparing (or even validating) anything — the stored stream
        // proves the instance was valid.
        let mut recorder = None;
        // A cached() run whose problem reports no key still counts as a
        // miss in the published stats (matching the push front-end).
        let mut keyless_miss = None;
        if let Some(cache) = &cache {
            match self.problem.cache_key() {
                Some(key) => {
                    // Same rule as the push front-end: a malformed
                    // instance errors before the lookup, warm or cold.
                    self.problem.validate()?;
                    let qkey = QueryKey { key, limit };
                    if let Some(ids) = cache.checkout(&qkey) {
                        let cache = cache.clone();
                        let inner = streaming::Enumeration::spawn(move |send| {
                            // One lock for the whole stream; sends (which
                            // may block on the bounded channel) and
                            // interning happen unlocked.
                            let (flat, lens) = cache.resolve_owned_batch(&ids);
                            cache.release_ids(&ids);
                            let mut delivered = 0u64;
                            let mut start = 0usize;
                            for len in lens {
                                let end = start + len as usize;
                                let solution = flat[start..end].to_vec();
                                start = end;
                                if let Some(set) = &interner {
                                    set.intern(&solution);
                                }
                                delivered += 1;
                                if send(solution).is_break() {
                                    break;
                                }
                            }
                            if let Some(handle) = handle {
                                // Fold the interner gauge in too, exactly
                                // as the push front-end's publish() does.
                                let mut bytes = cache.bytes();
                                if let Some(set) = &interner {
                                    bytes = bytes.max(set.bytes());
                                }
                                handle.set(EnumStats::for_cache_hit(delivered, bytes));
                            }
                        });
                        // Replay never runs the engine, so it can neither
                        // miss a deadline nor fail: the slot stays empty.
                        return Ok(Solutions {
                            inner,
                            error: error_slot,
                        });
                    }
                    recorder = Some(CacheRecorder::new(cache.clone(), qkey, limit));
                }
                None => {
                    cache.note_miss();
                    keyless_miss = Some(cache.clone());
                }
            }
        }
        let shards = self.split_shards();
        let prepared = self.problem.prepare()?;
        let queue = self.queue_config();
        let prepared = match (shards, prepared) {
            (Some(shards), Prepared::Search) => {
                // Trivial outcomes (Empty/Single) skip the pool entirely;
                // a real search hands the prepared original over to the
                // coordinator thread, which records the shared root child
                // log once before the workers prepare their own copies.
                let steal = self.steal_mode();
                let mut original = self.problem;
                let worker_error = Arc::clone(&error_slot);
                let inner = streaming::Enumeration::spawn(move |send| {
                    let root_log = record_root_log(&mut original, Prepared::Search, limit);
                    let mut recorder = recorder;
                    let (stats, expired) = run_sharded(
                        &mut original,
                        shards,
                        root_log,
                        steal,
                        queue,
                        limit,
                        deadline,
                        None,
                        &mut |items: &[P::Item]| {
                            deliver_to_iterator(&mut recorder, &interner, items, send)
                        },
                    )
                    .expect("shard preparation failed although the original instance prepared");
                    if expired {
                        note_iterator_deadline(&mut recorder, &worker_error);
                    }
                    finish_iterator_worker(
                        recorder,
                        keyless_miss,
                        &interner,
                        stats,
                        handle.as_ref(),
                    );
                });
                return Ok(Solutions {
                    inner,
                    error: error_slot,
                });
            }
            (_, prepared) => prepared,
        };
        let mut problem = self.problem;
        let worker_error = Arc::clone(&error_slot);
        let inner = steiner_paths::streaming::Enumeration::spawn(move |send| {
            let mut recorder = recorder;
            let (stats, expired) = run_configured(
                &mut problem,
                prepared,
                queue,
                limit,
                deadline,
                &mut |items: &[P::Item]| deliver_to_iterator(&mut recorder, &interner, items, send),
            );
            if expired {
                note_iterator_deadline(&mut recorder, &worker_error);
            }
            finish_iterator_worker(recorder, keyless_miss, &interner, stats, handle.as_ref());
        });
        Ok(Solutions {
            inner,
            error: error_slot,
        })
    }
}

/// A deadline expired on the iterator front-end's worker: record the
/// typed error for [`Solutions::error`] and mark a cold `cached()`
/// recording as aborted so [`CacheRecorder::finish`] rolls it back — a
/// deadline'd stream is a prefix, never the complete cacheable answer.
fn note_iterator_deadline<Item: Copy + Eq + Hash>(
    recorder: &mut Option<CacheRecorder<Item>>,
    error: &Mutex<Option<SteinerError>>,
) {
    if let Some(r) = recorder.as_mut() {
        r.broke = true;
    }
    error
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .get_or_insert(SteinerError::DeadlineExceeded);
}

/// Records a cold `cached()` run's delivered stream on the iterator
/// front-end's worker thread; [`Self::finish`] stores complete streams
/// and rolls aborted ones back, mirroring the push front-end's rule.
struct CacheRecorder<Item: Copy + Eq + Hash> {
    cache: ResultCache<Item>,
    key: QueryKey,
    limit: Option<u64>,
    ids: Vec<SolutionId>,
    delivered: u64,
    broke: bool,
}

impl<Item: Copy + Eq + Hash> CacheRecorder<Item> {
    fn new(cache: ResultCache<Item>, key: QueryKey, limit: Option<u64>) -> Self {
        CacheRecorder {
            cache,
            key,
            limit,
            ids: Vec::new(),
            delivered: 0,
            broke: false,
        }
    }

    fn note(&mut self, items: &[Item]) {
        self.ids.push(self.cache.intern(items));
        self.delivered += 1;
    }

    /// Stores or rolls back the recording; returns the cache (for final
    /// byte accounting) and the pressure the settlement caused.
    fn finish(self) -> (ResultCache<Item>, CachePressure) {
        let pressure = if !self.broke || Some(self.delivered) == self.limit {
            self.cache.store_entry(self.key, self.ids)
        } else {
            self.cache.release_ids(&self.ids)
        };
        (self.cache, pressure)
    }
}

/// One delivery on the iterator front-end's worker: record for the cache
/// (when a cold `cached()` run is underway), intern, and forward an owned
/// copy to the channel. A failed send means the iterator was dropped —
/// that counts as an abort for the recorder.
fn deliver_to_iterator<Item: Copy + Eq + Hash>(
    recorder: &mut Option<CacheRecorder<Item>>,
    interner: &Option<SolutionSet<Item>>,
    items: &[Item],
    send: &mut dyn FnMut(Vec<Item>) -> ControlFlow<()>,
) -> ControlFlow<()> {
    if let Some(r) = recorder.as_mut() {
        r.note(items);
    }
    if let Some(set) = interner {
        set.intern(items);
    }
    let flow = send(items.to_vec());
    if flow.is_break() {
        if let Some(r) = recorder.as_mut() {
            r.broke = true;
        }
    }
    flow
}

/// End of an iterator-front-end run: settle the cache recording, fold the
/// cache/interner gauges into the stats, and publish them. `keyless_miss`
/// carries the cache of a run that could not be keyed (counted as a miss
/// but never recorded).
fn finish_iterator_worker<Item: Copy + Eq + Hash>(
    recorder: Option<CacheRecorder<Item>>,
    keyless_miss: Option<ResultCache<Item>>,
    interner: &Option<SolutionSet<Item>>,
    mut stats: EnumStats,
    handle: Option<&StatsHandle>,
) {
    if let Some(r) = recorder {
        let (cache, pressure) = r.finish();
        stats.cache_misses = 1;
        stats.evicted_entries += pressure.evicted;
        stats.compactions += pressure.compactions;
        stats.interned_bytes = stats.interned_bytes.max(cache.bytes());
    } else if let Some(cache) = keyless_miss {
        stats.cache_misses = 1;
        stats.interned_bytes = stats.interned_bytes.max(cache.bytes());
    }
    if let Some(set) = interner {
        stats.interned_bytes = stats.interned_bytes.max(set.bytes());
    }
    if let Some(handle) = handle {
        handle.set(stats);
    }
}

/// The `with_limit` state machine, shared verbatim by the sequential and
/// sharded sink chains so their delivery semantics cannot drift apart:
/// once the cap is reached the wrapped delivery is not invoked at all,
/// and the delivery that exhausts the cap returns `Break`.
struct LimitCap {
    remaining: Option<u64>,
}

impl LimitCap {
    fn new(limit: Option<u64>) -> Self {
        LimitCap { remaining: limit }
    }

    fn deliver(&mut self, deliver: impl FnOnce() -> ControlFlow<()>) -> ControlFlow<()> {
        if self.remaining == Some(0) {
            return ControlFlow::Break(());
        }
        let flow = deliver();
        if let Some(r) = &mut self.remaining {
            *r -= 1;
            if *r == 0 {
                return ControlFlow::Break(());
            }
        }
        flow
    }
}

/// Engine ticks between two deadline clock reads. A tick fires once per
/// search-tree node, so the overshoot past an expired deadline is at most
/// this many node expansions (each O(n + m) in the worst case) — bounded,
/// and cheap enough that `Instant::now` stays invisible in profiles.
pub const DEADLINE_CHECK_INTERVAL: u32 = 32;

/// The outermost stage of the sink chain when a deadline is set: reads
/// the clock at every solution and every [`DEADLINE_CHECK_INTERVAL`]-th
/// tick, and aborts the run (plain `Break`, the queue is *not* flushed)
/// once the deadline passes, latching the expiry in a shared flag the
/// front-end converts into [`SteinerError::DeadlineExceeded`].
struct DeadlineSink<'a, Item: Copy> {
    deadline: Instant,
    expired: &'a Cell<bool>,
    ticks: u32,
    inner: &'a mut dyn SolutionSink<Item>,
}

impl<'a, Item: Copy> DeadlineSink<'a, Item> {
    fn new(
        deadline: Instant,
        expired: &'a Cell<bool>,
        inner: &'a mut dyn SolutionSink<Item>,
    ) -> Self {
        DeadlineSink {
            deadline,
            expired,
            ticks: 0,
            inner,
        }
    }

    fn check(&self) -> ControlFlow<()> {
        // lint:allow(clock) the sanctioned deadline clock: work-metered so Instant::now stays off the per-node path
        if Instant::now() >= self.deadline {
            self.expired.set(true);
            return ControlFlow::Break(());
        }
        ControlFlow::Continue(())
    }
}

impl<Item: Copy> SolutionSink<Item> for DeadlineSink<'_, Item> {
    fn solution(&mut self, items: &[Item], work: u64) -> ControlFlow<()> {
        self.check()?;
        self.inner.solution(items, work)
    }

    fn tick(&mut self, work: u64) -> ControlFlow<()> {
        self.ticks += 1;
        if self.ticks >= DEADLINE_CHECK_INTERVAL {
            self.ticks = 0;
            self.check()?;
        }
        self.inner.tick(work)
    }

    fn finish(&mut self) -> ControlFlow<()> {
        self.inner.finish()
    }
}

/// Assembles the sink chain (deadline guard, optional output queue,
/// limit cap) and runs the prepared problem. The second return value
/// reports whether the deadline expired mid-run (the stats then describe
/// the partial run).
fn run_configured<P: MinimalSteinerProblem>(
    p: &mut P,
    prepared: Prepared<P::Item>,
    queue: Option<QueueConfig>,
    limit: Option<u64>,
    deadline: Option<Instant>,
    sink: &mut dyn FnMut(&[P::Item]) -> ControlFlow<()>,
) -> (EnumStats, bool) {
    let mut cap = LimitCap::new(limit);
    let mut limited = |items: &[P::Item]| -> ControlFlow<()> { cap.deliver(|| sink(items)) };
    if limit == Some(0) {
        // Nothing may be delivered; skip the search entirely (a deadline
        // cannot expire on a run that never starts).
        p.stats_mut().note_end();
        return (*p.stats(), false);
    }
    let expired = Cell::new(false);
    let stats = match (queue, deadline) {
        (None, None) => {
            let mut direct = DirectSink { sink: &mut limited };
            run_prepared(p, prepared, &mut direct)
        }
        (None, Some(d)) => {
            let mut direct = DirectSink { sink: &mut limited };
            let mut guarded = DeadlineSink::new(d, &expired, &mut direct);
            run_prepared(p, prepared, &mut guarded)
        }
        (Some(config), None) => {
            let mut queued = OutputQueue::new(config, &mut limited);
            run_prepared(p, prepared, &mut queued)
        }
        (Some(config), Some(d)) => {
            let mut queued = OutputQueue::new(config, &mut limited);
            let mut guarded = DeadlineSink::new(d, &expired, &mut queued);
            run_prepared(p, prepared, &mut guarded)
        }
    };
    (stats, expired.get())
}

/// A block of consecutive solutions from one root child, stored flat
/// (one allocation for the items, one for the lengths) so channel and
/// allocator traffic are amortized over [`BATCH_SOLUTIONS`] solutions
/// instead of paid per solution.
struct Batch<Item> {
    flat: Vec<Item>,
    lens: Vec<u32>,
}

/// Solutions per shard-channel message. Flushing also happens at every
/// child boundary, so small subtrees still stream promptly; within one
/// child the merger is at most one batch behind the producing worker.
const BATCH_SOLUTIONS: usize = 32;

/// The sink a shard worker drives: tags every solution with the root
/// child it belongs to, packs consecutive solutions into flat batches,
/// and forwards them to the merger's channel. A send error means the
/// merger hung up (early termination): the worker sees `Break` and
/// unwinds.
struct ShardSink<'a, Item> {
    tx: &'a Sender<ShardMsg<Batch<Item>>>,
    /// Root-child index currently being explored.
    child: u64,
    /// Pending batch for the current child.
    batch: Batch<Item>,
    /// Tick granularity in work units (`Some` in queued mode, so the
    /// merger's release clock advances between solutions without
    /// flooding the channel with per-node heartbeats).
    tick_every: Option<u64>,
    last_tick: u64,
}

impl<Item: Copy> ShardSink<'_, Item> {
    /// Sends the pending batch (if any); called when the batch fills and
    /// at every child boundary.
    fn flush(&mut self, work: u64) -> ControlFlow<()> {
        if self.batch.lens.is_empty() {
            return ControlFlow::Continue(());
        }
        let batch = std::mem::replace(
            &mut self.batch,
            Batch {
                flat: Vec::new(),
                lens: Vec::new(),
            },
        );
        let msg = ShardMsg::Item {
            child: self.child,
            item: batch,
            work,
        };
        if self.tx.send(msg).is_err() {
            return ControlFlow::Break(());
        }
        ControlFlow::Continue(())
    }
}

impl<Item: Copy> SolutionSink<Item> for ShardSink<'_, Item> {
    fn solution(&mut self, items: &[Item], work: u64) -> ControlFlow<()> {
        self.batch.flat.extend_from_slice(items);
        self.batch.lens.push(items.len() as u32);
        if self.batch.lens.len() >= BATCH_SOLUTIONS {
            self.flush(work)?;
        }
        ControlFlow::Continue(())
    }

    fn tick(&mut self, work: u64) -> ControlFlow<()> {
        if let Some(every) = self.tick_every {
            if work.saturating_sub(self.last_tick) >= every {
                self.last_tick = work;
                // Pending solutions go first so clock advances never
                // overtake the stream.
                self.flush(work)?;
                if self.tx.send(ShardMsg::Tick { work }).is_err() {
                    return ControlFlow::Break(());
                }
            }
        }
        ControlFlow::Continue(())
    }
}

/// How a sharded run participates in subtree work stealing.
enum StealMode {
    /// Root-only sharding (the default, and the A/B reference stream).
    Off,
    /// Adaptive stealing: publish subtrees while the pool is hungry.
    Auto,
    /// Deterministic scripted stealing (test instrument).
    Scripted(StealSchedule),
}

/// Shard- and task-channel capacity under a scripted
/// [`StealSchedule`]. Adaptive stealing keeps the production capacities
/// (workers ahead of the merge must block, not buffer), and stays
/// deadlock-free because the merge point inline-executes any unclaimed
/// task it reaches. A script, by contrast, may pin claims or publish
/// adversarially many subtrees, so scripted runs buy determinism with
/// buffer space instead: channels are sized far above any test
/// workload's message count, making every worker send non-blocking.
pub const SCRIPTED_CHANNEL_CAPACITY: usize = 8192;

/// Pending-deque backstop for the adaptive pool (the hungry-pool policy
/// keeps the live depth near the worker count; the cap only bounds the
/// burst while every worker publishes its first offers).
const STEAL_PENDING_CAPACITY: usize = 1024;

/// Pending-deque capacity under a scripted schedule, which may publish
/// every branch child of a test instance at once. Scripts exceeding it
/// degrade gracefully (refused offers descend locally) but lose
/// spawn-set determinism; test instances stay far below it.
const SCRIPTED_PENDING_CAPACITY: usize = 4096;

/// Everything a shard worker needs to participate in stealing.
struct StealRuntime<'a, Item> {
    pool: &'a StealPool<Item, Batch<Item>>,
    /// `None` = adaptive policy.
    schedule: Option<&'a StealSchedule>,
    observer: Option<&'a StealObserver>,
    /// This worker's index (observer slot and pinned-claim residue).
    worker: usize,
    /// Tick granularity for stolen-task sinks (same as the root sink's).
    tick_every: Option<u64>,
}

/// The per-worker stealing state threaded through [`recurse_stealing`]:
/// the shared pool, the optional script, the tree address of the node
/// currently being considered, and the per-worker opportunity counter
/// for [`crate::steal::StealRule::EveryNth`].
struct StealContext<'a, Item> {
    pool: &'a StealPool<Item, Batch<Item>>,
    schedule: Option<&'a StealSchedule>,
    /// Child-index path from the engine root to the current child.
    path: Vec<u64>,
    /// Spawn opportunities seen so far by this worker.
    chances: u64,
    /// Cleared the first time
    /// [`record_subtree`](MinimalSteinerProblem::record_subtree)
    /// declines: the problem cannot checkpoint mid-descent, so stealing
    /// is disabled for the rest of the run.
    supported: bool,
}

impl<Item: Copy> StealContext<'_, Item> {
    /// Consults the steal policy for the child at `self.path`. Counts an
    /// opportunity either way (the `EveryNth` counter must not depend on
    /// earlier outcomes).
    fn should_spawn(&mut self) -> bool {
        if !self.supported {
            return false;
        }
        self.chances += 1;
        match self.schedule {
            Some(schedule) => schedule.matches(&self.path, self.chances),
            None => self.pool.wants_task(),
        }
    }
}

/// Result of an attempted subtree publication.
enum SpawnOutcome<Item> {
    /// Published; the `Spawned` marker is in the stream — skip descent.
    Spawned,
    /// The pool refused (full or closed); the checkpoint comes back so
    /// the caller descends (or replays) locally.
    Declined(SubtreeRecord<Item>),
    /// The merge hung up while the marker was being sent: unwind.
    Hangup,
}

/// Publishes `record` (the subtree at `ctx.path`) to the steal pool and
/// plants the `Spawned` marker in `sink`'s stream — flushing pending
/// solutions first, so the marker lands at exactly the subtree's
/// position. Accepted offers count as
/// [`EnumStats::subtrees_stolen`] (on the *spawning* worker), refused
/// ones as [`EnumStats::steal_failures`].
fn publish_subtree<P: MinimalSteinerProblem>(
    p: &mut P,
    ctx: &mut StealContext<'_, P::Item>,
    sink: &mut ShardSink<'_, P::Item>,
    record: SubtreeRecord<P::Item>,
) -> SpawnOutcome<P::Item> {
    match ctx.pool.offer(ctx.path.clone(), record) {
        Ok((task, rx)) => {
            p.stats_mut().subtrees_stolen += 1;
            if sink.flush(p.stats().work).is_break() {
                return SpawnOutcome::Hangup;
            }
            if sink.tx.send(ShardMsg::Spawned { task, rx }).is_err() {
                return SpawnOutcome::Hangup;
            }
            SpawnOutcome::Spawned
        }
        Err(record) => {
            p.stats_mut().steal_failures += 1;
            SpawnOutcome::Declined(record)
        }
    }
}

/// [`recurse`] with steal points: before descending into a branch
/// child, consult the steal policy and either publish the child as a
/// pool task (leaving a `Spawned` marker at its stream position) or
/// descend locally. Leaf handling is identical to `recurse`; a spawned
/// child's own node is expanded (and counted) by its executor, never by
/// the spawner.
fn recurse_stealing<P: MinimalSteinerProblem>(
    p: &mut P,
    depth: u32,
    sink: &mut ShardSink<'_, P::Item>,
    scratch: &mut Vec<P::Item>,
    ctx: &mut StealContext<'_, P::Item>,
) -> ControlFlow<()> {
    sink.tick(p.stats().work)?;
    scratch.clear();
    match p.classify(scratch) {
        NodeStep::Complete => {
            p.stats_mut().note_node(0, depth);
            scratch.clear();
            p.solution(scratch);
            emit(p, sink, scratch, P::SORTED_SOLUTIONS)
        }
        NodeStep::Unique => {
            p.stats_mut().note_node(0, depth);
            emit(p, sink, scratch, false)
        }
        NodeStep::Branch(at) => {
            let mut next_child = 0u64;
            let (children, flow) = p.branch(at, &mut |q| {
                let this = next_child;
                next_child += 1;
                ctx.path.push(this);
                let flow = (|| {
                    if ctx.should_spawn() {
                        match q.record_subtree() {
                            Some(record) => match publish_subtree(q, ctx, sink, record) {
                                SpawnOutcome::Spawned => return ControlFlow::Continue(()),
                                SpawnOutcome::Hangup => return ControlFlow::Break(()),
                                SpawnOutcome::Declined(_) => {}
                            },
                            None => ctx.supported = false,
                        }
                    }
                    recurse_stealing(q, depth + 1, sink, scratch, ctx)
                })();
                ctx.path.pop();
                flow
            });
            p.stats_mut().note_node(children, depth);
            flow
        }
    }
}

/// Executes one claimed pool task on a worker's instance copy: replays
/// the checkpoint and streams the subtree over the task's dedicated
/// channel, terminated by a `Done { children: 0 }` marker. Nested
/// publications are allowed — a stolen subtree's own branch children go
/// through the same steal points.
fn execute_stolen_task<P: MinimalSteinerProblem>(
    p: &mut P,
    task: &PendingTask<P::Item, Batch<P::Item>>,
    tick_every: Option<u64>,
    scratch: &mut Vec<P::Item>,
    ctx: &mut StealContext<'_, P::Item>,
) -> ControlFlow<()> {
    let mut tsink = ShardSink {
        tx: &task.tx,
        child: 0,
        batch: Batch {
            flat: Vec::new(),
            lens: Vec::new(),
        },
        tick_every,
        // No catch-up tick: the task stream's clock baselines at its
        // first message.
        last_tick: p.stats().work,
    };
    let depth = task.addr.len() as u32;
    debug_assert!(ctx.path.is_empty(), "steal loop runs between descents");
    ctx.path.extend_from_slice(&task.addr);
    let flow = p.replay_subtree(&task.record, &mut |q| {
        recurse_stealing(q, depth, &mut tsink, scratch, ctx)?;
        tsink.flush(q.stats().work)
    });
    ctx.path.clear();
    flow?;
    if task
        .tx
        .send(ShardMsg::Done {
            children: 0,
            work: p.stats().work,
        })
        .is_err()
    {
        return ControlFlow::Break(());
    }
    ControlFlow::Continue(())
}

/// A worker's post-root steal phase: claim and execute pool tasks until
/// the pool closes. A hangup (the merge dropped its channels) closes
/// the pool for everyone — without the merge, no pending task's stream
/// can ever be drained.
fn run_steal_loop<P: MinimalSteinerProblem>(
    p: &mut P,
    rt: &StealRuntime<'_, P::Item>,
    ctx: &mut StealContext<'_, P::Item>,
    scratch: &mut Vec<P::Item>,
) {
    while let Some(task) = rt.pool.take(rt.worker as u64) {
        let flow = execute_stolen_task(p, &task, rt.tick_every, scratch, ctx);
        rt.pool.task_done();
        if flow.is_break() {
            rt.pool.shutdown();
            return;
        }
        if let Some(observer) = rt.observer {
            observer.note(rt.worker);
        }
    }
}

/// Cap on the shared root child log. Root fanout can be exponential in
/// the instance (every `V(T)`-`w` path is a child), and the workers'
/// own generation is *lazy* — it stops the moment the merge hangs up —
/// so an unbounded eager recording could dwarf the run it serves. Past
/// the cap the recording is abandoned and workers fall back to lazy
/// local generation; below it (the common case the log exists for:
/// modest fanout re-generated `k` times at O(n + m) per child), the
/// one-time recording replaces `k − 1` full generations. The recording
/// is also a *latency* cost — it runs on the coordinator before the
/// first worker spawns — so the cap is sized in the same regime as the
/// output queue's warm-up buffering (≈ n solutions) rather than as
/// large as memory would allow.
const ROOT_LOG_MAX_CHILDREN: usize = 256;

/// Builds the **shared root child log** for a sharded run: drives the
/// (already prepared) original instance's root branch in record-only
/// mode, capturing each child's descent delta. Workers then replay their
/// owned children from the log instead of re-enumerating every root
/// child — the child generation is paid once, not once per worker.
///
/// Returns `None` when the root is not a branching search node, the
/// problem does not support recording, or the fanout exceeds
/// [`ROOT_LOG_MAX_CHILDREN`]; workers then fall back to local generation
/// (the delivered stream is byte-identical either way, since replay and
/// generation share the problems' descend/undo frames).
fn record_root_log<P: MinimalSteinerProblem>(
    p: &mut P,
    prepared: Prepared<P::Item>,
    limit: Option<u64>,
) -> Option<Vec<SubtreeRecord<P::Item>>> {
    if !matches!(prepared, Prepared::Search) {
        return None;
    }
    // A delivery limit bounds the useful fanout: the merge interleaves in
    // global child order and every branch child's subtree emits at least
    // one solution, so a run capped at `limit` can consume at most its
    // first `limit` root children. The recording is abandoned (never
    // truncated — workers cannot resume a branch mid-way) past the
    // smaller cap, so a tiny limit never pays an eager generation the
    // lazy worker path would have skipped.
    let cap = match limit {
        Some(l) => (l.min(ROOT_LOG_MAX_CHILDREN as u64)) as usize,
        None => ROOT_LOG_MAX_CHILDREN,
    };
    if cap == 0 {
        return None;
    }
    let (n, _) = p.instance_size();
    let mut scratch: Vec<P::Item> = Vec::with_capacity(n + 1);
    let at = match p.classify(&mut scratch) {
        NodeStep::Branch(at) => at,
        // A Complete/Unique root is trivial per worker; no log needed.
        _ => return None,
    };
    let mut log: Option<Vec<SubtreeRecord<P::Item>>> = Some(Vec::new());
    let (_children, _flow) = p.branch(at, &mut |q| {
        match (&mut log, q.record_subtree()) {
            (Some(records), Some(record)) if records.len() < cap => {
                records.push(record);
                ControlFlow::Continue(())
            }
            (slot, _) => {
                // Unsupported problem or oversized fanout: abandon the
                // log and stop generating immediately.
                *slot = None;
                ControlFlow::Break(())
            }
        }
    });
    log
}

/// The slice of the shared root child log one shard worker owns: its
/// residue class of the recorded children, tagged with their global
/// indices (the merge interleaves by global child order).
struct WorkerRootLog<Item> {
    /// Total number of recorded root children across all workers.
    total: u64,
    /// Owned children in ascending global index order.
    owned: Vec<(u64, SubtreeRecord<Item>)>,
}

/// Closes one owned root child's slot in the worker stream.
fn send_child_done<Item>(sink: &ShardSink<'_, Item>, child: u64, work: u64) -> ControlFlow<()> {
    let done = ShardMsg::ChildDone { child, work };
    if sink.tx.send(done).is_err() {
        return ControlFlow::Break(());
    }
    ControlFlow::Continue(())
}

/// One shard worker: prepares its own problem copy and runs the engine's
/// root node with the shard filter. With a shared `root_log`, the worker
/// replays only the children it owns (O(delta) each); without one, every
/// root child is still generated locally (keeping the deterministic
/// child order) and the worker descends into its residue class,
/// reporting a `ChildDone` boundary after each owned child. Returns the
/// worker's final statistics.
///
/// With `steal`, owned children and their descendants pass through
/// steal points ([`recurse_stealing`]), and after the root phase the
/// worker becomes a pool executor ([`run_steal_loop`]). The worker's
/// own `Done` is sent **before** the steal phase: the merge must be able
/// to finish this worker's stream while the worker produces into task
/// channels that only the merge drains — deferring `Done` to the end
/// would deadlock the pipeline.
fn run_shard_worker<P: MinimalSteinerProblem>(
    p: &mut P,
    shard: RootShard,
    root_log: Option<WorkerRootLog<P::Item>>,
    steal: Option<&StealRuntime<'_, P::Item>>,
    sink: &mut ShardSink<'_, P::Item>,
) -> Result<EnumStats, SteinerError> {
    let prepared = match p.prepare() {
        Ok(prepared) => prepared,
        Err(e) => {
            let _ = sink.tx.send(ShardMsg::Failed);
            if let Some(rt) = steal {
                // This root phase is over before it began; without the
                // hand-off the pool would wait for it forever.
                rt.pool.root_done();
            }
            return Err(e);
        }
    };
    let mut ctx = steal.map(|rt| StealContext {
        pool: rt.pool,
        schedule: rt.schedule,
        path: Vec::new(),
        chances: 0,
        supported: true,
    });
    let (n, _) = p.instance_size();
    let mut scratch: Vec<P::Item> = Vec::with_capacity(n + 1);
    let mut children_total = 0u64;
    let flow = match prepared {
        Prepared::Empty => ControlFlow::Continue(()),
        Prepared::Single(items) => {
            // Exactly one solution, found without search: shard 0 owns it.
            if shard.index == 0 {
                let mut single = items;
                single.sort_unstable();
                p.stats_mut().note_emission();
                sink.solution(&single, p.stats().work)
            } else {
                ControlFlow::Continue(())
            }
        }
        Prepared::Search if root_log.is_some() => {
            // Shared root child log: the root's children were recorded
            // once by the coordinator, so skip the local classify/branch
            // and replay exactly the owned residue class.
            let log = root_log.expect("guarded by the match arm");
            let total = log.total;
            let mut flow = ControlFlow::Continue(());
            for (this, record) in log.owned {
                debug_assert!(shard.owns(this), "the coordinator partitions by shard");
                sink.child = this;
                // Depth-1 steal point: the child's checkpoint is already
                // in hand (it *is* the log entry), so a hungry pool can
                // take the whole root child without a replay — exactly
                // the skewed-root case root-only sharding loses on.
                let record = match ctx.as_mut() {
                    Some(ctx) => {
                        ctx.path.push(this);
                        let spawn = if ctx.should_spawn() {
                            publish_subtree(p, ctx, sink, record)
                        } else {
                            SpawnOutcome::Declined(record)
                        };
                        ctx.path.pop();
                        match spawn {
                            SpawnOutcome::Spawned => {
                                if send_child_done(sink, this, p.stats().work).is_break() {
                                    flow = ControlFlow::Break(());
                                    break;
                                }
                                continue;
                            }
                            SpawnOutcome::Hangup => {
                                flow = ControlFlow::Break(());
                                break;
                            }
                            SpawnOutcome::Declined(record) => record,
                        }
                    }
                    None => record,
                };
                let f = p.replay_subtree(&record, &mut |q| {
                    match ctx.as_mut() {
                        Some(ctx) => {
                            ctx.path.push(this);
                            let f = recurse_stealing(q, 1, sink, &mut scratch, ctx);
                            ctx.path.pop();
                            f?;
                        }
                        None => recurse(q, 1, sink, &mut scratch)?,
                    }
                    sink.flush(q.stats().work)?;
                    send_child_done(sink, this, q.stats().work)
                });
                if f.is_break() {
                    flow = ControlFlow::Break(());
                    break;
                }
                if let Some(rt) = steal {
                    if let Some(observer) = rt.observer {
                        observer.note(rt.worker);
                    }
                }
            }
            p.stats_mut().note_node(total, 0);
            children_total = total;
            flow
        }
        Prepared::Search => {
            match p.classify(&mut scratch) {
                NodeStep::Complete => {
                    p.stats_mut().note_node(0, 0);
                    scratch.clear();
                    p.solution(&mut scratch);
                    if shard.index == 0 {
                        emit(p, sink, &mut scratch, P::SORTED_SOLUTIONS)
                    } else {
                        ControlFlow::Continue(())
                    }
                }
                NodeStep::Unique => {
                    p.stats_mut().note_node(0, 0);
                    if shard.index == 0 {
                        emit(p, sink, &mut scratch, false)
                    } else {
                        ControlFlow::Continue(())
                    }
                }
                NodeStep::Branch(at) => {
                    let mut next_child = 0u64;
                    let steal_rt = steal;
                    let (children, flow) = p.branch(at, &mut |q| {
                        let this = next_child;
                        next_child += 1;
                        if !shard.owns(this) {
                            // Not ours: the problem still pays the child
                            // generation (which keeps sibling order
                            // deterministic) but the subtree is skipped.
                            return ControlFlow::Continue(());
                        }
                        sink.child = this;
                        match ctx.as_mut() {
                            Some(ctx) => {
                                ctx.path.push(this);
                                let f = (|| {
                                    if ctx.should_spawn() {
                                        match q.record_subtree() {
                                            Some(record) => {
                                                match publish_subtree(q, ctx, sink, record) {
                                                    SpawnOutcome::Spawned => {
                                                        return send_child_done(
                                                            sink,
                                                            this,
                                                            q.stats().work,
                                                        );
                                                    }
                                                    SpawnOutcome::Hangup => {
                                                        return ControlFlow::Break(());
                                                    }
                                                    SpawnOutcome::Declined(_) => {}
                                                }
                                            }
                                            None => ctx.supported = false,
                                        }
                                    }
                                    recurse_stealing(q, 1, sink, &mut scratch, ctx)?;
                                    sink.flush(q.stats().work)?;
                                    send_child_done(sink, this, q.stats().work)?;
                                    if let Some(rt) = steal_rt {
                                        if let Some(observer) = rt.observer {
                                            observer.note(rt.worker);
                                        }
                                    }
                                    ControlFlow::Continue(())
                                })();
                                ctx.path.pop();
                                f
                            }
                            None => {
                                recurse(q, 1, sink, &mut scratch)?;
                                sink.flush(q.stats().work)?;
                                send_child_done(sink, this, q.stats().work)
                            }
                        }
                    });
                    p.stats_mut().note_node(children, 0);
                    children_total = next_child;
                    flow
                }
            }
        }
    };
    let flow = if flow.is_continue() {
        // Root-leaf / `Single` emissions may still sit in the batch.
        sink.flush(p.stats().work)
    } else {
        flow
    };
    let flow = if flow.is_continue() {
        if sink
            .tx
            .send(ShardMsg::Done {
                children: children_total,
                work: p.stats().work,
            })
            .is_err()
        {
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    } else {
        flow
    };
    if let Some(rt) = steal {
        rt.pool.root_done();
        match (&mut ctx, flow) {
            (Some(ctx), ControlFlow::Continue(())) => {
                run_steal_loop(p, rt, ctx, &mut scratch);
            }
            _ => {
                // The merge hung up mid-root-phase: nothing will drain
                // the pending task channels, so close the pool now.
                rt.pool.shutdown();
            }
        }
    }
    p.seal_stats();
    p.stats_mut().note_end();
    Ok(*p.stats())
}

/// What the merge point measured while delivering the merged stream.
struct MergeOutcome {
    delivered: u64,
    /// Maximum delivery gap on the merged work clock (trailing gap
    /// included, mirroring [`EnumStats::note_end`]).
    max_gap: u64,
    /// A worker reported `Failed` (its error is in the shared slot).
    failed: bool,
    /// The deadline expired before the merged stream completed.
    deadline_expired: bool,
}

/// Unpacks one flat batch, handing each solution onward in order.
fn each_solution<Item>(
    batch: &Batch<Item>,
    mut f: impl FnMut(&[Item]) -> ControlFlow<()>,
) -> ControlFlow<()> {
    let mut start = 0usize;
    for &len in &batch.lens {
        let end = start + len as usize;
        f(&batch.flat[start..end])?;
        start = end;
    }
    ControlFlow::Continue(())
}

/// The merge point's sink for **inline** execution of a claimed pool
/// task: translates the executing instance's private work counter into
/// merged-clock advances ([`ShardMerge::advance_external`]) and forwards
/// solutions and ticks into the merge's emitter chain, so an inlined
/// subtree is indistinguishable — stream *and* clock — from one
/// delivered over a task channel.
struct InlineBridge<'a, Item: Copy> {
    merge: &'a mut ShardMerge<Batch<Item>>,
    emitter: &'a mut dyn SolutionSink<Item>,
    clock: &'a Cell<u64>,
    /// The executing instance's work at the previous callback.
    last: u64,
}

impl<Item: Copy> InlineBridge<'_, Item> {
    fn advance(&mut self, work: u64) {
        let delta = work.saturating_sub(self.last);
        if delta > 0 {
            self.merge.advance_external(delta);
            self.last = work;
        }
        self.clock.set(self.merge.work());
    }
}

impl<Item: Copy> SolutionSink<Item> for InlineBridge<'_, Item> {
    fn solution(&mut self, items: &[Item], work: u64) -> ControlFlow<()> {
        self.advance(work);
        self.emitter.solution(items, self.merge.work())
    }

    fn tick(&mut self, work: u64) -> ControlFlow<()> {
        self.advance(work);
        self.emitter.tick(self.merge.work())
    }
}

/// Inline execution of a claimed pool task at the merge point, on the
/// coordinator's original instance: the subtree's solutions flow
/// straight into the emitter chain (no channel round-trip), at exactly
/// the position its `Spawned` marker holds in the merged stream. This is
/// what keeps the adaptive mode deadlock-free: a marker whose task
/// nobody claimed can never leave the merge waiting on a channel nobody
/// fills. No nested spawning — a subtree the merge executes must
/// terminate on its own.
#[allow(clippy::too_many_arguments)]
fn run_inline_task<P: MinimalSteinerProblem>(
    original: &mut P,
    task: &PendingTask<P::Item, Batch<P::Item>>,
    merge: &mut ShardMerge<Batch<P::Item>>,
    emitter: &mut dyn SolutionSink<P::Item>,
    deadline: Option<Instant>,
    expired: &Cell<bool>,
    clock: &Cell<u64>,
    scratch: &mut Vec<P::Item>,
) -> ControlFlow<()> {
    let depth = task.addr.len() as u32;
    let mut bridge = InlineBridge {
        merge,
        emitter,
        clock,
        last: original.stats().work,
    };
    match deadline {
        Some(d) => {
            let mut guarded = DeadlineSink::new(d, expired, &mut bridge);
            original.replay_subtree(&task.record, &mut |q| {
                recurse(q, depth, &mut guarded, scratch)
            })
        }
        None => original.replay_subtree(&task.record, &mut |q| {
            recurse(q, depth, &mut bridge, scratch)
        }),
    }
}

/// Drains the shard merge on the calling thread, applying the limit cap
/// and the optional output queue to the merged stream — the same sink
/// chain as the sequential `run_configured`, driven by the merged work
/// clock. The deadline (when set) is checked per merge event — batches
/// arrive at most [`BATCH_SOLUTIONS`] solutions apart and workers emit
/// heartbeat ticks, so expiry is noticed promptly; the abort drops the
/// merge, which hangs up every worker channel.
///
/// `Spawned` markers (work stealing) splice a subtree's stream in at
/// the marker position: a task already claimed by a worker is awaited on
/// its channel ([`ShardMerge::enter_subtree`]), an unclaimed one is
/// executed inline on `original` ([`run_inline_task`]).
fn run_merge<P: MinimalSteinerProblem>(
    mut merge: ShardMerge<Batch<P::Item>>,
    original: &mut P,
    pool: Option<&StealPool<P::Item, Batch<P::Item>>>,
    queue: Option<QueueConfig>,
    limit: Option<u64>,
    deadline: Option<Instant>,
    sink: &mut dyn FnMut(&[P::Item]) -> ControlFlow<()>,
) -> MergeOutcome {
    let mut delivered = 0u64;
    let mut max_gap = 0u64;
    let mut last_emit = 0u64;
    let clock = Cell::new(0u64);
    let mut failed = false;
    let deadline_expired = Cell::new(false);
    // Completion beats expiry when both race to the same event: a
    // `Finished` stream is the complete answer, deadline or not.
    let expired_now = || {
        // lint:allow(clock) final deadline verdict for the DeadlineExceeded error path
        let hit = matches!(deadline, Some(d) if Instant::now() >= d);
        if hit {
            deadline_expired.set(true);
        }
        hit
    };
    {
        let mut cap = LimitCap::new(limit);
        let mut deliver = |items: &[P::Item]| -> ControlFlow<()> {
            cap.deliver(|| {
                let now = clock.get();
                if delivered > 0 {
                    // Inter-delivery gaps only: the latency to the *first*
                    // delivery includes every worker's preprocessing and
                    // the queue's deliberate warm-up buffering, which
                    // Theorem 20 excludes from its gap bound.
                    max_gap = max_gap.max(now - last_emit);
                }
                last_emit = now;
                delivered += 1;
                sink(items)
            })
        };
        let mut direct;
        let mut queued;
        let emitter: &mut dyn SolutionSink<P::Item> = match queue {
            None => {
                direct = DirectSink { sink: &mut deliver };
                &mut direct
            }
            Some(config) => {
                queued = OutputQueue::new(config, &mut deliver);
                &mut queued
            }
        };
        let (n, _) = original.instance_size();
        let mut scratch: Vec<P::Item> = Vec::with_capacity(n + 1);
        loop {
            match merge.next_event() {
                MergeEvent::Item(batch) => {
                    if expired_now() {
                        // Abort: buffered queue output is dropped, not
                        // flushed — matching the sequential
                        // deadline-abort semantics.
                        break;
                    }
                    clock.set(merge.work());
                    let work = merge.work();
                    if each_solution(&batch, |sol| emitter.solution(sol, work)).is_break() {
                        break;
                    }
                }
                MergeEvent::Tick => {
                    if expired_now() {
                        break;
                    }
                    clock.set(merge.work());
                    if emitter.tick(merge.work()).is_break() {
                        break;
                    }
                }
                MergeEvent::Subtree { task, rx } => {
                    match pool.and_then(|pool| pool.claim_for_merge(task)) {
                        Some(claimed) => {
                            let flow = run_inline_task(
                                original,
                                &claimed,
                                &mut merge,
                                &mut *emitter,
                                deadline,
                                &deadline_expired,
                                &clock,
                                &mut scratch,
                            );
                            pool.expect("claimed from this pool").task_done();
                            if flow.is_break() {
                                break;
                            }
                        }
                        // Claimed by a worker (or claims are pinned):
                        // suspend the enclosing stream and await the
                        // subtree on its own channel.
                        None => merge.enter_subtree(rx),
                    }
                }
                MergeEvent::Finished => {
                    clock.set(merge.work());
                    let _ = emitter.finish();
                    break;
                }
                MergeEvent::Failed => {
                    failed = true;
                    break;
                }
            }
        }
    }
    // Trailing gap, as in `EnumStats::note_end`.
    if delivered > 0 {
        max_gap = max_gap.max(clock.get() - last_emit);
    }
    MergeOutcome {
        delivered,
        max_gap,
        failed,
        deadline_expired: deadline_expired.get(),
    }
}

/// Closes the steal pool when dropped — normally right after the merge
/// returns, but also on panic-unwind through the merge — so workers
/// blocked in [`StealPool::take`] always wake and the thread scope can
/// join.
struct PoolShutdownGuard<'a, Item, M>(Option<&'a StealPool<Item, M>>);

impl<Item, M> Drop for PoolShutdownGuard<'_, Item, M> {
    fn drop(&mut self) {
        if let Some(pool) = self.0 {
            pool.shutdown();
        }
    }
}

/// Spawns one worker per shard (each with the streaming module's large
/// stack), merges deterministically on the calling thread, and publishes
/// the merged statistics. The sequential and sharded front-ends share
/// the limit/queue sink chain, so the delivered stream is identical.
///
/// `original` is the coordinator's own prepared instance (the one that
/// recorded `root_log`); under stealing it doubles as the executor for
/// inline-claimed subtrees, and its statistics are folded into the
/// merged totals.
#[allow(clippy::too_many_arguments)]
fn run_sharded<P>(
    original: &mut P,
    shards: Vec<P>,
    root_log: Option<Vec<SubtreeRecord<P::Item>>>,
    steal: StealMode,
    queue: Option<QueueConfig>,
    limit: Option<u64>,
    deadline: Option<Instant>,
    stats_handle: Option<&StatsHandle>,
    sink: &mut dyn FnMut(&[P::Item]) -> ControlFlow<()>,
) -> Result<(EnumStats, bool), SteinerError>
where
    P: MinimalSteinerProblem + Send,
    P::Item: Send,
{
    if limit == Some(0) {
        // Nothing may be delivered; skip spawning entirely.
        let stats = EnumStats::default();
        if let Some(handle) = stats_handle {
            handle.set(stats);
        }
        return Ok((stats, false));
    }
    let k = shards.len() as u32;
    // One release per `budget` needs clock resolution no coarser than the
    // budget itself; half of it keeps heartbeat traffic negligible. A
    // deadline without a queue also needs heartbeats — otherwise a long
    // solution-free stretch leaves the merge blocked on `next_event` with
    // no chance to read the clock — at the delay-budget granularity the
    // queue would have used (4(n + m) work units).
    let tick_every = match (queue, deadline) {
        (Some(c), _) => Some((c.budget / 2).max(1)),
        (None, Some(_)) => {
            let (n, m) = shards[0].instance_size();
            Some((4 * (n + m) as u64).max(1))
        }
        (None, None) => None,
    };
    let error: Mutex<Option<SteinerError>> = Mutex::new(None);
    let merged: Mutex<EnumStats> = Mutex::new(EnumStats::default());
    let scripted = matches!(steal, StealMode::Scripted(_));
    let (schedule, pool) = match &steal {
        StealMode::Off => (None, None),
        StealMode::Auto => (
            None,
            Some(StealPool::new(k as usize, STEAL_PENDING_CAPACITY, 8, false)),
        ),
        StealMode::Scripted(s) => (
            Some(s),
            Some(StealPool::new(
                k as usize,
                SCRIPTED_PENDING_CAPACITY,
                SCRIPTED_CHANNEL_CAPACITY,
                s.pins_claims(),
            )),
        ),
    };
    let observer = schedule.and_then(|s| s.observer());
    // Modest per-worker runway: capacity × BATCH_SOLUTIONS solutions may
    // be in flight per worker, which decouples the pool from the merge
    // point without letting workers burn far past an early termination.
    // Scripted steal runs instead buy determinism with buffer space (see
    // SCRIPTED_CHANNEL_CAPACITY).
    let chan_cap = if scripted {
        SCRIPTED_CHANNEL_CAPACITY
    } else {
        8
    };
    let (txs, rxs) = streaming::shard_channels(k as usize, chan_cap);
    // Partition the recorded root children into per-worker residue
    // classes up front: worker i receives exactly the children it owns,
    // so nothing is re-generated and nothing is duplicated.
    let mut worker_logs: Vec<Option<WorkerRootLog<P::Item>>> = match root_log {
        Some(records) => {
            let total = records.len() as u64;
            let mut per: Vec<Vec<(u64, SubtreeRecord<P::Item>)>> =
                (0..k).map(|_| Vec::new()).collect();
            for (i, record) in records.into_iter().enumerate() {
                per[i % k as usize].push((i as u64, record));
            }
            per.into_iter()
                .map(|owned| Some(WorkerRootLog { total, owned }))
                .collect()
        }
        None => (0..k).map(|_| None).collect(),
    };
    let outcome = std::thread::scope(|scope| {
        for (i, (mut problem, tx)) in shards.into_iter().zip(txs).enumerate() {
            let error = &error;
            let merged = &merged;
            let pool_ref = pool.as_ref();
            let root_log = worker_logs[i].take();
            std::thread::Builder::new()
                .name(format!("steiner-shard-{i}"))
                .stack_size(streaming::DEFAULT_STACK_BYTES)
                .spawn_scoped(scope, move || {
                    let shard = RootShard {
                        index: i as u32,
                        modulus: k,
                    };
                    let steal_rt = pool_ref.map(|pool| StealRuntime {
                        pool,
                        schedule,
                        observer,
                        worker: i,
                        tick_every,
                    });
                    let mut shard_sink = ShardSink {
                        tx: &tx,
                        child: 0,
                        batch: Batch {
                            flat: Vec::new(),
                            lens: Vec::new(),
                        },
                        tick_every,
                        last_tick: 0,
                    };
                    match run_shard_worker(
                        &mut problem,
                        shard,
                        root_log,
                        steal_rt.as_ref(),
                        &mut shard_sink,
                    ) {
                        Ok(stats) => merged
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .merge(&stats),
                        Err(e) => {
                            error
                                .lock()
                                .unwrap_or_else(|e| e.into_inner())
                                .get_or_insert(e);
                        }
                    }
                })
                .expect("spawn shard worker");
        }
        // Close the pool however the merge exits (completion, early
        // break, or panic): workers blocked in `take` must wake or the
        // scope never joins.
        let _shutdown = PoolShutdownGuard(pool.as_ref());
        run_merge(
            ShardMerge::new(rxs),
            original,
            pool.as_ref(),
            queue,
            limit,
            deadline,
            sink,
        )
        // Dropping the merge hangs up every worker channel; the scope
        // then joins the workers (propagating any worker panic).
    });
    if let Some(e) = error.into_inner().unwrap_or_else(|e| e.into_inner()) {
        return Err(e);
    }
    debug_assert!(!outcome.failed, "failure without a recorded error");
    let mut stats = *merged.lock().unwrap_or_else(|e| e.into_inner());
    if pool.is_some() {
        // Inline-claimed subtrees (and the root-log recording) ran on
        // the coordinator's original instance: fold its counters in so
        // stolen work is accounted exactly once.
        original.seal_stats();
        stats.merge(original.stats());
    }
    // The user-facing view: what was delivered, and the gap actually
    // observed on the merged clock (worker-local gaps are meaningless
    // across clocks).
    stats.solutions = outcome.delivered;
    stats.max_emission_gap = outcome.max_gap;
    if let Some(handle) = stats_handle {
        handle.set(stats);
    }
    Ok((stats, outcome.deadline_expired))
}

/// Iterator over the solutions of a background enumeration, returned by
/// [`Enumeration::into_iter`]. Each item is a sorted `Vec` of edge/arc
/// ids.
pub struct Solutions<Item> {
    inner: steiner_paths::streaming::Enumeration<Vec<Item>>,
    error: Arc<Mutex<Option<SteinerError>>>,
}

impl<Item> Solutions<Item> {
    /// The run's terminal error, if any — today only
    /// [`SteinerError::DeadlineExceeded`], recorded when the run's
    /// [`Enumeration::with_deadline`] expired mid-stream (instance errors
    /// are returned synchronously by [`Enumeration::into_iter`] instead).
    /// The yielded prefix is still valid. Read it after the iterator is
    /// exhausted: the worker publishes the verdict when the stream ends,
    /// so a mid-stream read may race a just-expiring deadline.
    pub fn error(&self) -> Option<SteinerError> {
        self.error.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }
}

impl<Item> Iterator for Solutions<Item> {
    type Item = Vec<Item>;

    /// Yields the next solution. If the producer thread **panicked**, the
    /// panic is re-raised here instead of silently ending the stream — a
    /// partial enumeration is never passed off as a complete one.
    fn next(&mut self) -> Option<Vec<Item>> {
        self.inner.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::improved::SteinerTree;
    use steiner_graph::{EdgeId, UndirectedGraph, VertexId};

    #[test]
    fn stats_handle_recovers_from_poisoned_mutex() {
        // Poison the inner mutex by panicking while holding the lock on
        // another thread — the situation after a worker-thread panic
        // mid-run. Later reads must return the last published value
        // instead of panicking in turn.
        let handle = StatsHandle::default();
        let mut stats = EnumStats::default();
        stats.solutions = 7;
        handle.set(stats);
        let poisoner = handle.clone();
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.0.lock().unwrap();
            panic!("worker dies while holding the stats lock");
        })
        .join();
        assert!(handle.0.is_poisoned(), "the mutex is actually poisoned");
        assert_eq!(handle.get().solutions, 7, "get() recovers the value");
        let mut stats2 = EnumStats::default();
        stats2.solutions = 9;
        handle.set(stats2);
        assert_eq!(handle.get().solutions, 9, "set() keeps working too");
    }

    /// A problem whose sink-side machinery panics mid-enumeration: it
    /// claims two solutions but blows up while classifying the second.
    struct PanickingProblem {
        emitted: u64,
        stats: EnumStats,
    }

    impl MinimalSteinerProblem for PanickingProblem {
        type Item = EdgeId;
        type Branch = ();

        const NAME: &'static str = "panicking test problem";

        fn validate(&self) -> Result<(), SteinerError> {
            Ok(())
        }

        fn prepare(&mut self) -> Result<Prepared<EdgeId>, SteinerError> {
            Ok(Prepared::Search)
        }

        fn instance_size(&self) -> (usize, usize) {
            (2, 1)
        }

        fn stats(&self) -> &EnumStats {
            &self.stats
        }

        fn stats_mut(&mut self) -> &mut EnumStats {
            &mut self.stats
        }

        fn classify(&mut self, _out: &mut Vec<EdgeId>) -> NodeStep<()> {
            match self.emitted {
                0 => NodeStep::Branch(()),
                1 => NodeStep::Complete,
                _ => panic!("enumeration dies after the first solution"),
            }
        }

        fn solution(&self, out: &mut Vec<EdgeId>) {
            out.push(EdgeId(0));
        }

        fn branch(
            &mut self,
            _at: (),
            child: &mut dyn FnMut(&mut Self) -> ControlFlow<()>,
        ) -> (u64, ControlFlow<()>) {
            let mut children = 0;
            let mut flow = ControlFlow::Continue(());
            for _ in 0..2 {
                self.emitted += 1;
                let f = child(self);
                if f.is_break() {
                    flow = ControlFlow::Break(());
                    break;
                }
                children += 1;
            }
            (children, flow)
        }
    }

    /// A well-behaved two-solution problem using the default (`None`)
    /// `cache_key` — i.e. one that opts out of result caching.
    struct KeylessProblem {
        emitted: u64,
        stats: EnumStats,
    }

    impl MinimalSteinerProblem for KeylessProblem {
        type Item = EdgeId;
        type Branch = ();

        const NAME: &'static str = "keyless test problem";

        fn validate(&self) -> Result<(), SteinerError> {
            Ok(())
        }

        fn prepare(&mut self) -> Result<Prepared<EdgeId>, SteinerError> {
            Ok(Prepared::Search)
        }

        fn instance_size(&self) -> (usize, usize) {
            (2, 1)
        }

        fn stats(&self) -> &EnumStats {
            &self.stats
        }

        fn stats_mut(&mut self) -> &mut EnumStats {
            &mut self.stats
        }

        fn classify(&mut self, out: &mut Vec<EdgeId>) -> NodeStep<()> {
            if self.emitted == 0 {
                NodeStep::Branch(())
            } else {
                out.push(EdgeId(self.emitted as u32));
                NodeStep::Unique
            }
        }

        fn solution(&self, _out: &mut Vec<EdgeId>) {}

        fn branch(
            &mut self,
            _at: (),
            child: &mut dyn FnMut(&mut Self) -> ControlFlow<()>,
        ) -> (u64, ControlFlow<()>) {
            let mut children = 0;
            for _ in 0..2 {
                self.emitted += 1;
                if child(self).is_break() {
                    return (children, ControlFlow::Break(()));
                }
                children += 1;
            }
            (children, ControlFlow::Continue(()))
        }
    }

    #[test]
    fn keyless_cached_run_counts_a_miss_on_both_front_ends() {
        // A problem without a cache key still publishes cache_misses = 1
        // under cached() — identically on the push and pull front-ends.
        let cache = crate::cache::ResultCache::new();
        let (run, handle) = Enumeration::new(KeylessProblem {
            emitted: 0,
            stats: EnumStats::default(),
        })
        .cached(&cache)
        .with_stats();
        run.run().expect("valid instance");
        assert_eq!(handle.get().cache_misses, 1, "push front-end");

        let (run, handle) = Enumeration::new(KeylessProblem {
            emitted: 0,
            stats: EnumStats::default(),
        })
        .cached(&cache)
        .with_stats();
        let drained: Vec<_> = run.into_iter().expect("valid instance").collect();
        assert_eq!(drained.len(), 2);
        assert_eq!(handle.get().cache_misses, 1, "pull front-end agrees");
        assert_eq!(handle.get().cache_hits, 0);
        // Keyless runs are counted but never stored.
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn iterator_surfaces_producer_panic() {
        let mut iter = Enumeration::new(PanickingProblem {
            emitted: 0,
            stats: EnumStats::default(),
        })
        .into_iter()
        .expect("prepare succeeds");
        // The first solution arrives before the panic.
        assert_eq!(iter.next(), Some(vec![EdgeId(0)]));
        // Draining past the panic must re-raise it, not end the stream.
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                move || {
                    while iter.next().is_some() {}
                },
            ));
        let payload = outcome.expect_err("the producer panic propagates to the consumer");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("non-string payload");
        assert!(
            msg.contains("dies after the first solution"),
            "the original panic message survives: {msg:?}"
        );
    }

    #[test]
    fn completed_iterator_ends_cleanly() {
        let g = UndirectedGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        let mut iter = Enumeration::new(SteinerTree::from_graph(g, &[VertexId(0), VertexId(1)]))
            .into_iter()
            .unwrap();
        assert!(iter.next().is_some());
        assert!(iter.next().is_some());
        assert_eq!(iter.next(), None, "normal completion stays a clean None");
        assert_eq!(iter.next(), None, "and is idempotent");
    }
}
