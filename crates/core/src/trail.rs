//! The trail: undo-log rollback for the enumeration hot path.
//!
//! Algorithm 3 walks one root-to-leaf path of the enumeration tree at a
//! time, so search-state mutations are strictly LIFO. Instead of cloning
//! membership masks per child (one `Vec<bool>` allocation per node), a
//! [`Trail`] records which bits a branch set and clears exactly those on
//! backtrack — O(1) amortized per mutation, zero allocation once the log
//! buffer is warm.
//!
//! [`ScratchUsage`] is the companion accounting type: every reusable
//! scratch structure reports its post-`prepare()` buffer-growth events and
//! its capacity footprint, and the problems fold the totals into
//! [`EnumStats::scratch_allocs`](crate::stats::EnumStats::scratch_allocs) /
//! [`EnumStats::peak_scratch_bytes`](crate::stats::EnumStats::peak_scratch_bytes)
//! — making "the hot path does not allocate" a testable claim rather than
//! a comment.

/// A checkpoint into a [`Trail`], returned by [`Trail::mark`].
#[derive(Copy, Clone, Debug)]
#[must_use = "pass the mark back to undo_to()"]
pub struct TrailMark(usize);

/// An undo log over boolean membership masks (edge-in-solution, vertex
/// masks, …). Mutations must be monotone per frame: bits are *set*
/// through the trail and cleared wholesale by [`Trail::undo_to`].
#[derive(Clone, Debug, Default)]
pub struct Trail {
    log: Vec<u32>,
    allocs: u64,
}

impl Trail {
    /// A fresh, empty trail.
    pub fn new() -> Self {
        Trail::default()
    }

    /// Reserves room for `cap` live entries so steady-state operation
    /// never grows the log.
    pub fn preallocate(&mut self, cap: usize) {
        if self.log.capacity() < cap {
            self.log.reserve(cap - self.log.capacity());
        }
    }

    /// The current checkpoint.
    pub fn mark(&self) -> TrailMark {
        TrailMark(self.log.len())
    }

    /// Sets `mask[i]` and records the mutation. The bit must be clear
    /// (mutations are monotone within a frame).
    #[inline]
    pub fn set(&mut self, mask: &mut [bool], i: usize) {
        debug_assert!(!mask[i], "trail mutations are monotone per frame");
        mask[i] = true;
        if self.log.len() == self.log.capacity() {
            self.allocs += 1;
        }
        self.log.push(i as u32);
    }

    /// Clears every bit set since `mark`, restoring the mask to its state
    /// at the checkpoint.
    pub fn undo_to(&mut self, mask: &mut [bool], mark: TrailMark) {
        while self.log.len() > mark.0 {
            let i = self.log.pop().expect("log is nonempty above the mark") as usize;
            mask[i] = false;
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.log.len()
    }

    /// Whether the trail holds no live entries.
    pub fn is_empty(&self) -> bool {
        self.log.is_empty()
    }

    /// This trail's scratch accounting.
    pub fn usage(&self) -> ScratchUsage {
        ScratchUsage {
            allocs: self.allocs,
            bytes: (self.log.capacity() * std::mem::size_of::<u32>()) as u64,
        }
    }
}

/// A typed stack of per-descent checkpoint frames.
///
/// One branch step of the engine perturbs several undo-able layers at
/// once — the [`Trail`]-backed membership masks, the partial-solution
/// stacks, and the incremental connectivity deltas
/// ([`steiner_graph::spanning::DynamicSpanning`]). Each problem bundles
/// the checkpoints of all its layers into one frame type and pushes it
/// here on descent; backtracking pops the frame and restores every layer
/// from it, so the descend/undo protocol has a single typed unit instead
/// of a handful of loose marks. The root-child replay path of the
/// sharded front-end reuses exactly the same frames, which is what keeps
/// replayed and locally generated children byte-identical.
#[derive(Clone, Debug)]
pub struct FrameLog<F> {
    frames: Vec<F>,
    allocs: u64,
}

impl<F> Default for FrameLog<F> {
    fn default() -> Self {
        FrameLog {
            frames: Vec::new(),
            allocs: 0,
        }
    }
}

impl<F> FrameLog<F> {
    /// An empty frame stack.
    pub fn new() -> Self {
        FrameLog::default()
    }

    /// Reserves room for `cap` live frames so steady-state descent never
    /// grows the stack.
    pub fn preallocate(&mut self, cap: usize) {
        if self.frames.capacity() < cap {
            self.frames.reserve(cap - self.frames.capacity());
        }
    }

    /// Pushes the checkpoint frame of one descent.
    pub fn push(&mut self, frame: F) {
        if self.frames.len() == self.frames.capacity() {
            self.allocs += 1;
        }
        self.frames.push(frame);
    }

    /// Pops the innermost frame for backtracking. Panics on underflow —
    /// a descend/undo imbalance is a protocol bug, never valid state.
    pub fn pop(&mut self) -> F {
        self.frames
            .pop()
            .expect("frame log underflow: undo without a matching descend")
    }

    /// Current descent depth.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether no descent is active.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// This log's scratch accounting.
    pub fn usage(&self) -> ScratchUsage {
        ScratchUsage {
            allocs: self.allocs,
            bytes: (self.frames.capacity() * std::mem::size_of::<F>()) as u64,
        }
    }
}

/// A bounded FIFO over checkpoint frames — the steal pool's pending
/// deque.
///
/// Where [`FrameLog`] holds the checkpoints of one worker's *own*
/// descent (strictly LIFO, popped on backtrack), a `BoundedFrameDeque`
/// holds frames a worker has *published* for someone else: each entry is
/// a self-contained subtree checkpoint
/// ([`SubtreeRecord`](crate::problem::SubtreeRecord) plus routing
/// metadata) that any idle worker may claim and replay. The bound is
/// load-bearing twice over — it caps the memory pinned by published
/// checkpoints, and it makes hand-off refusal an explicit, countable
/// event ([`EnumStats::steal_failures`](crate::stats::EnumStats::steal_failures))
/// instead of unbounded queue growth.
#[derive(Clone, Debug)]
pub struct BoundedFrameDeque<F> {
    frames: std::collections::VecDeque<F>,
    cap: usize,
    rejected: u64,
}

impl<F> BoundedFrameDeque<F> {
    /// An empty deque admitting at most `cap` pending frames (`cap` is
    /// clamped to at least 1 so a deque can always make progress).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        BoundedFrameDeque {
            frames: std::collections::VecDeque::with_capacity(cap),
            cap,
            rejected: 0,
        }
    }

    /// Publishes a frame, or hands it back (counting the rejection) when
    /// the deque is at capacity.
    pub fn offer(&mut self, frame: F) -> Result<(), F> {
        if self.frames.len() >= self.cap {
            self.rejected += 1;
            return Err(frame);
        }
        self.frames.push_back(frame);
        Ok(())
    }

    /// Claims the oldest pending frame (FIFO: oldest frames sit highest
    /// in the enumeration tree, so claiming them first hands out the
    /// largest remaining subtrees).
    pub fn take_front(&mut self) -> Option<F> {
        self.frames.pop_front()
    }

    /// Claims the oldest pending frame satisfying `pred` — the pinned
    /// claim path of the scripted steal scheduler, and the coordinator's
    /// claim-by-task-id lookup.
    pub fn take_first(&mut self, pred: impl FnMut(&F) -> bool) -> Option<F> {
        let at = self.frames.iter().position(pred)?;
        self.frames.remove(at)
    }

    /// Number of pending frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether no frame is pending.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Whether the deque is at capacity (the next [`Self::offer`] would
    /// be rejected).
    pub fn is_full(&self) -> bool {
        self.frames.len() >= self.cap
    }

    /// Offers rejected at capacity since construction.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }
}

/// Scratch accounting: buffer-growth events plus capacity footprint.
/// Summed across a problem's scratch structures by `seal_stats`.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ScratchUsage {
    /// Buffer-growth (fresh heap) events.
    pub allocs: u64,
    /// Bytes of owned buffer capacity.
    pub bytes: u64,
}

impl ScratchUsage {
    /// A usage record from raw counters.
    pub fn new(allocs: u64, bytes: u64) -> Self {
        ScratchUsage { allocs, bytes }
    }
}

impl std::ops::Add for ScratchUsage {
    type Output = ScratchUsage;

    fn add(self, rhs: ScratchUsage) -> ScratchUsage {
        ScratchUsage {
            allocs: self.allocs + rhs.allocs,
            bytes: self.bytes + rhs.bytes,
        }
    }
}

impl std::ops::AddAssign for ScratchUsage {
    fn add_assign(&mut self, rhs: ScratchUsage) {
        *self = *self + rhs;
    }
}

impl std::iter::Sum for ScratchUsage {
    fn sum<I: Iterator<Item = ScratchUsage>>(iter: I) -> ScratchUsage {
        iter.fold(ScratchUsage::default(), |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_undo_round_trip() {
        let mut trail = Trail::new();
        let mut mask = vec![false; 8];
        let outer = trail.mark();
        trail.set(&mut mask, 1);
        trail.set(&mut mask, 5);
        let inner = trail.mark();
        trail.set(&mut mask, 3);
        assert_eq!(
            mask,
            vec![false, true, false, true, false, true, false, false]
        );
        trail.undo_to(&mut mask, inner);
        assert!(!mask[3]);
        assert!(mask[1] && mask[5], "outer frame untouched");
        trail.undo_to(&mut mask, outer);
        assert!(mask.iter().all(|&b| !b));
        assert!(trail.is_empty());
    }

    #[test]
    fn preallocated_trail_reports_zero_allocs() {
        let mut trail = Trail::new();
        trail.preallocate(16);
        let mut mask = vec![false; 16];
        let mark = trail.mark();
        for i in 0..16 {
            trail.set(&mut mask, i);
        }
        trail.undo_to(&mut mask, mark);
        assert_eq!(trail.usage().allocs, 0);
    }

    #[test]
    fn frame_log_is_lifo_and_tracks_allocs() {
        #[derive(Debug, PartialEq)]
        struct Frame {
            trail: usize,
            span: usize,
        }
        let mut log: FrameLog<Frame> = FrameLog::new();
        log.preallocate(2);
        log.push(Frame { trail: 1, span: 10 });
        log.push(Frame { trail: 2, span: 20 });
        assert_eq!(log.len(), 2);
        assert_eq!(log.pop(), Frame { trail: 2, span: 20 });
        assert_eq!(log.pop(), Frame { trail: 1, span: 10 });
        assert!(log.is_empty());
        assert_eq!(log.usage().allocs, 0, "preallocated: no growth events");
        assert!(log.usage().bytes > 0);
    }

    #[test]
    #[should_panic(expected = "frame log underflow")]
    fn frame_log_pop_underflow_panics() {
        let mut log: FrameLog<u32> = FrameLog::new();
        let _ = log.pop();
    }

    #[test]
    fn bounded_deque_is_fifo_and_rejects_at_capacity() {
        let mut q: BoundedFrameDeque<u32> = BoundedFrameDeque::new(2);
        assert!(q.is_empty() && !q.is_full());
        assert_eq!(q.offer(10), Ok(()));
        assert_eq!(q.offer(20), Ok(()));
        assert!(q.is_full());
        assert_eq!(q.offer(30), Err(30), "at capacity: the frame comes back");
        assert_eq!(q.rejected(), 1);
        assert_eq!(q.take_front(), Some(10), "FIFO: oldest frame first");
        assert_eq!(q.offer(30), Ok(()), "claiming frees a slot");
        assert_eq!(q.take_front(), Some(20));
        assert_eq!(q.take_front(), Some(30));
        assert_eq!(q.take_front(), None);
        assert_eq!(q.rejected(), 1, "rejections are cumulative");
    }

    #[test]
    fn bounded_deque_filtered_claim_preserves_order() {
        let mut q: BoundedFrameDeque<u32> = BoundedFrameDeque::new(8);
        for f in [1u32, 2, 3, 4] {
            q.offer(f).unwrap();
        }
        assert_eq!(q.take_first(|&f| f % 2 == 0), Some(2), "oldest match");
        assert_eq!(q.take_first(|&f| f > 100), None);
        assert_eq!(q.take_front(), Some(1), "non-matching frames keep order");
        assert_eq!(q.take_front(), Some(3));
        assert_eq!(q.take_front(), Some(4));
    }

    #[test]
    fn bounded_deque_clamps_zero_capacity() {
        let mut q: BoundedFrameDeque<u32> = BoundedFrameDeque::new(0);
        assert_eq!(q.offer(7), Ok(()), "cap clamps to 1");
        assert_eq!(q.offer(8), Err(8));
    }

    #[test]
    fn usage_sums() {
        let a = ScratchUsage::new(1, 100);
        let b = ScratchUsage::new(2, 50);
        assert_eq!(a + b, ScratchUsage::new(3, 150));
        let total: ScratchUsage = [a, b, a].into_iter().sum();
        assert_eq!(total, ScratchUsage::new(4, 250));
    }
}
