//! The improved minimal-Steiner-tree enumerator (§4.2, Theorems 17 & 20),
//! exposed as the [`SteinerTree`] problem type for the generic
//! [`crate::solver::Enumeration`] engine.
//!
//! The simple Algorithm 2 can build long chains of single-child nodes. The
//! improvement guarantees **every internal node has at least two
//! children**:
//!
//! * Lemma 16: a `V(T)`-`w` path is the unique one iff all its edges are
//!   bridges of `G` — and bridges of `G` do not depend on `T`, so they are
//!   computed **once** in preprocessing.
//! * Per node, grow any minimal completion `T′ ⊇ T` (spanning tree +
//!   Proposition 3 pruning, O(n + m)), then scan `E(T′) ∖ E(T)` for a
//!   non-bridge edge. If none exists, `T′` is the *unique* minimal Steiner
//!   tree containing `T`: emit it and close the node as a leaf. Otherwise a
//!   terminal `w` behind the non-bridge edge has ≥ 2 valid paths: branch on
//!   it.
//!
//! With the ≥2-children invariant, internal nodes never outnumber leaves,
//! so total work is O((n + m) · #solutions) — amortized O(n + m) each
//! (Theorem 17). Running the enumeration through
//! [`Enumeration::with_queue`](crate::solver::Enumeration::with_queue)
//! yields the worst-case delay bound of Theorem 20 at O(n²) space.
//!
//! The free functions at the bottom are the pre-`Enumeration` entry
//! points, kept as deprecated shims.

use crate::partial::{Extension, PartialTree};
use crate::problem::{MinimalSteinerProblem, NodeStep, Prepared, SteinerError, SubtreeRecord};
use crate::queue::{DirectSink, OutputQueue, QueueConfig, SolutionSink};
use crate::simple::normalize_terminals;
use crate::solver::run_sink_lenient;
use crate::stats::EnumStats;
use crate::trail::{FrameLog, ScratchUsage, Trail, TrailMark};
use std::borrow::Cow;
use std::ops::ControlFlow;
use std::sync::Arc;
use steiner_graph::bridges::bridges;
use steiner_graph::connectivity::all_in_one_component;
use steiner_graph::csr::IncidenceCsr;
use steiner_graph::spanning::{
    grow_spanning_tree_csr, prune_leaves_csr, CompletionScratch, DynamicSpanning, SpanMark,
};
use steiner_graph::{CsrDigraph, CsrUndirected, EdgeId, UndirectedGraph, VertexId};
use steiner_paths::enumerate::{EnumerateOptions, PathScratch};
use steiner_paths::stsets::enumerate_source_set_paths_csr;

/// The minimal Steiner tree problem (§4): find all inclusion-minimal
/// subtrees of `g` spanning `terminals`.
///
/// ```
/// use steiner_core::{Enumeration, SteinerTree};
/// use steiner_graph::{UndirectedGraph, VertexId};
///
/// // Triangle; connect vertices 0 and 1: the direct edge or the detour.
/// let g = UndirectedGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
/// let trees = Enumeration::new(SteinerTree::new(&g, &[VertexId(0), VertexId(1)]))
///     .collect_vec()
///     .unwrap();
/// assert_eq!(trees.len(), 2);
/// ```
pub struct SteinerTree<'g> {
    g: Cow<'g, UndirectedGraph>,
    terminals: Vec<VertexId>,
    stats: EnumStats,
    search: Option<TreeSearch>,
    level_cache_cap: Option<usize>,
    incremental: bool,
    packed: bool,
}

/// The typed checkpoint frame of one descent: partial-tree extension,
/// edge-mask trail mark, and the connectivity layer's mark, restored
/// together on backtrack.
struct TreeFrame {
    ext: Extension,
    trail: TrailMark,
    span: SpanMark,
    /// `E(T)` stack length before this descent — the frame's edges are
    /// the stack suffix from here, used to roll back `edge_words`.
    edges_mark: usize,
}

/// Mutable search state installed by `prepare`. Everything the hot path
/// touches is preallocated here: `classify`/`branch` never allocate.
struct TreeSearch {
    t: PartialTree,
    /// Edge membership in `E(T)`, maintained through the [`Trail`].
    edge_in_t: Vec<bool>,
    /// Word-packed mirror of `edge_in_t`, kept in sync by
    /// `descend`/`retract_frame`: iterating its set bits in word order
    /// delivers `E(T)` already sorted, which is what lets `solution`
    /// skip the per-emission O(k log k) canonicalizing sort.
    edge_words: Vec<u64>,
    /// Undo log for `edge_in_t` (rolled back per child).
    trail: Trail,
    /// Bridges of `G`, precomputed once (Lemma 16 is a property of `G`).
    bridge: Vec<bool>,
    /// Incremental connectivity over the bridge skeleton of `G`: a
    /// terminal with a skeleton path to `V(T)` (queried with the
    /// trail-backed `in_tree` mask as the source oracle) has a **unique**
    /// valid path (Lemma 16), so a node whose missing terminals are all
    /// forced is a Unique leaf — classified without a spanning-growth
    /// pass.
    span: DynamicSpanning,
    /// Typed checkpoint frames of the active descent (LIFO).
    frames: FrameLog<TreeFrame>,
    /// Flat CSR view of `G` (built once).
    csr: CsrUndirected,
    /// Doubled CSR digraph of `G` for `V(T)`-`w` path enumeration (built
    /// once; shared with the nested branch levels, hence the `Arc`).
    doubled: Arc<CsrDigraph>,
    /// Minimal-completion scratch (spanning growth + leaf pruning).
    completion: CompletionScratch,
    /// Branch-target search scratch.
    beyond: BeyondScratch,
    /// One path-enumeration scratch per branch depth (`branch` is
    /// re-entrant through the engine's recursion).
    pool: Vec<BranchScratch>,
    /// Current branch nesting depth (indexes `pool`).
    depth: usize,
    /// Per-level BFS cache preallocation cap for pool growth.
    level_cache_cap: usize,
    /// Growth events outside the component scratches (pool growth).
    extra_allocs: u64,
    /// Scratch-allocation baseline at the end of `prepare()`.
    baseline_allocs: u64,
}

/// Per-branch-depth reusable state: the path enumerator's scratch, the
/// virtual-source boundary buffer, the source-set snapshot, and the
/// arc→edge mapping buffer. Shared with the terminal-Steiner variant.
#[derive(Default)]
pub(crate) struct BranchScratch {
    pub(crate) path: PathScratch,
    pub(crate) boundary: Vec<(VertexId, steiner_graph::ArcId)>,
    pub(crate) sources: Vec<VertexId>,
    pub(crate) edges: Vec<EdgeId>,
}

impl BranchScratch {
    pub(crate) fn preallocate(&mut self, n: usize, m: usize, level_cache_cap: usize) {
        self.path
            .preallocate_capped(n + 2, 2 * m + 2, level_cache_cap);
        if self.boundary.capacity() < 2 * m + 2 {
            self.boundary.reserve(2 * m + 2 - self.boundary.capacity());
        }
        if self.sources.capacity() < n + 1 {
            self.sources.reserve(n + 1 - self.sources.capacity());
        }
        if self.edges.capacity() < n + 1 {
            self.edges.reserve(n + 1 - self.edges.capacity());
        }
    }

    pub(crate) fn usage(&self) -> ScratchUsage {
        ScratchUsage::new(
            self.path.alloc_events(),
            self.path.capacity_bytes()
                + (self.boundary.capacity()
                    * std::mem::size_of::<(VertexId, steiner_graph::ArcId)>()
                    + self.sources.capacity() * std::mem::size_of::<VertexId>()
                    + self.edges.capacity() * std::mem::size_of::<EdgeId>())
                    as u64,
        )
    }
}

/// Reusable buffers for [`find_terminal_beyond_csr`] (shared with the
/// terminal-Steiner variant).
#[derive(Default)]
pub(crate) struct BeyondScratch {
    inc: IncidenceCsr,
    seen: Vec<bool>,
    stack: Vec<VertexId>,
    allocs: u64,
}

impl BeyondScratch {
    pub(crate) fn preallocate(&mut self, n: usize, max_edges: usize) {
        self.inc.preallocate(n, max_edges);
        if self.seen.capacity() < n {
            self.seen.reserve(n - self.seen.capacity());
        }
        if self.stack.capacity() < n {
            self.stack.reserve(n - self.stack.capacity());
        }
    }

    pub(crate) fn usage(&self) -> ScratchUsage {
        ScratchUsage::new(
            self.allocs + self.inc.alloc_events(),
            self.inc.capacity_bytes()
                + (self.seen.capacity() * std::mem::size_of::<bool>()
                    + self.stack.capacity() * std::mem::size_of::<VertexId>())
                    as u64,
        )
    }
}

impl TreeSearch {
    fn usage(&self) -> ScratchUsage {
        let pool: ScratchUsage = self.pool.iter().map(|b| b.usage()).sum();
        self.trail.usage()
            + self.frames.usage()
            + ScratchUsage::new(
                self.csr.alloc_events() + self.doubled.alloc_events(),
                self.csr.capacity_bytes() + self.doubled.capacity_bytes(),
            )
            + ScratchUsage::new(
                self.completion.alloc_events(),
                self.completion.capacity_bytes(),
            )
            + ScratchUsage::new(self.span.alloc_events(), self.span.capacity_bytes())
            + self.beyond.usage()
            + pool
            + ScratchUsage::new(self.extra_allocs, 0)
    }
}

impl<'g> SteinerTree<'g> {
    /// A problem instance borrowing the graph (zero-copy; use
    /// [`Self::from_graph`] or [`Self::into_owned`] for the iterator
    /// front-end, which needs `'static` data).
    pub fn new(g: &'g UndirectedGraph, terminals: &[VertexId]) -> Self {
        SteinerTree {
            g: Cow::Borrowed(g),
            terminals: terminals.to_vec(),
            stats: EnumStats::default(),
            search: None,
            level_cache_cap: None,
            incremental: true,
            packed: true,
        }
    }

    /// A problem instance owning the graph.
    pub fn from_graph(g: UndirectedGraph, terminals: &[VertexId]) -> SteinerTree<'static> {
        SteinerTree {
            g: Cow::Owned(g),
            terminals: terminals.to_vec(),
            stats: EnumStats::default(),
            search: None,
            level_cache_cap: None,
            incremental: true,
            packed: true,
        }
    }

    /// Clones the borrowed graph (if any) so the instance becomes
    /// `'static` and can move to the iterator front-end's worker thread.
    pub fn into_owned(self) -> SteinerTree<'static> {
        SteinerTree {
            g: Cow::Owned(self.g.into_owned()),
            terminals: self.terminals,
            stats: self.stats,
            search: self.search,
            level_cache_cap: self.level_cache_cap,
            incremental: self.incremental,
            packed: self.packed,
        }
    }
}

impl MinimalSteinerProblem for SteinerTree<'_> {
    type Item = EdgeId;
    type Branch = VertexId;

    const NAME: &'static str = "minimal Steiner tree";

    /// `solution` scans the `edge_words` membership bitset in word
    /// order (or sorts the rare stack-copy fallback itself), so every
    /// branch delivers ascending edge ids and the engine's per-emission
    /// canonicalizing sort is a no-op worth skipping.
    const SORTED_SOLUTIONS: bool = true;

    fn validate(&self) -> Result<(), SteinerError> {
        crate::problem::validate_terminal_list(&self.terminals, self.g.num_vertices())
    }

    fn split_root(&self, _shard: crate::problem::RootShard) -> Option<Self> {
        // A fresh copy of the instance data; the worker prepares it
        // itself and the engine applies the root-child filter.
        Some(SteinerTree {
            g: self.g.clone(),
            terminals: self.terminals.clone(),
            stats: EnumStats::default(),
            search: None,
            level_cache_cap: self.level_cache_cap,
            incremental: self.incremental,
            packed: self.packed,
        })
    }

    fn set_level_cache_cap(&mut self, cap: usize) {
        self.level_cache_cap = Some(cap.max(1));
    }

    fn set_incremental(&mut self, on: bool) {
        self.incremental = on;
    }

    fn set_packed_frontiers(&mut self, on: bool) {
        self.packed = on;
    }

    fn cache_key(&self) -> Option<crate::cache::CacheKey> {
        // `prepare` sorts the terminals, so the stream never depends on
        // the caller's order: fingerprint the sorted form and permuted
        // repeats of the same query share one cache entry.
        let mut sorted = self.terminals.clone();
        sorted.sort_unstable();
        // Every solution lies in the terminals' connected components, so
        // the key pins exactly those regions: mutations elsewhere leave
        // the entry valid (and the cache retains it across epochs).
        let regions =
            steiner_graph::RegionMap::of_undirected(&self.g).signature_of(sorted.iter().copied());
        Some(crate::cache::CacheKey {
            kind: Self::NAME,
            regions,
            query_fingerprint: crate::cache::fingerprint_terminals(&sorted),
        })
    }

    fn prepare(&mut self) -> Result<Prepared<EdgeId>, SteinerError> {
        self.validate()?;
        self.terminals.sort_unstable();
        let g = &*self.g;
        // Preprocessing: connectivity + bridges of G, O(n + m) each.
        self.stats.preprocessing_work = 2 * (g.num_vertices() + g.num_edges()) as u64;
        if !all_in_one_component(g, &self.terminals, None) {
            return Err(SteinerError::DisconnectedTerminals { set: 0 });
        }
        if self.terminals.len() == 1 {
            // The empty tree on the terminal itself is the unique solution.
            return Ok(Prepared::Single(Vec::new()));
        }
        let bridge = bridges(g, None);
        let (n, m) = (g.num_vertices(), g.num_edges());
        let t = PartialTree::new(n, &self.terminals, Some(self.terminals[0]));
        // Build the flat views once and size every scratch buffer now, so
        // the search never allocates (asserted via `scratch_allocs`).
        let csr = CsrUndirected::from_graph(g);
        let doubled = Arc::new(CsrDigraph::doubled(g));
        let mut completion = CompletionScratch::default();
        completion.preallocate(n, m);
        let mut beyond = BeyondScratch::default();
        beyond.preallocate(n, m);
        let mut trail = Trail::new();
        trail.preallocate(2 * n + 2);
        // The forced-edge skeleton: the bridges of G, attached from V(T)
        // as the search grows the partial tree. Built once; the root seed
        // is attached here so the root node already reads component state.
        let mut span = DynamicSpanning::new();
        span.preallocate(n, 2 * m);
        span.begin_skeleton(n);
        for e in g.edges() {
            if bridge[e.index()] {
                let (u, v) = g.endpoints(e);
                span.add_edge(u, v, e.index() as u32);
            }
        }
        span.finish_skeleton();
        let mut frames = FrameLog::new();
        frames.preallocate(self.terminals.len() + 2);
        let level_cache_cap = self
            .level_cache_cap
            .unwrap_or(steiner_paths::enumerate::DEFAULT_LEVEL_CACHE_CAP);
        let mut pool = Vec::with_capacity(self.terminals.len() + 1);
        for _ in 0..self.terminals.len() + 1 {
            let mut bs = BranchScratch::default();
            bs.preallocate(n, m, level_cache_cap);
            pool.push(bs);
        }
        let mut search = TreeSearch {
            t,
            edge_in_t: vec![false; m],
            edge_words: vec![0u64; m.div_ceil(64)],
            trail,
            bridge,
            span,
            frames,
            csr,
            doubled,
            completion,
            beyond,
            pool,
            depth: 0,
            level_cache_cap,
            extra_allocs: 0,
            baseline_allocs: 0,
        };
        search.baseline_allocs = search.usage().allocs;
        self.search = Some(search);
        Ok(Prepared::Search)
    }

    fn instance_size(&self) -> (usize, usize) {
        (self.g.num_vertices(), self.g.num_edges())
    }

    fn stats(&self) -> &EnumStats {
        &self.stats
    }

    fn stats_mut(&mut self) -> &mut EnumStats {
        &mut self.stats
    }

    fn classify(&mut self, out: &mut Vec<EdgeId>) -> NodeStep<VertexId> {
        let incremental = self.incremental;
        let stats = &mut self.stats;
        let terminals = &self.terminals;
        let search = self
            .search
            .as_mut()
            .expect("prepare() runs before the search");
        if search.t.complete() {
            return NodeStep::Complete;
        }
        if incremental {
            // Incremental fast path: a missing terminal reached over the
            // bridge skeleton has a *unique* valid path (Lemma 16 — an
            // all-bridge V(T)-w path is the only one), so if every
            // missing terminal is reached the completion is unique and
            // its edges are exactly the recorded forced paths. No
            // spanning-growth pass, O(|W| + |answer|).
            stats.work += terminals.len() as u64;
            let span = &mut search.span;
            let in_tree = &search.t.in_tree;
            out.extend_from_slice(&search.t.edges);
            let all_forced = span.collect_all_forced(
                terminals,
                |v| in_tree[v.index()],
                |e| out.push(EdgeId::new(e as usize)),
            );
            if all_forced {
                stats.classify_incremental += 1;
                stats.work += out.len() as u64;
                #[cfg(debug_assertions)]
                {
                    // Cross-check the incremental verdict against a fresh
                    // spanning-growth pass: the grown-and-pruned T′ must
                    // carry no non-bridge extension edge and equal the
                    // collected completion as a set.
                    grow_spanning_tree_csr(
                        &search.csr,
                        &search.t.vertices,
                        &search.t.edges,
                        None,
                        &mut search.completion,
                    );
                    let is_terminal = &search.t.is_terminal;
                    let in_tree = &search.t.in_tree;
                    prune_leaves_csr(
                        &search.csr,
                        |v| is_terminal[v.index()] || in_tree[v.index()],
                        &mut search.completion,
                    );
                    debug_assert!(
                        search
                            .completion
                            .edges
                            .iter()
                            .all(|e| search.edge_in_t[e.index()] || search.bridge[e.index()]),
                        "incremental Unique verdict disagrees with the fresh pass"
                    );
                    let mut got = out.clone();
                    got.sort_unstable();
                    let mut want = search.completion.edges.clone();
                    want.sort_unstable();
                    debug_assert_eq!(got, want, "incremental unique completion differs from T′");
                }
                return NodeStep::Unique;
            }
            // Some terminal has ≥ 2 valid paths: the node branches, and
            // reproducing the seed engine's branch target requires its
            // completion-order scan — fall through to the full pass.
            out.clear();
            stats.classify_rebuilds += 1;
        } else {
            stats.classify_rebuilds += 1;
        }
        // Minimal completion T' ⊇ T: spanning tree + Proposition 3 pruning,
        // in the preallocated completion scratch.
        grow_spanning_tree_csr(
            &search.csr,
            &search.t.vertices,
            &search.t.edges,
            None,
            &mut search.completion,
        );
        stats.work += (search.csr.num_vertices() + search.csr.num_edges()) as u64;
        let is_terminal = &search.t.is_terminal;
        let in_tree = &search.t.in_tree;
        prune_leaves_csr(
            &search.csr,
            |v| is_terminal[v.index()] || in_tree[v.index()],
            &mut search.completion,
        );
        let tprime = &search.completion.edges;
        // A non-bridge edge of T' ∖ T ⇒ some missing terminal has ≥2 paths.
        let candidate = tprime
            .iter()
            .copied()
            .find(|e| !search.edge_in_t[e.index()] && !search.bridge[e.index()]);
        match candidate {
            // T' is the unique minimal Steiner tree containing T (Lemma 16).
            None => {
                out.extend_from_slice(tprime);
                NodeStep::Unique
            }
            Some(e_star) => NodeStep::Branch(find_terminal_beyond_csr(
                &search.csr,
                tprime,
                e_star,
                &search.t.in_tree,
                &search.t.is_terminal,
                &mut search.beyond,
                &mut stats.work,
            )),
        }
    }

    fn solution(&self, out: &mut Vec<EdgeId>) {
        let search = self
            .search
            .as_ref()
            .expect("prepare() runs before the search");
        // `edge_words` is an exact membership bitset of `E(T)`, so
        // iterating its set bits in word order delivers the solution
        // already sorted and the driver's canonicalizing sort degenerates
        // to one linear ascending-run pass. An O(k log k) sort of k
        // unordered tree edges costs more than the O(m/64 + k) scan
        // unless the tree is much smaller than the graph, so fall back to
        // the plain stack copy (and the driver's real sort) there.
        let k = search.t.edges.len();
        if search.edge_words.len() <= 8 * k.max(1) {
            for (wi, &w0) in search.edge_words.iter().enumerate() {
                let mut w = w0;
                while w != 0 {
                    out.push(EdgeId::new((wi << 6) + w.trailing_zeros() as usize));
                    w &= w - 1;
                }
            }
            debug_assert_eq!(out.len(), k);
        } else {
            out.extend_from_slice(&search.t.edges);
            out.sort_unstable();
        }
    }

    fn seal_stats(&mut self) {
        if let Some(search) = &self.search {
            let usage = search.usage();
            self.stats.note_scratch(ScratchUsage::new(
                usage.allocs - search.baseline_allocs,
                usage.bytes,
            ));
            self.stats.note_connectivity(search.span.repair_stats());
        }
    }

    fn record_subtree(&self) -> Option<SubtreeRecord<EdgeId>> {
        let search = self.search.as_ref()?;
        Some(SubtreeRecord {
            vertices: search.t.vertices.clone(),
            items: search.t.edges.clone(),
            meta: 0,
        })
    }

    fn replay_subtree(
        &mut self,
        record: &SubtreeRecord<EdgeId>,
        child: &mut dyn FnMut(&mut Self) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        self.stats.work += (self.g.num_vertices() + self.g.num_edges()) as u64;
        self.descend(&record.vertices, &record.items);
        let flow = child(self);
        self.retract_frame();
        flow
    }

    fn branch(
        &mut self,
        w: VertexId,
        child: &mut dyn FnMut(&mut Self) -> ControlFlow<()>,
    ) -> (u64, ControlFlow<()>) {
        let per_child = (self.g.num_vertices() + self.g.num_edges()) as u64;
        self.stats.work += per_child;
        // Take this depth's scratch out of the pool so the enumeration can
        // borrow it while the sink mutates `self` (deeper branches use
        // deeper pool entries).
        let (mut bs, doubled, depth) = {
            let search = self
                .search
                .as_mut()
                .expect("prepare() runs before the search");
            let depth = search.depth;
            if search.pool.len() <= depth {
                search.extra_allocs += 1;
                let mut fresh = BranchScratch::default();
                fresh.preallocate(
                    search.csr.num_vertices(),
                    search.csr.num_edges(),
                    search.level_cache_cap,
                );
                search.pool.push(fresh);
            }
            search.depth = depth + 1;
            let mut bs = std::mem::take(&mut search.pool[depth]);
            // Snapshot V(T) — the source set of this branch's valid paths —
            // before the children mutate it.
            bs.sources.clear();
            bs.sources.extend_from_slice(&search.t.vertices);
            // Same prepared CSR on every branch of this search, so the
            // packed per-level BFS caches may survive across branch
            // nodes (the cross-branch reuse the packed mode is for).
            bs.path.begin_same_graph(search.csr.num_vertices() + 1);
            (bs, Arc::clone(&search.doubled), depth)
        };
        let mut children = 0u64;
        let mut flow = ControlFlow::Continue(());
        let BranchScratch {
            path,
            boundary,
            sources,
            edges,
        } = &mut bs;
        let pstats = enumerate_source_set_paths_csr(
            &doubled,
            sources,
            w,
            EnumerateOptions {
                packed_frontiers: self.packed,
                ..EnumerateOptions::default()
            },
            path,
            boundary,
            &mut |p| {
                children += 1;
                // The paper's accounting: each child is generated with
                // O(n + m) delay (Theorem 12), charged here so the work
                // counter advances in step with emissions.
                self.stats.work += per_child;
                edges.clear();
                edges.extend(p.arcs.iter().map(|a| EdgeId::new(a.index() / 2)));
                self.descend(p.vertices, edges);
                let f = child(self);
                self.retract_frame();
                if f.is_break() {
                    flow = ControlFlow::Break(());
                }
                f
            },
        );
        self.stats.path_gen_work += pstats.work;
        self.stats.fstp_cache_hits += pstats.fstp_cache_hits;
        self.stats.fstp_cache_misses += pstats.fstp_cache_misses;
        let search = self.search.as_mut().expect("search state");
        search.pool[depth] = bs;
        search.depth = depth;
        debug_assert!(
            children >= 2 || flow.is_break(),
            "improved enumeration tree: internal nodes have ≥ 2 children"
        );
        (children, flow)
    }
}

impl SteinerTree<'_> {
    /// The descend half of the branch protocol: extends the partial tree
    /// by one valid path, records the edge-mask mutations on the trail,
    /// applies the connectivity attach deltas, and pushes the combined
    /// typed frame. Shared verbatim by locally generated children
    /// (`branch`) and replayed root children, which is what keeps the two
    /// paths byte-identical.
    fn descend(&mut self, path_vertices: &[VertexId], path_edges: &[EdgeId]) {
        let search = self.search.as_mut().expect("search state");
        let edges_mark = search.t.edges.len();
        let ext = search.t.extend_path(path_vertices, path_edges);
        let trail = search.trail.mark();
        for &e in path_edges {
            search.trail.set(&mut search.edge_in_t, e.index());
            steiner_graph::csr::bit_set(&mut search.edge_words, e.index());
        }
        // The partial-tree mask updated above doubles as the
        // connectivity layer's source oracle, so the descent itself
        // costs the incremental layer nothing.
        let span = search.span.mark();
        search.frames.push(TreeFrame {
            ext,
            trail,
            span,
            edges_mark,
        });
    }

    /// The undo half: pops the innermost frame and restores every layer.
    fn retract_frame(&mut self) {
        let search = self.search.as_mut().expect("search state");
        let frame = search.frames.pop();
        for &e in &search.t.edges[frame.edges_mark..] {
            steiner_graph::csr::bit_clear(&mut search.edge_words, e.index());
        }
        search.span.undo_to(frame.span);
        search.trail.undo_to(&mut search.edge_in_t, frame.trail);
        search.t.retract(frame.ext);
    }
}

/// Finds a terminal not yet in the partial tree on the far side of
/// `e_star` within the tree `tprime` (the side not containing the partial
/// tree). Such a terminal exists whenever `e_star ∈ E(T′) ∖ E(T)` (§4.2);
/// shared with the terminal-Steiner variant. Allocation-free: all state
/// lives in `scratch`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn find_terminal_beyond_csr(
    g: &CsrUndirected,
    tprime: &[EdgeId],
    e_star: EdgeId,
    in_tree: &[bool],
    is_terminal: &[bool],
    scratch: &mut BeyondScratch,
    work: &mut u64,
) -> VertexId {
    let n = g.num_vertices();
    scratch.inc.rebuild(n, tprime, |e| g.endpoints(e));
    let (a, b) = g.endpoints(e_star);
    // Explore the side of `a`; if it touches the partial tree, the far
    // side is `b`'s. T′ is a tree, so exactly one side avoids V(T).
    for start in [a, b] {
        steiner_graph::csr::grow(&mut scratch.seen, n, false, &mut scratch.allocs);
        scratch.stack.clear();
        scratch.seen[start.index()] = true;
        scratch.stack.push(start);
        let mut has_tree_vertex = false;
        let mut missing: Option<VertexId> = None;
        while let Some(u) = scratch.stack.pop() {
            if in_tree[u.index()] {
                has_tree_vertex = true;
            }
            if missing.is_none() && is_terminal[u.index()] && !in_tree[u.index()] {
                missing = Some(u);
            }
            for &e in scratch.inc.incident(u) {
                *work += 1;
                if e == e_star {
                    continue;
                }
                let v = g.other_endpoint(e, u);
                if !scratch.seen[v.index()] {
                    scratch.seen[v.index()] = true;
                    scratch.stack.push(v);
                }
            }
        }
        if !has_tree_vertex {
            return missing.expect("the far side of a T'∖T edge contains a missing terminal");
        }
    }
    unreachable!("one side of a tree edge avoids the partial tree")
}

/// Enumerates all minimal Steiner trees of `(g, terminals)` through an
/// arbitrary [`SolutionSink`].
///
/// **Deprecated shim** over the [`Enumeration`](crate::solver::Enumeration)
/// builder — new code should write `solver::run_with_sink(&mut SteinerTree::new(g, terminals), emitter)`.
/// The shim keeps the pre-0.2 lenient contract: empty, disconnected, or
/// unreachable instances silently emit nothing (where the builder returns
/// a typed [`SteinerError`]), and out-of-range ids panic.
#[deprecated(
    since = "0.2.0",
    note = "use `Enumeration::new(SteinerTree::new(g, terminals))` with a custom sink"
)]
pub fn enumerate_minimal_steiner_trees_with(
    g: &UndirectedGraph,
    terminals: &[VertexId],
    emitter: &mut dyn SolutionSink<EdgeId>,
) -> EnumStats {
    let mut problem = SteinerTree::new(g, &normalize_terminals(terminals));
    run_sink_lenient(&mut problem, emitter)
}

/// Enumerates all minimal Steiner trees with amortized O(n + m) time per
/// solution (Theorem 17), emitting each solution the moment it is found.
///
/// **Deprecated shim** over the [`Enumeration`](crate::solver::Enumeration)
/// builder — new code should write `Enumeration::new(SteinerTree::new(g, terminals)).for_each(sink)`.
/// The shim keeps the pre-0.2 lenient contract: empty, disconnected, or
/// unreachable instances silently emit nothing (where the builder returns
/// a typed [`SteinerError`]), and out-of-range ids panic.
#[deprecated(
    since = "0.2.0",
    note = "use `Enumeration::new(SteinerTree::new(g, terminals)).for_each(sink)`"
)]
pub fn enumerate_minimal_steiner_trees(
    g: &UndirectedGraph,
    terminals: &[VertexId],
    sink: &mut dyn FnMut(&[EdgeId]) -> ControlFlow<()>,
) -> EnumStats {
    let mut problem = SteinerTree::new(g, &normalize_terminals(terminals));
    let mut direct = DirectSink { sink };
    run_sink_lenient(&mut problem, &mut direct)
}

/// Enumerates all minimal Steiner trees with worst-case O(n + m) delay via
/// the output-queue method (Theorem 20; O(n²) space for the buffer).
///
/// **Deprecated shim** over the [`Enumeration`](crate::solver::Enumeration)
/// builder — new code should write `Enumeration::new(SteinerTree::new(g, terminals)).with_queue(config).for_each(sink)`.
/// The shim keeps the pre-0.2 lenient contract: empty, disconnected, or
/// unreachable instances silently emit nothing (where the builder returns
/// a typed [`SteinerError`]), and out-of-range ids panic.
#[deprecated(
    since = "0.2.0",
    note = "use `Enumeration::new(SteinerTree::new(g, terminals)).with_queue(config).for_each(sink)`"
)]
pub fn enumerate_minimal_steiner_trees_queued(
    g: &UndirectedGraph,
    terminals: &[VertexId],
    config: Option<QueueConfig>,
    sink: &mut dyn FnMut(&[EdgeId]) -> ControlFlow<()>,
) -> EnumStats {
    let config = config.unwrap_or_else(|| QueueConfig::for_graph(g.num_vertices(), g.num_edges()));
    let mut problem = SteinerTree::new(g, &normalize_terminals(terminals));
    let mut queue = OutputQueue::new(config, sink);
    run_sink_lenient(&mut problem, &mut queue)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;
    use crate::solver::Enumeration;
    use std::collections::BTreeSet;

    fn collect(g: &UndirectedGraph, w: &[VertexId]) -> (BTreeSet<Vec<EdgeId>>, EnumStats) {
        let mut out = BTreeSet::new();
        let stats = Enumeration::new(SteinerTree::new(g, w))
            .for_each(|edges| {
                assert!(out.insert(edges.to_vec()), "duplicate solution {edges:?}");
                ControlFlow::Continue(())
            })
            .expect("valid instance");
        (out, stats)
    }

    #[test]
    fn triangle_matches_brute() {
        let g = UndirectedGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        let w = [VertexId(0), VertexId(1)];
        let (got, _) = collect(&g, &w);
        assert_eq!(got, brute::minimal_steiner_trees(&g, &w));
    }

    #[test]
    fn unique_completion_on_a_tree() {
        // On a tree there is exactly one minimal Steiner tree; the
        // enumerator must find it without branching.
        let g = UndirectedGraph::from_edges(5, &[(0, 1), (1, 2), (1, 3), (3, 4)]).unwrap();
        let w = [VertexId(0), VertexId(4), VertexId(2)];
        let (got, stats) = collect(&g, &w);
        assert_eq!(got.len(), 1);
        assert_eq!(stats.nodes, 1, "single leaf node: unique completion");
        assert_eq!(got, brute::minimal_steiner_trees(&g, &w));
    }

    #[test]
    fn every_internal_node_has_two_children() {
        let g = steiner_graph::generators::grid(3, 4);
        let w = [VertexId(0), VertexId(11), VertexId(5)];
        let (got, stats) = collect(&g, &w);
        assert!(!got.is_empty());
        assert_eq!(stats.deficient_internal_nodes, 0, "Theorem 17 invariant");
        assert!(stats.internal_nodes <= stats.leaf_nodes);
        assert_eq!(stats.leaf_nodes, stats.solutions);
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x1dea);
        for case in 0..60 {
            let n = 3 + case % 5;
            let m = (n - 1 + rng.gen_range(0..5)).min(n * (n - 1) / 2);
            let g = steiner_graph::generators::random_connected_graph(n, m, &mut rng);
            let t = 1 + rng.gen_range(0..n.min(4));
            let w = steiner_graph::generators::random_terminals(n, t, &mut rng);
            let (got, stats) = collect(&g, &w);
            assert_eq!(
                got,
                brute::minimal_steiner_trees(&g, &w),
                "graph {g:?} terminals {w:?}"
            );
            assert_eq!(
                stats.deficient_internal_nodes, 0,
                "graph {g:?} terminals {w:?}"
            );
        }
    }

    #[test]
    fn matches_simple_enumerator() {
        use crate::simple::enumerate_minimal_steiner_trees_simple;
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xf00d);
        for _ in 0..30 {
            let n = 4 + rng.gen_range(0..5usize);
            let g = steiner_graph::generators::random_connected_graph(n, n + 2, &mut rng);
            let t = 2 + rng.gen_range(0..3usize).min(n - 2);
            let w = steiner_graph::generators::random_terminals(n, t, &mut rng);
            let (fast, _) = collect(&g, &w);
            let mut simple = BTreeSet::new();
            enumerate_minimal_steiner_trees_simple(&g, &w, &mut |edges| {
                simple.insert(edges.to_vec());
                ControlFlow::Continue(())
            });
            assert_eq!(fast, simple, "graph {g:?} terminals {w:?}");
        }
    }

    #[test]
    fn queued_mode_emits_same_solutions() {
        let g = steiner_graph::generators::theta_chain(3, 3);
        let w = [VertexId(0), VertexId(3)];
        let (direct, _) = collect(&g, &w);
        let mut queued = BTreeSet::new();
        Enumeration::new(SteinerTree::new(&g, &w))
            .with_default_queue()
            .for_each(|edges| {
                assert!(queued.insert(edges.to_vec()));
                ControlFlow::Continue(())
            })
            .unwrap();
        assert_eq!(direct, queued);
        assert_eq!(direct.len(), 27, "theta chain: width^blocks trees");
    }

    #[test]
    fn all_outputs_verify_minimal() {
        let g = steiner_graph::generators::grid(3, 3);
        let w = [VertexId(0), VertexId(8), VertexId(2)];
        Enumeration::new(SteinerTree::new(&g, &w))
            .for_each(|edges| {
                assert!(crate::verify::is_minimal_steiner_tree(&g, &w, edges));
                ControlFlow::Continue(())
            })
            .unwrap();
    }

    #[test]
    fn break_stops_enumeration() {
        let g = steiner_graph::generators::theta_chain(5, 3);
        let mut count = 0;
        Enumeration::new(SteinerTree::new(&g, &[VertexId(0), VertexId(5)]))
            .for_each(|_| {
                count += 1;
                if count == 7 {
                    ControlFlow::Break(())
                } else {
                    ControlFlow::Continue(())
                }
            })
            .unwrap();
        assert_eq!(count, 7);
    }

    #[test]
    fn limit_front_end_stops_early() {
        let g = steiner_graph::generators::theta_chain(5, 3);
        let n = Enumeration::new(SteinerTree::new(&g, &[VertexId(0), VertexId(5)]))
            .with_limit(7)
            .count()
            .unwrap();
        assert_eq!(n, 7);
    }

    #[test]
    fn iterator_front_end_streams_all_solutions() {
        let g = steiner_graph::generators::theta_chain(3, 3);
        let w = [VertexId(0), VertexId(3)];
        let (direct, _) = collect(&g, &w);
        let iterated: BTreeSet<Vec<EdgeId>> = Enumeration::new(SteinerTree::from_graph(g, &w))
            .into_iter()
            .unwrap()
            .collect();
        assert_eq!(direct, iterated);
    }

    #[test]
    fn search_does_not_allocate_after_prepare() {
        for (g, w) in [
            (
                steiner_graph::generators::grid(3, 4),
                vec![VertexId(0), VertexId(11), VertexId(5)],
            ),
            (
                steiner_graph::generators::theta_chain(5, 3),
                vec![VertexId(0), VertexId(5)],
            ),
        ] {
            let (run, stats) = Enumeration::new(SteinerTree::new(&g, &w)).with_stats();
            run.run().unwrap();
            let stats = stats.get();
            assert!(stats.solutions > 0);
            assert_eq!(
                stats.scratch_allocs, 0,
                "terminals {w:?}: the search must not allocate after prepare()"
            );
            assert!(stats.peak_scratch_bytes > 0, "scratch accounting is live");
        }
    }

    #[test]
    fn deprecated_shims_still_work() {
        #![allow(deprecated)]
        let g = steiner_graph::generators::theta_chain(3, 3);
        let w = [VertexId(0), VertexId(3)];
        let (new_api, _) = collect(&g, &w);
        let mut old_api = BTreeSet::new();
        enumerate_minimal_steiner_trees(&g, &w, &mut |edges| {
            old_api.insert(edges.to_vec());
            ControlFlow::Continue(())
        });
        assert_eq!(new_api, old_api);
        let mut queued = BTreeSet::new();
        enumerate_minimal_steiner_trees_queued(&g, &w, None, &mut |edges| {
            queued.insert(edges.to_vec());
            ControlFlow::Continue(())
        });
        assert_eq!(new_api, queued);
    }
}
