//! The improved minimal-Steiner-tree enumerator (§4.2, Theorems 17 & 20).
//!
//! The simple Algorithm 2 can build long chains of single-child nodes. The
//! improvement guarantees **every internal node has at least two
//! children**:
//!
//! * Lemma 16: a `V(T)`-`w` path is the unique one iff all its edges are
//!   bridges of `G` — and bridges of `G` do not depend on `T`, so they are
//!   computed **once** in preprocessing.
//! * Per node, grow any minimal completion `T′ ⊇ T` (spanning tree +
//!   Proposition 3 pruning, O(n + m)), then scan `E(T′) ∖ E(T)` for a
//!   non-bridge edge. If none exists, `T′` is the *unique* minimal Steiner
//!   tree containing `T`: emit it and close the node as a leaf. Otherwise a
//!   terminal `w` behind the non-bridge edge has ≥ 2 valid paths: branch on
//!   it.
//!
//! With the ≥2-children invariant, internal nodes never outnumber leaves,
//! so total work is O((n + m) · #solutions) — amortized O(n + m) each
//! (Theorem 17). Wiring the emissions through the
//! [`crate::queue::OutputQueue`] yields the worst-case O(n + m) delay of
//! Theorem 20 at O(n²) space.

use crate::partial::PartialTree;
use crate::queue::{DirectSink, OutputQueue, QueueConfig, SolutionSink};
use crate::simple::normalize_terminals;
use crate::stats::EnumStats;
use std::ops::ControlFlow;
use steiner_graph::bridges::bridges;
use steiner_graph::connectivity::all_in_one_component;
use steiner_graph::spanning::{grow_spanning_tree, prune_leaves};
use steiner_graph::{EdgeId, UndirectedGraph, VertexId};
use steiner_paths::stsets::SourceSetInstance;

struct ImprovedEnumerator<'g, 'a> {
    g: &'g UndirectedGraph,
    t: PartialTree,
    /// Edge membership in `E(T)`, kept in lockstep with `t.edges`.
    edge_in_t: Vec<bool>,
    /// Bridges of `G`, precomputed once (Lemma 16 is a property of `G`).
    bridge: Vec<bool>,
    stats: EnumStats,
    scratch: Vec<EdgeId>,
    emitter: &'a mut dyn SolutionSink<EdgeId>,
}

impl ImprovedEnumerator<'_, '_> {
    fn emit(&mut self, edges: &[EdgeId]) -> ControlFlow<()> {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        scratch.extend_from_slice(edges);
        scratch.sort_unstable();
        self.stats.note_emission();
        let flow = self.emitter.solution(&scratch, self.stats.work);
        self.scratch = scratch;
        flow
    }

    fn recurse(&mut self, depth: u32) -> ControlFlow<()> {
        self.emitter.tick(self.stats.work)?;
        if self.t.complete() {
            self.stats.note_node(0, depth);
            let edges = self.t.edges.clone();
            return self.emit(&edges);
        }
        // Minimal completion T' ⊇ T: spanning tree + Proposition 3 pruning.
        let grown = grow_spanning_tree(self.g, &self.t.vertices, &self.t.edges, None);
        self.stats.work += (self.g.num_vertices() + self.g.num_edges()) as u64;
        let is_terminal = &self.t.is_terminal;
        let in_tree = &self.t.in_tree;
        let tprime = prune_leaves(self.g, &grown.edges, |v| {
            is_terminal[v.index()] || in_tree[v.index()]
        });
        // A non-bridge edge of T' ∖ T ⇒ some missing terminal has ≥2 paths.
        let candidate = tprime
            .iter()
            .copied()
            .find(|e| !self.edge_in_t[e.index()] && !self.bridge[e.index()]);
        let Some(e_star) = candidate else {
            // T' is the unique minimal Steiner tree containing T (Lemma 16).
            self.stats.note_node(0, depth);
            return self.emit(&tprime);
        };
        let w = find_terminal_beyond(
            self.g,
            &tprime,
            e_star,
            &self.t.in_tree,
            &self.t.is_terminal,
            &mut self.stats.work,
        );
        let inst = SourceSetInstance::new(self.g, &self.t.in_tree, None);
        self.stats.work += (self.g.num_vertices() + self.g.num_edges()) as u64;
        let mut children = 0u64;
        let mut flow = ControlFlow::Continue(());
        let per_child = (self.g.num_vertices() + self.g.num_edges()) as u64;
        let _pstats = inst.enumerate(w, &mut |p| {
            children += 1;
            // The paper's accounting: each child is generated with
            // O(n + m) delay (Theorem 12), charged here so the work
            // counter advances in step with emissions.
            self.stats.work += per_child;
            let verts = p.vertices.to_vec();
            let edges = p.edges.to_vec();
            let ext = self.t.extend_path(&verts, &edges);
            for &e in &edges {
                self.edge_in_t[e.index()] = true;
            }
            let f = self.recurse(depth + 1);
            for &e in &edges {
                self.edge_in_t[e.index()] = false;
            }
            self.t.retract(ext);
            if f.is_break() {
                flow = ControlFlow::Break(());
            }
            f
        });
        self.stats.note_node(children, depth);
        debug_assert!(
            children >= 2 || flow.is_break(),
            "improved enumeration tree: internal nodes have ≥ 2 children"
        );
        flow
    }
}

/// Finds a terminal not yet in the partial tree on the far side of
/// `e_star` within the tree `tprime` (the side not containing the partial
/// tree). Such a terminal exists whenever `e_star ∈ E(T′) ∖ E(T)` (§4.2);
/// shared with the terminal-Steiner variant.
pub(crate) fn find_terminal_beyond(
    g: &UndirectedGraph,
    tprime: &[EdgeId],
    e_star: EdgeId,
    in_tree: &[bool],
    is_terminal: &[bool],
    work: &mut u64,
) -> VertexId {
    let n = g.num_vertices();
    let mut incident: Vec<Vec<EdgeId>> = vec![Vec::new(); n];
    for &e in tprime {
        let (u, v) = g.endpoints(e);
        incident[u.index()].push(e);
        incident[v.index()].push(e);
    }
    let side_of = |start: VertexId, work: &mut u64| {
        let mut seen = vec![false; n];
        let mut stack = vec![start];
        let mut side = Vec::new();
        seen[start.index()] = true;
        while let Some(u) = stack.pop() {
            side.push(u);
            for &e in &incident[u.index()] {
                *work += 1;
                if e == e_star {
                    continue;
                }
                let v = g.other_endpoint(e, u);
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    stack.push(v);
                }
            }
        }
        side
    };
    let (a, b) = g.endpoints(e_star);
    let side_a = side_of(a, work);
    let far_side = if side_a.iter().any(|v| in_tree[v.index()]) {
        side_of(b, work)
    } else {
        side_a
    };
    far_side
        .into_iter()
        .find(|v| is_terminal[v.index()] && !in_tree[v.index()])
        .expect("the far side of a T'∖T edge contains a missing terminal")
}

/// Enumerates all minimal Steiner trees of `(g, terminals)` through an
/// arbitrary [`SolutionSink`] — the building block for the direct and
/// queued front ends.
pub fn enumerate_minimal_steiner_trees_with(
    g: &UndirectedGraph,
    terminals: &[VertexId],
    emitter: &mut dyn SolutionSink<EdgeId>,
) -> EnumStats {
    let terminals = normalize_terminals(terminals);
    let mut stats = EnumStats::default();
    if terminals.is_empty() {
        return stats;
    }
    // Preprocessing: connectivity + bridges of G, O(n + m) each.
    stats.preprocessing_work = 2 * (g.num_vertices() + g.num_edges()) as u64;
    if !all_in_one_component(g, &terminals, None) {
        return stats;
    }
    if terminals.len() == 1 {
        stats.note_emission();
        let _ = emitter.solution(&[], stats.work);
        let _ = emitter.finish();
        stats.note_end();
        return stats;
    }
    let bridge = bridges(g, None);
    let t = PartialTree::new(g.num_vertices(), &terminals, Some(terminals[0]));
    let mut e = ImprovedEnumerator {
        g,
        t,
        edge_in_t: vec![false; g.num_edges()],
        bridge,
        stats,
        scratch: Vec::new(),
        emitter,
    };
    let flow = e.recurse(0);
    if flow.is_continue() {
        let _ = e.emitter.finish();
    }
    e.stats.note_end();
    e.stats
}

/// Enumerates all minimal Steiner trees with amortized O(n + m) time per
/// solution (Theorem 17), emitting each solution the moment it is found.
///
/// ```
/// use steiner_core::improved::enumerate_minimal_steiner_trees;
/// use steiner_graph::{UndirectedGraph, VertexId};
/// use std::ops::ControlFlow;
///
/// // Triangle; connect vertices 0 and 1: the direct edge or the detour.
/// let g = UndirectedGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
/// let mut trees = Vec::new();
/// enumerate_minimal_steiner_trees(&g, &[VertexId(0), VertexId(1)], &mut |t| {
///     trees.push(t.to_vec());
///     ControlFlow::Continue(())
/// });
/// assert_eq!(trees.len(), 2);
/// ```
pub fn enumerate_minimal_steiner_trees(
    g: &UndirectedGraph,
    terminals: &[VertexId],
    sink: &mut dyn FnMut(&[EdgeId]) -> ControlFlow<()>,
) -> EnumStats {
    let mut direct = DirectSink { sink };
    enumerate_minimal_steiner_trees_with(g, terminals, &mut direct)
}

/// Enumerates all minimal Steiner trees with worst-case O(n + m) delay via
/// the output-queue method (Theorem 20; O(n²) space for the buffer).
pub fn enumerate_minimal_steiner_trees_queued(
    g: &UndirectedGraph,
    terminals: &[VertexId],
    config: Option<QueueConfig>,
    sink: &mut dyn FnMut(&[EdgeId]) -> ControlFlow<()>,
) -> EnumStats {
    let config = config.unwrap_or_else(|| QueueConfig::for_graph(g.num_vertices(), g.num_edges()));
    let mut queue = OutputQueue::new(config, sink);
    enumerate_minimal_steiner_trees_with(g, terminals, &mut queue)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;
    use std::collections::BTreeSet;

    fn collect(g: &UndirectedGraph, w: &[VertexId]) -> (BTreeSet<Vec<EdgeId>>, EnumStats) {
        let mut out = BTreeSet::new();
        let stats = enumerate_minimal_steiner_trees(g, w, &mut |edges| {
            assert!(out.insert(edges.to_vec()), "duplicate solution {edges:?}");
            ControlFlow::Continue(())
        });
        (out, stats)
    }

    #[test]
    fn triangle_matches_brute() {
        let g = UndirectedGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        let w = [VertexId(0), VertexId(1)];
        let (got, _) = collect(&g, &w);
        assert_eq!(got, brute::minimal_steiner_trees(&g, &w));
    }

    #[test]
    fn unique_completion_on_a_tree() {
        // On a tree there is exactly one minimal Steiner tree; the
        // enumerator must find it without branching.
        let g = UndirectedGraph::from_edges(5, &[(0, 1), (1, 2), (1, 3), (3, 4)]).unwrap();
        let w = [VertexId(0), VertexId(4), VertexId(2)];
        let (got, stats) = collect(&g, &w);
        assert_eq!(got.len(), 1);
        assert_eq!(stats.nodes, 1, "single leaf node: unique completion");
        assert_eq!(got, brute::minimal_steiner_trees(&g, &w));
    }

    #[test]
    fn every_internal_node_has_two_children() {
        let g = steiner_graph::generators::grid(3, 4);
        let w = [VertexId(0), VertexId(11), VertexId(5)];
        let (got, stats) = collect(&g, &w);
        assert!(!got.is_empty());
        assert_eq!(stats.deficient_internal_nodes, 0, "Theorem 17 invariant");
        assert!(stats.internal_nodes <= stats.leaf_nodes);
        assert_eq!(stats.leaf_nodes, stats.solutions);
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x1dea);
        for case in 0..60 {
            let n = 3 + case % 5;
            let m = (n - 1 + rng.gen_range(0..5)).min(n * (n - 1) / 2);
            let g = steiner_graph::generators::random_connected_graph(n, m, &mut rng);
            let t = 1 + rng.gen_range(0..n.min(4));
            let w = steiner_graph::generators::random_terminals(n, t, &mut rng);
            let (got, stats) = collect(&g, &w);
            assert_eq!(
                got,
                brute::minimal_steiner_trees(&g, &w),
                "graph {g:?} terminals {w:?}"
            );
            assert_eq!(stats.deficient_internal_nodes, 0, "graph {g:?} terminals {w:?}");
        }
    }

    #[test]
    fn matches_simple_enumerator() {
        use rand::{Rng, SeedableRng};
        use crate::simple::enumerate_minimal_steiner_trees_simple;
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xf00d);
        for _ in 0..30 {
            let n = 4 + rng.gen_range(0..5usize);
            let g = steiner_graph::generators::random_connected_graph(n, n + 2, &mut rng);
            let t = 2 + rng.gen_range(0..3usize).min(n - 2);
            let w = steiner_graph::generators::random_terminals(n, t, &mut rng);
            let (fast, _) = collect(&g, &w);
            let mut simple = BTreeSet::new();
            enumerate_minimal_steiner_trees_simple(&g, &w, &mut |edges| {
                simple.insert(edges.to_vec());
                ControlFlow::Continue(())
            });
            assert_eq!(fast, simple, "graph {g:?} terminals {w:?}");
        }
    }

    #[test]
    fn queued_mode_emits_same_solutions() {
        let g = steiner_graph::generators::theta_chain(3, 3);
        let w = [VertexId(0), VertexId(3)];
        let (direct, _) = collect(&g, &w);
        let mut queued = BTreeSet::new();
        enumerate_minimal_steiner_trees_queued(&g, &w, None, &mut |edges| {
            assert!(queued.insert(edges.to_vec()));
            ControlFlow::Continue(())
        });
        assert_eq!(direct, queued);
        assert_eq!(direct.len(), 27, "theta chain: width^blocks trees");
    }

    #[test]
    fn all_outputs_verify_minimal() {
        let g = steiner_graph::generators::grid(3, 3);
        let w = [VertexId(0), VertexId(8), VertexId(2)];
        enumerate_minimal_steiner_trees(&g, &w, &mut |edges| {
            assert!(crate::verify::is_minimal_steiner_tree(&g, &w, edges));
            ControlFlow::Continue(())
        });
    }

    #[test]
    fn break_stops_enumeration() {
        let g = steiner_graph::generators::theta_chain(5, 3);
        let mut count = 0;
        enumerate_minimal_steiner_trees(&g, &[VertexId(0), VertexId(5)], &mut |_| {
            count += 1;
            if count == 7 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        assert_eq!(count, 7);
    }
}
