//! The improved minimal-Steiner-tree enumerator (§4.2, Theorems 17 & 20),
//! exposed as the [`SteinerTree`] problem type for the generic
//! [`crate::solver::Enumeration`] engine.
//!
//! The simple Algorithm 2 can build long chains of single-child nodes. The
//! improvement guarantees **every internal node has at least two
//! children**:
//!
//! * Lemma 16: a `V(T)`-`w` path is the unique one iff all its edges are
//!   bridges of `G` — and bridges of `G` do not depend on `T`, so they are
//!   computed **once** in preprocessing.
//! * Per node, grow any minimal completion `T′ ⊇ T` (spanning tree +
//!   Proposition 3 pruning, O(n + m)), then scan `E(T′) ∖ E(T)` for a
//!   non-bridge edge. If none exists, `T′` is the *unique* minimal Steiner
//!   tree containing `T`: emit it and close the node as a leaf. Otherwise a
//!   terminal `w` behind the non-bridge edge has ≥ 2 valid paths: branch on
//!   it.
//!
//! With the ≥2-children invariant, internal nodes never outnumber leaves,
//! so total work is O((n + m) · #solutions) — amortized O(n + m) each
//! (Theorem 17). Running the enumeration through
//! [`Enumeration::with_queue`](crate::solver::Enumeration::with_queue)
//! yields the worst-case delay bound of Theorem 20 at O(n²) space.
//!
//! The free functions at the bottom are the pre-`Enumeration` entry
//! points, kept as deprecated shims.

use crate::partial::PartialTree;
use crate::problem::{MinimalSteinerProblem, NodeStep, Prepared, SteinerError};
use crate::queue::{DirectSink, OutputQueue, QueueConfig, SolutionSink};
use crate::simple::normalize_terminals;
use crate::solver::run_sink_lenient;
use crate::stats::EnumStats;
use std::borrow::Cow;
use std::ops::ControlFlow;
use steiner_graph::bridges::bridges;
use steiner_graph::connectivity::all_in_one_component;
use steiner_graph::spanning::{grow_spanning_tree, prune_leaves};
use steiner_graph::{EdgeId, UndirectedGraph, VertexId};
use steiner_paths::stsets::SourceSetInstance;

/// The minimal Steiner tree problem (§4): find all inclusion-minimal
/// subtrees of `g` spanning `terminals`.
///
/// ```
/// use steiner_core::{Enumeration, SteinerTree};
/// use steiner_graph::{UndirectedGraph, VertexId};
///
/// // Triangle; connect vertices 0 and 1: the direct edge or the detour.
/// let g = UndirectedGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
/// let trees = Enumeration::new(SteinerTree::new(&g, &[VertexId(0), VertexId(1)]))
///     .collect_vec()
///     .unwrap();
/// assert_eq!(trees.len(), 2);
/// ```
pub struct SteinerTree<'g> {
    g: Cow<'g, UndirectedGraph>,
    terminals: Vec<VertexId>,
    stats: EnumStats,
    search: Option<TreeSearch>,
}

/// Mutable search state installed by `prepare`.
struct TreeSearch {
    t: PartialTree,
    /// Edge membership in `E(T)`, kept in lockstep with `t.edges`.
    edge_in_t: Vec<bool>,
    /// Bridges of `G`, precomputed once (Lemma 16 is a property of `G`).
    bridge: Vec<bool>,
}

impl<'g> SteinerTree<'g> {
    /// A problem instance borrowing the graph (zero-copy; use
    /// [`Self::from_graph`] or [`Self::into_owned`] for the iterator
    /// front-end, which needs `'static` data).
    pub fn new(g: &'g UndirectedGraph, terminals: &[VertexId]) -> Self {
        SteinerTree {
            g: Cow::Borrowed(g),
            terminals: terminals.to_vec(),
            stats: EnumStats::default(),
            search: None,
        }
    }

    /// A problem instance owning the graph.
    pub fn from_graph(g: UndirectedGraph, terminals: &[VertexId]) -> SteinerTree<'static> {
        SteinerTree {
            g: Cow::Owned(g),
            terminals: terminals.to_vec(),
            stats: EnumStats::default(),
            search: None,
        }
    }

    /// Clones the borrowed graph (if any) so the instance becomes
    /// `'static` and can move to the iterator front-end's worker thread.
    pub fn into_owned(self) -> SteinerTree<'static> {
        SteinerTree {
            g: Cow::Owned(self.g.into_owned()),
            terminals: self.terminals,
            stats: self.stats,
            search: self.search,
        }
    }
}

impl MinimalSteinerProblem for SteinerTree<'_> {
    type Item = EdgeId;
    type Branch = VertexId;

    const NAME: &'static str = "minimal Steiner tree";

    fn validate(&self) -> Result<(), SteinerError> {
        crate::problem::validate_terminal_list(&self.terminals, self.g.num_vertices())
    }

    fn prepare(&mut self) -> Result<Prepared<EdgeId>, SteinerError> {
        self.validate()?;
        self.terminals.sort_unstable();
        let g = &*self.g;
        // Preprocessing: connectivity + bridges of G, O(n + m) each.
        self.stats.preprocessing_work = 2 * (g.num_vertices() + g.num_edges()) as u64;
        if !all_in_one_component(g, &self.terminals, None) {
            return Err(SteinerError::DisconnectedTerminals { set: 0 });
        }
        if self.terminals.len() == 1 {
            // The empty tree on the terminal itself is the unique solution.
            return Ok(Prepared::Single(Vec::new()));
        }
        let bridge = bridges(g, None);
        let t = PartialTree::new(g.num_vertices(), &self.terminals, Some(self.terminals[0]));
        self.search = Some(TreeSearch {
            t,
            edge_in_t: vec![false; g.num_edges()],
            bridge,
        });
        Ok(Prepared::Search)
    }

    fn instance_size(&self) -> (usize, usize) {
        (self.g.num_vertices(), self.g.num_edges())
    }

    fn stats(&self) -> &EnumStats {
        &self.stats
    }

    fn stats_mut(&mut self) -> &mut EnumStats {
        &mut self.stats
    }

    fn classify(&mut self) -> NodeStep<EdgeId, VertexId> {
        let g: &UndirectedGraph = &self.g;
        let stats = &mut self.stats;
        let search = self
            .search
            .as_mut()
            .expect("prepare() runs before the search");
        if search.t.complete() {
            return NodeStep::Complete;
        }
        // Minimal completion T' ⊇ T: spanning tree + Proposition 3 pruning.
        let grown = grow_spanning_tree(g, &search.t.vertices, &search.t.edges, None);
        stats.work += (g.num_vertices() + g.num_edges()) as u64;
        let is_terminal = &search.t.is_terminal;
        let in_tree = &search.t.in_tree;
        let tprime = prune_leaves(g, &grown.edges, |v| {
            is_terminal[v.index()] || in_tree[v.index()]
        });
        // A non-bridge edge of T' ∖ T ⇒ some missing terminal has ≥2 paths.
        let candidate = tprime
            .iter()
            .copied()
            .find(|e| !search.edge_in_t[e.index()] && !search.bridge[e.index()]);
        match candidate {
            // T' is the unique minimal Steiner tree containing T (Lemma 16).
            None => NodeStep::Unique(tprime),
            Some(e_star) => NodeStep::Branch(find_terminal_beyond(
                g,
                &tprime,
                e_star,
                &search.t.in_tree,
                &search.t.is_terminal,
                &mut stats.work,
            )),
        }
    }

    fn solution(&self, out: &mut Vec<EdgeId>) {
        let search = self
            .search
            .as_ref()
            .expect("prepare() runs before the search");
        out.extend_from_slice(&search.t.edges);
    }

    fn branch(
        &mut self,
        w: VertexId,
        child: &mut dyn FnMut(&mut Self) -> ControlFlow<()>,
    ) -> (u64, ControlFlow<()>) {
        let per_child = (self.g.num_vertices() + self.g.num_edges()) as u64;
        // The instance snapshots V(T), so mutations during recursion are
        // safe (it owns its doubled digraph).
        let inst = {
            let search = self
                .search
                .as_ref()
                .expect("prepare() runs before the search");
            SourceSetInstance::new(&self.g, &search.t.in_tree, None)
        };
        self.stats.work += per_child;
        let mut children = 0u64;
        let mut flow = ControlFlow::Continue(());
        let _pstats = inst.enumerate(w, &mut |p| {
            children += 1;
            // The paper's accounting: each child is generated with
            // O(n + m) delay (Theorem 12), charged here so the work
            // counter advances in step with emissions.
            self.stats.work += per_child;
            let verts = p.vertices.to_vec();
            let edges = p.edges.to_vec();
            let search = self.search.as_mut().expect("search state");
            let ext = search.t.extend_path(&verts, &edges);
            for &e in &edges {
                search.edge_in_t[e.index()] = true;
            }
            let f = child(self);
            let search = self.search.as_mut().expect("search state");
            for &e in &edges {
                search.edge_in_t[e.index()] = false;
            }
            search.t.retract(ext);
            if f.is_break() {
                flow = ControlFlow::Break(());
            }
            f
        });
        debug_assert!(
            children >= 2 || flow.is_break(),
            "improved enumeration tree: internal nodes have ≥ 2 children"
        );
        (children, flow)
    }
}

/// Finds a terminal not yet in the partial tree on the far side of
/// `e_star` within the tree `tprime` (the side not containing the partial
/// tree). Such a terminal exists whenever `e_star ∈ E(T′) ∖ E(T)` (§4.2);
/// shared with the terminal-Steiner variant.
pub(crate) fn find_terminal_beyond(
    g: &UndirectedGraph,
    tprime: &[EdgeId],
    e_star: EdgeId,
    in_tree: &[bool],
    is_terminal: &[bool],
    work: &mut u64,
) -> VertexId {
    let n = g.num_vertices();
    let mut incident: Vec<Vec<EdgeId>> = vec![Vec::new(); n];
    for &e in tprime {
        let (u, v) = g.endpoints(e);
        incident[u.index()].push(e);
        incident[v.index()].push(e);
    }
    let side_of = |start: VertexId, work: &mut u64| {
        let mut seen = vec![false; n];
        let mut stack = vec![start];
        let mut side = Vec::new();
        seen[start.index()] = true;
        while let Some(u) = stack.pop() {
            side.push(u);
            for &e in &incident[u.index()] {
                *work += 1;
                if e == e_star {
                    continue;
                }
                let v = g.other_endpoint(e, u);
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    stack.push(v);
                }
            }
        }
        side
    };
    let (a, b) = g.endpoints(e_star);
    let side_a = side_of(a, work);
    let far_side = if side_a.iter().any(|v| in_tree[v.index()]) {
        side_of(b, work)
    } else {
        side_a
    };
    far_side
        .into_iter()
        .find(|v| is_terminal[v.index()] && !in_tree[v.index()])
        .expect("the far side of a T'∖T edge contains a missing terminal")
}

/// Enumerates all minimal Steiner trees of `(g, terminals)` through an
/// arbitrary [`SolutionSink`].
#[deprecated(
    since = "0.2.0",
    note = "use `Enumeration::new(SteinerTree::new(g, terminals))` with a custom sink"
)]
pub fn enumerate_minimal_steiner_trees_with(
    g: &UndirectedGraph,
    terminals: &[VertexId],
    emitter: &mut dyn SolutionSink<EdgeId>,
) -> EnumStats {
    let mut problem = SteinerTree::new(g, &normalize_terminals(terminals));
    run_sink_lenient(&mut problem, emitter)
}

/// Enumerates all minimal Steiner trees with amortized O(n + m) time per
/// solution (Theorem 17), emitting each solution the moment it is found.
#[deprecated(
    since = "0.2.0",
    note = "use `Enumeration::new(SteinerTree::new(g, terminals)).for_each(sink)`"
)]
pub fn enumerate_minimal_steiner_trees(
    g: &UndirectedGraph,
    terminals: &[VertexId],
    sink: &mut dyn FnMut(&[EdgeId]) -> ControlFlow<()>,
) -> EnumStats {
    let mut problem = SteinerTree::new(g, &normalize_terminals(terminals));
    let mut direct = DirectSink { sink };
    run_sink_lenient(&mut problem, &mut direct)
}

/// Enumerates all minimal Steiner trees with worst-case O(n + m) delay via
/// the output-queue method (Theorem 20; O(n²) space for the buffer).
#[deprecated(
    since = "0.2.0",
    note = "use `Enumeration::new(SteinerTree::new(g, terminals)).with_queue(config).for_each(sink)`"
)]
pub fn enumerate_minimal_steiner_trees_queued(
    g: &UndirectedGraph,
    terminals: &[VertexId],
    config: Option<QueueConfig>,
    sink: &mut dyn FnMut(&[EdgeId]) -> ControlFlow<()>,
) -> EnumStats {
    let config = config.unwrap_or_else(|| QueueConfig::for_graph(g.num_vertices(), g.num_edges()));
    let mut problem = SteinerTree::new(g, &normalize_terminals(terminals));
    let mut queue = OutputQueue::new(config, sink);
    run_sink_lenient(&mut problem, &mut queue)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;
    use crate::solver::Enumeration;
    use std::collections::BTreeSet;

    fn collect(g: &UndirectedGraph, w: &[VertexId]) -> (BTreeSet<Vec<EdgeId>>, EnumStats) {
        let mut out = BTreeSet::new();
        let stats = Enumeration::new(SteinerTree::new(g, w))
            .for_each(|edges| {
                assert!(out.insert(edges.to_vec()), "duplicate solution {edges:?}");
                ControlFlow::Continue(())
            })
            .expect("valid instance");
        (out, stats)
    }

    #[test]
    fn triangle_matches_brute() {
        let g = UndirectedGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        let w = [VertexId(0), VertexId(1)];
        let (got, _) = collect(&g, &w);
        assert_eq!(got, brute::minimal_steiner_trees(&g, &w));
    }

    #[test]
    fn unique_completion_on_a_tree() {
        // On a tree there is exactly one minimal Steiner tree; the
        // enumerator must find it without branching.
        let g = UndirectedGraph::from_edges(5, &[(0, 1), (1, 2), (1, 3), (3, 4)]).unwrap();
        let w = [VertexId(0), VertexId(4), VertexId(2)];
        let (got, stats) = collect(&g, &w);
        assert_eq!(got.len(), 1);
        assert_eq!(stats.nodes, 1, "single leaf node: unique completion");
        assert_eq!(got, brute::minimal_steiner_trees(&g, &w));
    }

    #[test]
    fn every_internal_node_has_two_children() {
        let g = steiner_graph::generators::grid(3, 4);
        let w = [VertexId(0), VertexId(11), VertexId(5)];
        let (got, stats) = collect(&g, &w);
        assert!(!got.is_empty());
        assert_eq!(stats.deficient_internal_nodes, 0, "Theorem 17 invariant");
        assert!(stats.internal_nodes <= stats.leaf_nodes);
        assert_eq!(stats.leaf_nodes, stats.solutions);
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x1dea);
        for case in 0..60 {
            let n = 3 + case % 5;
            let m = (n - 1 + rng.gen_range(0..5)).min(n * (n - 1) / 2);
            let g = steiner_graph::generators::random_connected_graph(n, m, &mut rng);
            let t = 1 + rng.gen_range(0..n.min(4));
            let w = steiner_graph::generators::random_terminals(n, t, &mut rng);
            let (got, stats) = collect(&g, &w);
            assert_eq!(
                got,
                brute::minimal_steiner_trees(&g, &w),
                "graph {g:?} terminals {w:?}"
            );
            assert_eq!(
                stats.deficient_internal_nodes, 0,
                "graph {g:?} terminals {w:?}"
            );
        }
    }

    #[test]
    fn matches_simple_enumerator() {
        use crate::simple::enumerate_minimal_steiner_trees_simple;
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xf00d);
        for _ in 0..30 {
            let n = 4 + rng.gen_range(0..5usize);
            let g = steiner_graph::generators::random_connected_graph(n, n + 2, &mut rng);
            let t = 2 + rng.gen_range(0..3usize).min(n - 2);
            let w = steiner_graph::generators::random_terminals(n, t, &mut rng);
            let (fast, _) = collect(&g, &w);
            let mut simple = BTreeSet::new();
            enumerate_minimal_steiner_trees_simple(&g, &w, &mut |edges| {
                simple.insert(edges.to_vec());
                ControlFlow::Continue(())
            });
            assert_eq!(fast, simple, "graph {g:?} terminals {w:?}");
        }
    }

    #[test]
    fn queued_mode_emits_same_solutions() {
        let g = steiner_graph::generators::theta_chain(3, 3);
        let w = [VertexId(0), VertexId(3)];
        let (direct, _) = collect(&g, &w);
        let mut queued = BTreeSet::new();
        Enumeration::new(SteinerTree::new(&g, &w))
            .with_default_queue()
            .for_each(|edges| {
                assert!(queued.insert(edges.to_vec()));
                ControlFlow::Continue(())
            })
            .unwrap();
        assert_eq!(direct, queued);
        assert_eq!(direct.len(), 27, "theta chain: width^blocks trees");
    }

    #[test]
    fn all_outputs_verify_minimal() {
        let g = steiner_graph::generators::grid(3, 3);
        let w = [VertexId(0), VertexId(8), VertexId(2)];
        Enumeration::new(SteinerTree::new(&g, &w))
            .for_each(|edges| {
                assert!(crate::verify::is_minimal_steiner_tree(&g, &w, edges));
                ControlFlow::Continue(())
            })
            .unwrap();
    }

    #[test]
    fn break_stops_enumeration() {
        let g = steiner_graph::generators::theta_chain(5, 3);
        let mut count = 0;
        Enumeration::new(SteinerTree::new(&g, &[VertexId(0), VertexId(5)]))
            .for_each(|_| {
                count += 1;
                if count == 7 {
                    ControlFlow::Break(())
                } else {
                    ControlFlow::Continue(())
                }
            })
            .unwrap();
        assert_eq!(count, 7);
    }

    #[test]
    fn limit_front_end_stops_early() {
        let g = steiner_graph::generators::theta_chain(5, 3);
        let n = Enumeration::new(SteinerTree::new(&g, &[VertexId(0), VertexId(5)]))
            .with_limit(7)
            .count()
            .unwrap();
        assert_eq!(n, 7);
    }

    #[test]
    fn iterator_front_end_streams_all_solutions() {
        let g = steiner_graph::generators::theta_chain(3, 3);
        let w = [VertexId(0), VertexId(3)];
        let (direct, _) = collect(&g, &w);
        let iterated: BTreeSet<Vec<EdgeId>> =
            Enumeration::new(SteinerTree::from_graph(g.clone(), &w))
                .into_iter()
                .unwrap()
                .collect();
        assert_eq!(direct, iterated);
    }

    #[test]
    fn deprecated_shims_still_work() {
        #![allow(deprecated)]
        let g = steiner_graph::generators::theta_chain(3, 3);
        let w = [VertexId(0), VertexId(3)];
        let (new_api, _) = collect(&g, &w);
        let mut old_api = BTreeSet::new();
        enumerate_minimal_steiner_trees(&g, &w, &mut |edges| {
            old_api.insert(edges.to_vec());
            ControlFlow::Continue(())
        });
        assert_eq!(new_api, old_api);
        let mut queued = BTreeSet::new();
        enumerate_minimal_steiner_trees_queued(&g, &w, None, &mut |edges| {
            queued.insert(edges.to_vec());
            ControlFlow::Continue(())
        });
        assert_eq!(new_api, queued);
    }
}
