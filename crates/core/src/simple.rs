//! Algorithm 2: the simple polynomial-delay enumeration of minimal Steiner
//! trees (§4.1, Theorem 15).
//!
//! Starting from an arbitrary terminal, recursively attach every
//! `V(T)`-`w` path for some missing terminal `w`; by Lemma 13 every partial
//! tree extends to a minimal Steiner tree, and by Lemma 14 each minimal
//! Steiner tree is produced exactly once. Delay O(|W|(n + m)): the
//! enumeration-tree depth is |W| and children arrive with O(n + m) delay
//! from the path enumerator.
//!
//! This enumerator is kept (a) as the paper's baseline for the Table 1
//! comparison — its delay visibly grows with |W| while the improved
//! enumerator's does not — and (b) as a correctness cross-check.

use crate::partial::PartialTree;
use crate::stats::EnumStats;
use std::ops::ControlFlow;
use steiner_graph::connectivity::all_in_one_component;
use steiner_graph::{EdgeId, UndirectedGraph, VertexId};
use steiner_paths::stsets::SourceSetInstance;

/// Sorts and deduplicates a terminal list.
pub(crate) fn normalize_terminals(terminals: &[VertexId]) -> Vec<VertexId> {
    let mut t = terminals.to_vec();
    t.sort_unstable();
    t.dedup();
    t
}

struct SimpleEnumerator<'g, 'a> {
    g: &'g UndirectedGraph,
    terminals: Vec<VertexId>,
    t: PartialTree,
    stats: EnumStats,
    scratch: Vec<EdgeId>,
    sink: &'a mut dyn FnMut(&[EdgeId]) -> ControlFlow<()>,
}

impl SimpleEnumerator<'_, '_> {
    fn output_current(&mut self) -> ControlFlow<()> {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        scratch.extend_from_slice(&self.t.edges);
        scratch.sort_unstable();
        self.stats.note_emission();
        let flow = (self.sink)(&scratch);
        self.scratch = scratch;
        flow
    }

    fn recurse(&mut self, depth: u32) -> ControlFlow<()> {
        if self.t.complete() {
            self.stats.note_node(0, depth);
            return self.output_current();
        }
        let w = self
            .t
            .first_missing_terminal(&self.terminals)
            .expect("incomplete tree misses a terminal");
        // Line 5 of Algorithm 2: branch on every V(T)-w path. The instance
        // snapshots the current V(T), so mutations during recursion are safe.
        let inst = SourceSetInstance::new(self.g, &self.t.in_tree, None);
        self.stats.work += (self.g.num_vertices() + self.g.num_edges()) as u64;
        let mut children = 0u64;
        let mut flow = ControlFlow::Continue(());
        let per_child = (self.g.num_vertices() + self.g.num_edges()) as u64;
        let _pstats = inst.enumerate(w, &mut |p| {
            children += 1;
            self.stats.work += per_child;
            let verts = p.vertices.to_vec();
            let edges = p.edges.to_vec();
            let ext = self.t.extend_path(&verts, &edges);
            let f = self.recurse(depth + 1);
            self.t.retract(ext);
            if f.is_break() {
                flow = ControlFlow::Break(());
            }
            f
        });
        self.stats.note_node(children, depth);
        flow
    }
}

/// Enumerates all minimal Steiner trees of `(g, terminals)` with the
/// simple Algorithm 2 (delay O(|W|(n + m)), space O(|W|(n + m))).
///
/// Solutions are sorted edge-id sets. Degenerate cases: no terminals — no
/// solutions; one terminal — the single empty tree; terminals in different
/// components — no solutions.
pub fn enumerate_minimal_steiner_trees_simple(
    g: &UndirectedGraph,
    terminals: &[VertexId],
    sink: &mut dyn FnMut(&[EdgeId]) -> ControlFlow<()>,
) -> EnumStats {
    let terminals = normalize_terminals(terminals);
    let mut stats = EnumStats::default();
    if terminals.is_empty() {
        return stats;
    }
    stats.preprocessing_work = (g.num_vertices() + g.num_edges()) as u64;
    if !all_in_one_component(g, &terminals, None) {
        return stats;
    }
    if terminals.len() == 1 {
        stats.note_emission();
        let _ = sink(&[]);
        stats.note_end();
        return stats;
    }
    let t = PartialTree::new(g.num_vertices(), &terminals, Some(terminals[0]));
    let mut e = SimpleEnumerator {
        g,
        terminals,
        t,
        stats,
        scratch: Vec::new(),
        sink,
    };
    let _ = e.recurse(0);
    e.stats.note_end();
    e.stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;
    use std::collections::BTreeSet;

    fn collect(g: &UndirectedGraph, w: &[VertexId]) -> BTreeSet<Vec<EdgeId>> {
        let mut out = BTreeSet::new();
        enumerate_minimal_steiner_trees_simple(g, w, &mut |edges| {
            assert!(out.insert(edges.to_vec()), "duplicate solution {edges:?}");
            ControlFlow::Continue(())
        });
        out
    }

    #[test]
    fn triangle_two_terminals() {
        let g = UndirectedGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        let w = [VertexId(0), VertexId(1)];
        assert_eq!(collect(&g, &w), brute::minimal_steiner_trees(&g, &w));
    }

    #[test]
    fn square_three_terminals() {
        let g = UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let w = [VertexId(0), VertexId(1), VertexId(2)];
        let got = collect(&g, &w);
        assert_eq!(got, brute::minimal_steiner_trees(&g, &w));
        // Path 0-1-2, path 1-0-3-2, and path 0-1-2 reversed around: the
        // three trees are {01,12}, {01,03,23}, {12,23,30}.
        assert_eq!(got.len(), 3);
    }

    #[test]
    fn single_terminal_is_empty_tree() {
        let g = UndirectedGraph::from_edges(2, &[(0, 1)]).unwrap();
        let got = collect(&g, &[VertexId(1)]);
        assert_eq!(got.len(), 1);
        assert!(got.contains(&Vec::new()));
    }

    #[test]
    fn disconnected_terminals_no_solutions() {
        let g = UndirectedGraph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(collect(&g, &[VertexId(0), VertexId(2)]).is_empty());
    }

    #[test]
    fn early_break_stops() {
        let g = steiner_graph::generators::theta_chain(4, 3);
        let mut seen = 0;
        enumerate_minimal_steiner_trees_simple(&g, &[VertexId(0), VertexId(4)], &mut |_| {
            seen += 1;
            if seen >= 5 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        assert_eq!(seen, 5);
    }

    #[test]
    fn matches_brute_force_on_small_graphs() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xc0ffee);
        for case in 0..40 {
            let n = 3 + case % 5;
            let m = (n - 1 + rng.gen_range(0..4)).min(n * (n - 1) / 2);
            let g = steiner_graph::generators::random_connected_graph(n, m, &mut rng);
            let t = 1 + rng.gen_range(0..n.min(4));
            let w = steiner_graph::generators::random_terminals(n, t, &mut rng);
            assert_eq!(
                collect(&g, &w),
                brute::minimal_steiner_trees(&g, &w),
                "graph {g:?} terminals {w:?}"
            );
        }
    }
}
