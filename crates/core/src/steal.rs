//! Subtree work stealing for the sharded front-end.
//!
//! Root-only sharding ([`Enumeration::with_threads`](crate::solver::Enumeration::with_threads))
//! splits the root's children round-robin, which collapses when the root
//! has fewer children than workers or when one subtree dwarfs the rest.
//! This module adds the second level: a busy worker reaching a branch
//! child may *publish* it — a self-contained
//! [`SubtreeRecord`] checkpoint pushed
//! into the pool's bounded pending deque — instead of
//! descending, leaving a [`Spawned`](steiner_paths::streaming::ShardMsg)
//! marker in its output stream at exactly the position where the
//! subtree's solutions belong. An idle worker (or, to keep the merge
//! deadlock-free, the coordinator itself) claims the checkpoint, replays
//! it on its own instance copy, and delivers the subtree over a dedicated
//! channel that the coordinator splices in at the marker — so the merged
//! stream stays **byte-identical to the sequential engine** no matter
//! which worker executed which subtree.
//!
//! Spawn decisions are adaptive by default (spawn only while the pool is
//! hungry: an idle worker is waiting, or fewer checkpoints than workers
//! are outstanding). For CI they can instead be **scripted** through a
//! [`StealSchedule`] — a deterministic rule set over tree addresses and
//! depths — so pathological interleavings (skewed star roots, steals at
//! every depth) replay exactly, even on a single-core container.

use crate::problem::SubtreeRecord;
use crate::trail::BoundedFrameDeque;
use crossbeam_channel::{bounded, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use steiner_paths::streaming::ShardMsg;

/// One scripted spawn rule; any matching rule publishes the child (see
/// [`StealSchedule`]).
#[derive(Clone, Debug)]
pub enum StealRule {
    /// Publish every branch child whose depth lies in `min..=max`
    /// (depth 1 = a root child).
    DepthRange {
        /// Smallest depth published.
        min: u32,
        /// Largest depth published.
        max: u32,
    },
    /// Publish the children at exactly these tree addresses. An address
    /// is the child-index path from the root in the engine's
    /// deterministic order: `[2, 0]` is the first child of the root's
    /// third child.
    At(Vec<Vec<u64>>),
    /// Publish every `n`-th spawn opportunity a worker encounters (a
    /// per-worker counter over branch-child visits).
    EveryNth(u64),
}

/// A deterministic steal script, for tests and CI
/// ([`Enumeration::with_steal_schedule`](crate::solver::Enumeration::with_steal_schedule)).
///
/// Where the default policy publishes subtrees only while the pool is
/// hungry (a timing-dependent decision), a schedule publishes exactly
/// the children its rules name — the spawned-task *set* depends only on
/// the enumeration tree, so steal-path tests replay identically on any
/// machine, including single-core CI containers. Scripted runs widen
/// the shard channels (see
/// [`SCRIPTED_CHANNEL_CAPACITY`](crate::solver::SCRIPTED_CHANNEL_CAPACITY))
/// so even adversarial scripts that spawn far more subtrees than any
/// worker is idle for cannot wedge the pipeline; that sizing makes
/// schedules a **test-only** instrument, not a production policy.
#[derive(Clone, Debug, Default)]
pub struct StealSchedule {
    rules: Vec<StealRule>,
    pin_claims: bool,
    observer: Option<StealObserver>,
}

impl StealSchedule {
    /// An empty schedule (no rule matches, nothing is published).
    pub fn new() -> Self {
        StealSchedule::default()
    }

    /// Adds a raw rule.
    pub fn rule(mut self, rule: StealRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Adds a [`StealRule::DepthRange`] rule.
    pub fn steal_at_depths(self, min: u32, max: u32) -> Self {
        self.rule(StealRule::DepthRange { min, max })
    }

    /// Adds a [`StealRule::At`] rule for one tree address.
    pub fn steal_at(self, addr: &[u64]) -> Self {
        self.rule(StealRule::At(vec![addr.to_vec()]))
    }

    /// Adds a [`StealRule::EveryNth`] rule.
    pub fn steal_every(self, n: u64) -> Self {
        self.rule(StealRule::EveryNth(n))
    }

    /// Pins each published task `t` to worker `t mod k` — only that
    /// worker's steal loop may claim it, and the coordinator's inline
    /// fallback is disabled, so which worker retires which subtree is
    /// fully determined by the script (the skew-regression tests rely on
    /// this).
    pub fn pin_claims(mut self, on: bool) -> Self {
        self.pin_claims = on;
        self
    }

    /// Reports per-worker subtree retirements into `observer`.
    pub fn observe(mut self, observer: &StealObserver) -> Self {
        self.observer = Some(observer.clone());
        self
    }

    pub(crate) fn pins_claims(&self) -> bool {
        self.pin_claims
    }

    pub(crate) fn observer(&self) -> Option<&StealObserver> {
        self.observer.as_ref()
    }

    /// Whether the child at `addr` (depth `addr.len()`), the worker's
    /// `chance`-th spawn opportunity, should be published.
    pub(crate) fn matches(&self, addr: &[u64], chance: u64) -> bool {
        let depth = addr.len() as u32;
        self.rules.iter().any(|rule| match rule {
            StealRule::DepthRange { min, max } => (*min..=*max).contains(&depth),
            StealRule::At(addrs) => addrs.iter().any(|a| a == addr),
            StealRule::EveryNth(n) => *n > 0 && chance.is_multiple_of(*n),
        })
    }
}

/// Shared per-worker retirement counts, filled in by a scripted run via
/// [`StealSchedule::observe`]: slot `i` counts the subtrees worker `i`
/// retired — owned root children plus claimed steal-pool tasks. The
/// skew-hazard regression asserts every slot is ≥ 1 on a star root.
#[derive(Clone, Debug, Default)]
pub struct StealObserver {
    counts: Arc<Mutex<Vec<u64>>>,
}

impl StealObserver {
    /// A fresh observer with all counts zero.
    pub fn new() -> Self {
        StealObserver::default()
    }

    /// The per-worker retirement counts observed so far (index =
    /// worker). Read it after the run completes.
    pub fn retired(&self) -> Vec<u64> {
        self.counts
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    pub(crate) fn note(&self, worker: usize) {
        let mut counts = self.counts.lock().unwrap_or_else(|e| e.into_inner());
        if counts.len() <= worker {
            counts.resize(worker + 1, 0);
        }
        counts[worker] += 1;
    }
}

/// One published subtree: where it sits in the enumeration tree, the
/// checkpoint to replay, and the channel its executor delivers on.
pub(crate) struct PendingTask<Item, M> {
    /// Pool-wide task id (also the pinning key: `id % k`).
    pub id: u64,
    /// Tree address of the subtree root (child-index path from the
    /// engine root; `len()` is the engine depth to resume at).
    pub addr: Vec<u64>,
    /// The replayable checkpoint.
    pub record: SubtreeRecord<Item>,
    /// Sending half of the subtree's delivery channel (the receiving
    /// half went into the spawner's `Spawned` marker).
    pub tx: Sender<ShardMsg<M>>,
}

struct PoolState<Item, M> {
    pending: BoundedFrameDeque<PendingTask<Item, M>>,
    /// Published but not yet retired tasks (pending + claimed-and-running).
    outstanding: usize,
    /// Workers still in their root phase (they will publish no more
    /// tasks once this reaches zero).
    root_active: usize,
    /// Workers blocked in [`StealPool::take`].
    waiters: usize,
    next_id: u64,
    closed: bool,
}

/// The shared hand-off point of one work-stealing sharded run.
///
/// Lifecycle: every worker holds the pool through its root phase
/// (`root_active` starts at `k`); [`Self::offer`] publishes checkpoints
/// into the bounded pending deque; idle workers block in [`Self::take`];
/// the pool closes itself — waking every waiter — once all root phases
/// are done and every published task is retired, and the coordinator's
/// shutdown guard closes it unconditionally when the merge ends early
/// (limit, deadline, failure), so no worker can outlive the merge.
pub(crate) struct StealPool<Item, M> {
    state: Mutex<PoolState<Item, M>>,
    hungry: Condvar,
    threads: u64,
    pin_claims: bool,
    task_channel_capacity: usize,
}

impl<Item, M> StealPool<Item, M> {
    pub fn new(
        threads: usize,
        pending_capacity: usize,
        task_channel_capacity: usize,
        pin_claims: bool,
    ) -> Self {
        StealPool {
            state: Mutex::new(PoolState {
                pending: BoundedFrameDeque::new(pending_capacity),
                outstanding: 0,
                root_active: threads,
                waiters: 0,
                next_id: 0,
                closed: false,
            }),
            hungry: Condvar::new(),
            threads: threads as u64,
            pin_claims,
            task_channel_capacity,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, PoolState<Item, M>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The adaptive spawn policy's cheap pre-check: publish only while
    /// someone is idle (a waiter) or the pool is underfilled (fewer
    /// outstanding tasks than workers), and the pending deque has room.
    pub fn wants_task(&self) -> bool {
        let s = self.lock();
        !s.closed
            && !s.pending.is_full()
            && (s.waiters > 0 || (s.outstanding as u64) < self.threads)
    }

    /// Publishes a checkpoint. On success returns the task id and the
    /// receiving half of its delivery channel (to embed in the spawner's
    /// `Spawned` marker); on `Err` the pending deque was full or the
    /// pool closed — the record comes back so the spawner can descend
    /// locally (a counted
    /// [`steal_failure`](crate::stats::EnumStats::steal_failures)).
    pub fn offer(
        &self,
        addr: Vec<u64>,
        record: SubtreeRecord<Item>,
    ) -> Result<(u64, Receiver<ShardMsg<M>>), SubtreeRecord<Item>> {
        let mut s = self.lock();
        if s.closed || s.pending.is_full() {
            return Err(record);
        }
        let id = s.next_id;
        s.next_id += 1;
        let (tx, rx) = bounded(self.task_channel_capacity);
        let task = PendingTask {
            id,
            addr,
            record,
            tx,
        };
        if let Err(task) = s.pending.offer(task) {
            // Unreachable (fullness checked above under the same lock),
            // but degrade to a refusal rather than losing the frame.
            return Err(task.record);
        }
        s.outstanding += 1;
        drop(s);
        if self.pin_claims {
            // The task is claimable only by worker `id % k`: wake
            // everyone so the owner (wherever it sleeps) sees it.
            self.hungry.notify_all();
        } else {
            self.hungry.notify_one();
        }
        Ok((id, rx))
    }

    /// Blocks until a task is claimable (or the pool closes → `None`).
    /// Under pinned claims, worker `w` only ever receives tasks with
    /// `id % k == w`.
    pub fn take(&self, worker: u64) -> Option<PendingTask<Item, M>> {
        let mut s = self.lock();
        loop {
            let claimed = if self.pin_claims {
                let threads = self.threads;
                s.pending.take_first(|t| t.id % threads == worker)
            } else {
                s.pending.take_front()
            };
            if let Some(task) = claimed {
                return Some(task);
            }
            if s.closed {
                return None;
            }
            s.waiters += 1;
            s = self.hungry.wait(s).unwrap_or_else(|e| e.into_inner());
            s.waiters -= 1;
        }
    }

    /// The coordinator's claim of a still-unclaimed task whose `Spawned`
    /// marker reached the merge cursor: rather than blocking on a
    /// channel nobody is filling, the merge replays the subtree inline.
    /// Returns `None` when the task was already claimed by a worker —
    /// or always, under pinned claims (the script decides who executes).
    pub fn claim_for_merge(&self, id: u64) -> Option<PendingTask<Item, M>> {
        if self.pin_claims {
            return None;
        }
        self.lock().pending.take_first(|t| t.id == id)
    }

    /// Marks one claimed task retired (called by whoever executed it).
    pub fn task_done(&self) {
        let mut s = self.lock();
        s.outstanding -= 1;
        self.maybe_close(&mut s);
    }

    /// Marks one worker's root phase complete.
    pub fn root_done(&self) {
        let mut s = self.lock();
        s.root_active -= 1;
        self.maybe_close(&mut s);
    }

    fn maybe_close(&self, s: &mut PoolState<Item, M>) {
        if !s.closed && s.root_active == 0 && s.outstanding == 0 {
            s.closed = true;
            self.hungry.notify_all();
        }
    }

    /// Closes the pool unconditionally (early merge termination):
    /// waiters wake and drain, pending tasks are dropped — their
    /// `Spawned` markers will never be consumed, which is fine because
    /// the merge that would have consumed them is gone.
    pub fn shutdown(&self) {
        let mut s = self.lock();
        s.closed = true;
        self.hungry.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use steiner_graph::EdgeId;

    fn record() -> SubtreeRecord<EdgeId> {
        SubtreeRecord {
            vertices: Vec::new(),
            items: Vec::new(),
            meta: 0,
        }
    }

    type Pool = StealPool<EdgeId, ()>;

    #[test]
    fn schedule_rules_match_addresses_depths_and_counters() {
        let s = StealSchedule::new()
            .steal_at_depths(2, 3)
            .steal_at(&[0, 1, 4])
            .steal_every(10);
        assert!(s.matches(&[5, 9], 1), "depth 2 in range");
        assert!(s.matches(&[5, 9, 0], 1), "depth 3 in range");
        assert!(!s.matches(&[5], 1), "depth 1 out of range");
        assert!(!s.matches(&[0, 1, 4, 7], 1), "prefix is not the address");
        assert!(s.matches(&[0, 1, 4], 3), "exact address");
        assert!(s.matches(&[9, 9, 9, 9], 20), "every 10th opportunity");
        assert!(!s.matches(&[9, 9, 9, 9], 21));
        assert!(!StealSchedule::new().matches(&[0], 0), "empty: never");
    }

    #[test]
    fn pool_closes_when_roots_and_tasks_drain() {
        let pool: Pool = Pool::new(2, 4, 4, false);
        assert!(pool.wants_task(), "underfilled pool is hungry");
        let (id0, _rx0) = pool.offer(vec![0, 1], record()).unwrap();
        let (id1, _rx1) = pool.offer(vec![0, 2], record()).unwrap();
        assert_eq!((id0, id1), (0, 1), "ids are sequential");
        pool.root_done();
        pool.root_done();
        // Still open: two tasks outstanding.
        let t = pool.take(0).expect("a pending task");
        assert_eq!(t.id, 0, "FIFO claim");
        pool.task_done();
        let t = pool.take(1).expect("the second task");
        assert_eq!(t.id, 1);
        pool.task_done();
        // Closed now: take() returns None instead of blocking.
        assert!(pool.take(0).is_none());
        assert!(!pool.wants_task(), "closed pool wants nothing");
        assert!(
            pool.offer(vec![9], record()).is_err(),
            "closed pool refuses"
        );
    }

    #[test]
    fn pool_refuses_at_pending_capacity() {
        let pool: Pool = Pool::new(1, 1, 4, false);
        let _keep = pool.offer(vec![0], record()).unwrap();
        assert!(!pool.wants_task());
        assert!(pool.offer(vec![1], record()).is_err(), "deque full");
    }

    #[test]
    fn pinned_claims_route_by_residue_and_disable_merge_claims() {
        let pool: Pool = Pool::new(2, 8, 4, true);
        let (id0, _rx0) = pool.offer(vec![0], record()).unwrap();
        let (id1, _rx1) = pool.offer(vec![1], record()).unwrap();
        assert_eq!((id0, id1), (0, 1));
        assert!(pool.claim_for_merge(0).is_none(), "pinning disables inline");
        let t = pool.take(1).expect("worker 1 claims id 1");
        assert_eq!(t.id, 1, "only the pinned residue is visible");
        let t = pool.take(0).expect("worker 0 claims id 0");
        assert_eq!(t.id, 0);
    }

    #[test]
    fn shutdown_wakes_blocked_takers() {
        let pool: std::sync::Arc<Pool> = std::sync::Arc::new(Pool::new(1, 4, 4, false));
        let taker = {
            let pool = std::sync::Arc::clone(&pool);
            std::thread::spawn(move || pool.take(0))
        };
        // The taker blocks (nothing pending, pool open); shutdown must
        // release it with None.
        std::thread::sleep(std::time::Duration::from_millis(20));
        pool.shutdown();
        assert!(taker.join().unwrap().is_none());
    }

    #[test]
    fn observer_grows_and_counts() {
        let obs = StealObserver::new();
        obs.note(2);
        obs.note(0);
        obs.note(2);
        assert_eq!(obs.retired(), vec![1, 0, 2]);
    }
}
