//! The alloc-audit hard gate (feature `alloc-audit`).
//!
//! PR 2's Theorem-17 engine promises a zero-allocation steady state: after
//! `Prepared::new` builds the scratch pools, `classify`/`branch`/
//! `descend`/`retract_frame` reuse them and never touch the heap. The
//! engine self-reports this through [`EnumStats::scratch_allocs`] (scratch
//! growth observed by [`ScratchUsage`] accounting), and `steiner-lint`'s
//! `hotpath-alloc` pass enforces it statically. This test closes the loop
//! dynamically, two ways:
//!
//! 1. **Hard gate** — every conformance workload must finish with
//!    `scratch_allocs == 0`. Any regression that grows scratch mid-search
//!    fails the build.
//! 2. **Linear envelope** — a counting `#[global_allocator]` measures the
//!    *true* number of heap allocations across a full enumeration, which
//!    must stay within a generous linear budget in `n + m + solutions`
//!    (setup plus per-solution emission; anything super-linear means a
//!    hot-path allocation slipped past both the lint and the stats).
//!
//! Gated behind `--features alloc-audit` because a counting global
//! allocator taxes every other test in the binary; CI runs it as a
//! dedicated step.

#![cfg(feature = "alloc-audit")]

use std::alloc::{GlobalAlloc, Layout, System};
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use steiner_core::{
    DirectedSteinerTree, EnumStats, Enumeration, MinimalSteinerProblem, SteinerForest, SteinerTree,
    TerminalSteinerTree,
};
use steiner_graph::{generators, VertexId};

/// Counts every heap allocation made while [`ARMED`], delegating the
/// actual memory management to [`System`] unchanged.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ARMED: AtomicBool = AtomicBool::new(false);

// SAFETY: every method delegates verbatim to the System allocator, so the
// GlobalAlloc contract (layout fidelity, uniqueness of live pointers) is
// exactly System's; the counter is a side effect on atomics and never
// touches the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: caller's layout is forwarded unchanged to System.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: caller's layout forwarded unchanged to System.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: ptr/layout come from a matching System.alloc above.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: ptr/layout come from a matching System.alloc above.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: ptr/layout come from a matching System.alloc above;
    // new_size is forwarded unchanged.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: ptr/layout come from a matching System.alloc above;
        // new_size forwarded unchanged.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Serializes the armed sections so the two tests never count each
/// other's allocations.
static GATE: Mutex<()> = Mutex::new(());

/// Runs one problem to completion and returns its stats plus the number
/// of true heap allocations the run performed (builder included).
fn audited_run<P: MinimalSteinerProblem + Send>(problem: P) -> (EnumStats, u64)
where
    P::Item: Send,
{
    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    let result = Enumeration::new(problem).for_each(|_| ControlFlow::Continue(()));
    ARMED.store(false, Ordering::SeqCst);
    let stats = result.expect("audit workloads are feasible instances");
    (stats, ALLOCS.load(Ordering::SeqCst))
}

struct Workload {
    name: &'static str,
    stats: EnumStats,
    allocs: u64,
    size: u64,
}

/// The conformance workloads: one structured instance per paper problem,
/// each with a nontrivial solution count.
fn run_workloads() -> Vec<Workload> {
    let mut out = Vec::new();

    let grid = generators::grid(4, 5);
    let corners: Vec<VertexId> = [0usize, 4, 15, 19]
        .iter()
        .map(|&v| VertexId::new(v))
        .collect();
    let (stats, allocs) = audited_run(SteinerTree::new(&grid, &corners));
    out.push(Workload {
        name: "steiner-tree/grid-4x5",
        stats,
        allocs,
        size: (grid.num_vertices() + grid.num_edges()) as u64,
    });

    let theta = generators::theta_chain(3, 3);
    let ends: Vec<VertexId> = vec![VertexId::new(0), VertexId::new(theta.num_vertices() - 1)];
    let (stats, allocs) = audited_run(SteinerTree::new(&theta, &ends));
    out.push(Workload {
        name: "steiner-tree/theta-chain-3x3",
        stats,
        allocs,
        size: (theta.num_vertices() + theta.num_edges()) as u64,
    });

    let g = generators::grid(3, 4);
    let sets: Vec<Vec<VertexId>> = vec![
        vec![VertexId::new(0), VertexId::new(3)],
        vec![VertexId::new(8), VertexId::new(11)],
    ];
    let (stats, allocs) = audited_run(SteinerForest::new(&g, &sets));
    out.push(Workload {
        name: "steiner-forest/grid-3x4",
        stats,
        allocs,
        size: (g.num_vertices() + g.num_edges()) as u64,
    });

    let corners34: Vec<VertexId> = [0usize, 3, 8, 11]
        .iter()
        .map(|&v| VertexId::new(v))
        .collect();
    let (stats, allocs) = audited_run(TerminalSteinerTree::new(&g, &corners34));
    out.push(Workload {
        name: "terminal-steiner-tree/grid-3x4",
        stats,
        allocs,
        size: (g.num_vertices() + g.num_edges()) as u64,
    });

    let (d, root) = generators::layered_digraph(3, 3);
    let last_layer: Vec<VertexId> = (7..10).map(VertexId::new).collect();
    let (stats, allocs) = audited_run(DirectedSteinerTree::new(&d, root, &last_layer));
    out.push(Workload {
        name: "directed-steiner-tree/layered-3x3",
        stats,
        allocs,
        size: (d.num_vertices() + d.num_arcs()) as u64,
    });

    out
}

/// Hard gate: the steady-state search never grows its scratch. A single
/// counted scratch allocation on any conformance workload fails the build.
#[test]
fn scratch_allocs_are_zero_on_conformance_workloads() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    for w in run_workloads() {
        assert!(
            w.stats.solutions > 0,
            "{}: audit workload must exercise the search (no solutions found)",
            w.name
        );
        assert_eq!(
            w.stats.scratch_allocs, 0,
            "{}: Theorem-17 zero-allocation invariant violated ({} scratch allocs over {} solutions)",
            w.name, w.stats.scratch_allocs, w.stats.solutions
        );
    }
}

/// Linear envelope: true heap traffic for a whole run (preprocessing,
/// pool construction, emission) stays within a generous linear budget in
/// instance size + solution count. Catches hot-path allocations that
/// bypass the scratch accounting entirely.
#[test]
fn total_allocations_stay_linear() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    for w in run_workloads() {
        let budget = 256 * (w.size + w.stats.solutions) + 4096;
        assert!(
            w.allocs <= budget,
            "{}: {} heap allocations exceeds the linear envelope {} \
             (size {}, solutions {}) — a per-node allocation has crept into the search",
            w.name,
            w.allocs,
            budget,
            w.size,
            w.stats.solutions
        );
    }
}
