//! Query descriptions, per-query execution options, and outcomes.
//!
//! A [`Query`] names one of the four paper problems plus its
//! instance-specific inputs; the graph itself lives in the engine, so a
//! query is a small, cheap-to-clone value. [`QueryOptions`] carries the
//! per-query execution knobs (solution limit, wall-clock deadline,
//! shard count, output queue) that map one-to-one onto the
//! [`Enumeration`](steiner_core::Enumeration) builder. A completed query
//! resolves a [`Ticket`] into a [`QueryOutcome`].

use std::time::{Duration, Instant};

use steiner_core::{EnumStats, SteinerError};
use steiner_graph::{ArcId, EdgeId, VertexId};

/// One enumeration request against the engine's graph: a paper problem
/// plus its instance-specific inputs (terminals, terminal sets, root).
///
/// The graph (and, for [`Query::DirectedSteinerTree`], the directed
/// view) is owned by the engine — see
/// [`EnumerationEngine`](crate::EnumerationEngine) — so queries are
/// small values that tenants construct freely.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Query {
    /// Minimal Steiner trees for one terminal set (§4, Theorem 17).
    SteinerTree {
        /// The terminal set `W`.
        terminals: Vec<VertexId>,
    },
    /// Minimal Steiner forests for a family of terminal sets (§5,
    /// Theorem 23).
    SteinerForest {
        /// The terminal sets `W₁, …, W_q`.
        sets: Vec<Vec<VertexId>>,
    },
    /// Minimal terminal Steiner trees — terminals must be leaves (§5.1,
    /// Theorem 29).
    TerminalSteinerTree {
        /// The terminal set `W`.
        terminals: Vec<VertexId>,
    },
    /// Minimal directed Steiner trees rooted at `root` (§5.2, Theorem
    /// 34). Requires an engine built with a directed graph view;
    /// otherwise the query is rejected with
    /// [`SteinerError::Unsupported`].
    DirectedSteinerTree {
        /// The root every terminal must be reachable from.
        root: VertexId,
        /// The terminal set `W`.
        terminals: Vec<VertexId>,
    },
}

impl Query {
    /// Whether this query needs the engine's directed graph view.
    pub fn is_directed(&self) -> bool {
        matches!(self, Query::DirectedSteinerTree { .. })
    }
}

/// Per-query execution options, mapping onto the
/// [`Enumeration`](steiner_core::Enumeration) builder front-ends.
///
/// The default runs sequentially, unbounded, without a deadline or
/// output queue — exactly `Enumeration::new(p).cached(..)`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryOptions {
    /// Stop after this many solutions
    /// ([`Enumeration::with_limit`](steiner_core::Enumeration::with_limit)).
    pub limit: Option<u64>,
    /// Abort once this wall-clock instant passes
    /// ([`Enumeration::with_deadline`](steiner_core::Enumeration::with_deadline)).
    /// The clock keeps running while the query waits in the tenant
    /// queue: a deadline is a promise to the *caller*, not to the
    /// worker. A query whose deadline has already passed when a worker
    /// picks it up resolves immediately to
    /// [`SteinerError::DeadlineExceeded`] with an empty prefix.
    pub deadline: Option<Instant>,
    /// Shard the run across this many worker threads
    /// ([`Enumeration::with_threads`](steiner_core::Enumeration::with_threads));
    /// `0` and `1` both mean sequential. The delivered stream is
    /// byte-identical either way.
    pub threads: usize,
    /// Route emissions through the Theorem-20 output queue
    /// ([`Enumeration::with_default_queue`](steiner_core::Enumeration::with_default_queue))
    /// for a worst-case (rather than amortized) delay bound.
    pub queue: bool,
    /// Second-level subtree work stealing for sharded runs
    /// ([`Enumeration::with_stealing`](steiner_core::Enumeration::with_stealing)).
    /// `None` (the default) enables stealing whenever `threads > 1` —
    /// pooled queries should not collapse to one worker on skewed
    /// roots; `Some(false)` pins the root-only A/B reference path.
    /// Ignored for sequential runs.
    pub stealing: Option<bool>,
    /// Word-packed path generation
    /// ([`Enumeration::with_packed_frontiers`](steiner_core::Enumeration::with_packed_frontiers)).
    /// `None` (the default) keeps packing on — the bitset `F-STP`
    /// frontiers and cross-branch BFS-cache reuse are the serving
    /// default; `Some(false)` pins the per-vertex reference enumerator
    /// kept as the A/B conformance path. The delivered stream is
    /// byte-identical either way.
    pub packed_frontiers: Option<bool>,
}

impl QueryOptions {
    /// Stop after `n` solutions.
    pub fn limit(mut self, n: u64) -> Self {
        self.limit = Some(n);
        self
    }

    /// Abort once `deadline` passes (see [`Self::deadline`]).
    pub fn deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// [`Self::deadline`] measured from now.
    pub fn timeout(self, timeout: Duration) -> Self {
        // lint:allow(clock) deadline(timeout) anchors the caller's promise to the service clock
        let deadline = Instant::now() + timeout;
        self.deadline(deadline)
    }

    /// Shard the run across `k` worker threads.
    pub fn threads(mut self, k: usize) -> Self {
        self.threads = k;
        self
    }

    /// Route emissions through the Theorem-20 output queue.
    pub fn queued(mut self) -> Self {
        self.queue = true;
        self
    }

    /// Explicitly enable or disable subtree work stealing for sharded
    /// runs (see [`Self::stealing`]).
    pub fn stealing(mut self, on: bool) -> Self {
        self.stealing = Some(on);
        self
    }

    /// Explicitly enable or disable word-packed path generation (see
    /// [`Self::packed_frontiers`]).
    pub fn packed_frontiers(mut self, on: bool) -> Self {
        self.packed_frontiers = Some(on);
        self
    }
}

/// The solutions delivered by one query, in the engine's deterministic
/// emission order.
///
/// Undirected problems report sorted edge-id sets; the directed problem
/// reports sorted arc-id sets. The two never mix within one query, so
/// the outcome carries one homogeneous batch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolutionItems {
    /// Solutions of an undirected problem: sorted [`EdgeId`] sets.
    Edges(Vec<Vec<EdgeId>>),
    /// Solutions of the directed problem: sorted [`ArcId`] sets.
    Arcs(Vec<Vec<ArcId>>),
}

impl SolutionItems {
    /// The number of delivered solutions.
    pub fn len(&self) -> usize {
        match self {
            SolutionItems::Edges(v) => v.len(),
            SolutionItems::Arcs(v) => v.len(),
        }
    }

    /// Whether no solutions were delivered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The edge-id sets of an undirected query, or `None` for a
    /// directed one.
    pub fn edges(&self) -> Option<&[Vec<EdgeId>]> {
        match self {
            SolutionItems::Edges(v) => Some(v),
            SolutionItems::Arcs(_) => None,
        }
    }

    /// The arc-id sets of a directed query, or `None` for an undirected
    /// one.
    pub fn arcs(&self) -> Option<&[Vec<ArcId>]> {
        match self {
            SolutionItems::Arcs(v) => Some(v),
            SolutionItems::Edges(_) => None,
        }
    }
}

/// Everything a finished query hands back to its submitter.
#[derive(Clone, Debug)]
pub struct QueryOutcome {
    /// The delivered solutions, in the engine's deterministic order.
    ///
    /// On `status == Ok(())` this is the complete answer; on
    /// [`SteinerError::DeadlineExceeded`] it is a valid *prefix* of the
    /// answer; on any other error it is empty.
    pub solutions: SolutionItems,
    /// The run's counters ([`EnumStats`]), including cache hit/miss and
    /// the pressure the run exerted on the shared store
    /// ([`EnumStats::evicted_entries`] / [`EnumStats::compactions`]).
    pub stats: EnumStats,
    /// `Ok(())` for a complete answer; a typed [`SteinerError`]
    /// otherwise. [`SteinerError::DeadlineExceeded`] still carries the
    /// valid prefix in [`Self::solutions`].
    pub status: Result<(), SteinerError>,
}

impl QueryOutcome {
    /// Whether the query ran to completion.
    pub fn is_complete(&self) -> bool {
        self.status.is_ok()
    }
}

/// A claim on one admitted query's future [`QueryOutcome`].
///
/// Returned by [`Session::submit`](crate::Session::submit) once the
/// query passed admission control. The engine guarantees every admitted
/// query resolves its ticket — even during shutdown, queued work is
/// drained, not dropped.
pub struct Ticket {
    pub(crate) rx: crossbeam_channel::Receiver<QueryOutcome>,
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket").finish_non_exhaustive()
    }
}

impl Ticket {
    /// Blocks until the query finishes and returns its outcome.
    pub fn wait(self) -> QueryOutcome {
        self.rx
            .recv()
            .expect("engine workers resolve every admitted ticket")
    }

    /// Returns the outcome if the query already finished, or `None`
    /// while it is still queued or running (non-blocking).
    pub fn try_wait(&self) -> Option<QueryOutcome> {
        self.rx.try_recv().ok()
    }
}
