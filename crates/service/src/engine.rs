//! The long-lived engine: worker pool, admission control, fair
//! scheduling, live graph mutation, and warm-restart persistence.
//!
//! See the [crate docs](crate) for the architecture overview and an
//! end-to-end example.

use std::collections::{HashMap, VecDeque};
use std::ops::{ControlFlow, Deref};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard};
use std::thread::JoinHandle;
use std::time::Instant;

use steiner_core::snapshot::paper_problem_kinds;
use steiner_core::{
    CacheStats, DirectedSteinerTree, EnumStats, Enumeration, MinimalSteinerProblem, ResultCache,
    SnapshotError, SnapshotItem, SteinerError, SteinerForest, SteinerTree, TerminalSteinerTree,
};
use steiner_graph::epoch::{ArcMutation, EpochDigraph, EpochGraph, GraphMutation};
use steiner_graph::{ArcId, DiGraph, EdgeId, GraphError, UndirectedGraph};

use crate::query::{Query, QueryOptions, QueryOutcome, SolutionItems, Ticket};
use crate::session::Session;

/// Rejection reason for directed queries on an engine built without a
/// directed graph view.
pub(crate) const NO_DIGRAPH: &str =
    "directed query on an engine built without a directed graph view";

/// Rejection reason for submissions after the engine started shutting
/// down.
const SHUT_DOWN: &str = "engine is shut down";

/// Stride-scheduling quantum: a tenant of weight `w` advances its pass
/// by `STRIDE / w` per dispatched query, so dispatch frequency is
/// proportional to weight.
const STRIDE: u64 = 1 << 20;

/// Leading magic of the engine-level snapshot frame ("STeiner
/// SerVice"). Version-1 frames had no magic (they began with a raw
/// length), so its absence identifies a v1 blob.
const SERVICE_MAGIC: [u8; 4] = *b"STSV";

/// Current engine-frame version. Version 2 added the magic, this
/// version field, and the serving-epoch tag; readers reject anything
/// else with [`SnapshotError::VersionSkew`].
const SERVICE_VERSION: u32 = 2;

/// Sizing and admission knobs for an [`EnumerationEngine`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads executing queries (at least 1). Each query runs
    /// on one worker; a query may additionally shard itself via
    /// [`QueryOptions::threads`](crate::QueryOptions::threads).
    pub workers: usize,
    /// Global cap on admitted-but-unfinished queries (queued plus
    /// running, across all tenants). A submission beyond the cap is
    /// rejected with [`SteinerError::AdmissionRejected`] — the engine
    /// never queues unboundedly.
    pub max_in_flight: usize,
    /// Per-tenant cap on *queued* (not yet dispatched) queries. A
    /// tenant at its cap is rejected with
    /// [`SteinerError::AdmissionRejected`] even when the global pool
    /// has room, so one tenant cannot squat the whole pool.
    pub tenant_queue_depth: usize,
    /// Byte capacity for each of the engine's two result caches
    /// ([`ResultCache::with_capacity_bytes`]); `None` uses the cache's
    /// default capacity.
    pub cache_capacity_bytes: Option<u64>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 2,
            max_in_flight: 32,
            tenant_queue_depth: 8,
            cache_capacity_bytes: None,
        }
    }
}

/// What one mutation batch did to the engine, returned by
/// [`EnumerationEngine::apply_mutations`] /
/// [`EnumerationEngine::apply_arc_mutations`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MutationOutcome {
    /// The serving epoch *after* the batch: every query admitted from
    /// now on runs against the mutated graph.
    pub epoch: u64,
    /// Canonical region ids (minimum vertex id per connected
    /// component, pre- or post-mutation) whose fingerprint changed.
    pub touched_regions: Vec<u32>,
    /// Cache entries that survived the batch because their region
    /// signature avoided every touched region.
    pub entries_retained: u64,
    /// Cache entries reclaimed because their region signature
    /// intersected a touched region.
    pub entries_invalidated: u64,
}

/// One admitted, not-yet-executed query.
struct Job {
    query: Query,
    opts: QueryOptions,
    /// The serving epoch the query was admitted under. A job only
    /// dispatches while the engine is at exactly this epoch, so its
    /// stream is byte-identical to a one-shot run against the graph as
    /// of admission.
    epoch: u64,
    done: crossbeam_channel::Sender<QueryOutcome>,
}

/// Per-tenant scheduler state and lifetime counters.
struct TenantState {
    name: String,
    weight: u32,
    /// Stride-scheduling pass: the tenant with the smallest pass (ties
    /// broken by name) is dispatched next.
    pass: u64,
    queue: VecDeque<Job>,
    /// [`EnumStats::merge`]-fold of every completed query's counters.
    stats: EnumStats,
    completed: u64,
    rejected: u64,
    deadline_exceeded: u64,
}

/// State behind the engine's scheduler lock.
struct Scheduler {
    tenants: Vec<TenantState>,
    by_name: HashMap<String, usize>,
    /// Admitted and not yet finished (queued + running), all tenants.
    in_flight: usize,
    /// The serving epoch: queries admitted at this epoch may dispatch.
    epoch: u64,
    /// The epoch new submissions are admitted under. Equals `epoch`
    /// except while a mutation batch is fencing, when it is
    /// `epoch + 1` — submissions made during the fence run against the
    /// *mutated* graph.
    target_epoch: u64,
    /// Jobs admitted at `epoch`, queued or running. A mutation batch
    /// waits for this to reach zero before touching the graph.
    current_unfinished: usize,
    /// Jobs admitted at `target_epoch` while a fence is up; they
    /// become `current_unfinished` when the mutation commits.
    next_unfinished: usize,
    /// [`EnumStats`] fold of every mutation batch's retained /
    /// invalidated entry counts.
    mutation_stats: EnumStats,
    paused: bool,
    shutdown: bool,
}

impl Scheduler {
    /// Picks the queued job of the tenant with the minimum (pass, name)
    /// and advances that tenant's pass — stride-scheduled weighted
    /// round-robin, deterministic given the queue states. Jobs admitted
    /// under a future epoch (while a mutation fence is up) are held
    /// back; per-tenant queues are FIFO and admission epochs are
    /// monotone, so gating on the queue front is exact.
    fn next_job(&mut self) -> Option<(usize, Job)> {
        let mut best: Option<usize> = None;
        for i in 0..self.tenants.len() {
            let dispatchable = self.tenants[i]
                .queue
                .front()
                .is_some_and(|j| j.epoch == self.epoch);
            if !dispatchable {
                continue;
            }
            best = Some(match best {
                None => i,
                Some(b) => {
                    let (ti, tb) = (&self.tenants[i], &self.tenants[b]);
                    if (ti.pass, ti.name.as_str()) < (tb.pass, tb.name.as_str()) {
                        i
                    } else {
                        b
                    }
                }
            });
        }
        let i = best?;
        let weight = u64::from(self.tenants[i].weight.max(1));
        self.tenants[i].pass = self.tenants[i].pass.saturating_add(STRIDE / weight);
        let job = self.tenants[i]
            .queue
            .pop_front()
            .expect("queue checked non-empty");
        Some((i, job))
    }

    /// The smallest pass among registered tenants — the starting pass
    /// for a newcomer, so joining late never grants catch-up credit.
    fn min_pass(&self) -> u64 {
        self.tenants.iter().map(|t| t.pass).min().unwrap_or(0)
    }

    /// Whether any tenant still has a queued job (dispatchable or
    /// epoch-gated). Workers must not exit while gated jobs remain: the
    /// in-progress mutation that gated them will commit and make them
    /// dispatchable.
    fn any_queued(&self) -> bool {
        self.tenants.iter().any(|t| !t.queue.is_empty())
    }
}

/// State shared between the engine handle, its sessions, and the worker
/// threads.
pub(crate) struct Shared {
    graph: RwLock<EpochGraph>,
    digraph: Option<RwLock<EpochDigraph>>,
    config: EngineConfig,
    edge_cache: ResultCache<EdgeId>,
    arc_cache: ResultCache<ArcId>,
    sched: Mutex<Scheduler>,
    work_ready: Condvar,
    /// Serializes mutation batches against each other, so at most one
    /// fence is up at a time and `target_epoch` never runs ahead of
    /// `epoch` by more than one.
    mutation_lock: Mutex<()>,
}

impl Shared {
    /// Scheduler lock, recovering from a poisoned mutex (a worker panic
    /// must not wedge the whole engine).
    fn lock(&self) -> MutexGuard<'_, Scheduler> {
        self.sched.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Read access to the serving undirected graph.
    fn read_graph(&self) -> RwLockReadGuard<'_, EpochGraph> {
        self.graph.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Read access to the serving directed view, when present.
    fn read_digraph(&self) -> Option<RwLockReadGuard<'_, EpochDigraph>> {
        self.digraph
            .as_ref()
            .map(|d| d.read().unwrap_or_else(|e| e.into_inner()))
    }
}

/// A lifetime snapshot of one tenant's scheduler state and counters.
#[derive(Clone, Debug)]
pub struct TenantReport {
    /// The tenant's name (unique within the engine).
    pub name: String,
    /// The tenant's scheduling weight (dispatch share).
    pub weight: u32,
    /// Queries queued right now (admitted, not yet dispatched).
    pub queued: usize,
    /// Queries completed over the engine's lifetime (including
    /// deadline-expired ones — those delivered a valid prefix).
    pub completed: u64,
    /// Submissions refused by admission control.
    pub rejected: u64,
    /// Completed queries that hit their deadline.
    pub deadline_exceeded: u64,
    /// [`EnumStats::merge`]-fold of every completed query's counters.
    pub stats: EnumStats,
}

/// Shared read access to the engine's serving undirected graph,
/// returned by [`EnumerationEngine::graph`]. Derefs to the
/// [`UndirectedGraph`]; holding it blocks mutation batches (they take
/// the write side), so drop it promptly.
pub struct GraphRef<'a>(RwLockReadGuard<'a, EpochGraph>);

impl GraphRef<'_> {
    /// The graph's mutation epoch (bumped once per committed batch).
    pub fn epoch(&self) -> u64 {
        self.0.epoch()
    }
}

impl Deref for GraphRef<'_> {
    type Target = UndirectedGraph;
    fn deref(&self) -> &UndirectedGraph {
        self.0.graph()
    }
}

/// Shared read access to the engine's directed view, returned by
/// [`EnumerationEngine::digraph`]. See [`GraphRef`].
pub struct DigraphRef<'a>(RwLockReadGuard<'a, EpochDigraph>);

impl DigraphRef<'_> {
    /// The directed view's mutation epoch.
    pub fn epoch(&self) -> u64 {
        self.0.epoch()
    }
}

impl Deref for DigraphRef<'_> {
    type Target = DiGraph;
    fn deref(&self) -> &DiGraph {
        self.0.digraph()
    }
}

/// A long-lived, multi-tenant enumeration engine.
///
/// Owns one undirected graph (and optionally its directed counterpart),
/// two shared [`ResultCache`]s (edge-item and arc-item), and a pool of
/// worker threads. Tenants attach via [`Self::session`] and submit
/// [`Query`]s; admission control bounds in-flight work, a
/// stride-scheduled weighted round-robin picks the next query, and
/// every completed stream is byte-identical to a one-shot
/// [`Enumeration`] run of the same query.
///
/// The graphs are **live**: [`Self::apply_mutations`] (and its directed
/// sibling) inserts and removes edges between queries. Each batch is
/// serialized against in-flight work — queries admitted before the
/// batch finish against the old graph, queries admitted after it run
/// against the new one — and the result caches drop exactly the
/// entries whose touched regions changed ([`MutationOutcome`]).
///
/// Dropping the engine drains gracefully: new submissions are refused,
/// queued queries still execute, and every outstanding [`Ticket`]
/// resolves before the worker threads exit.
pub struct EnumerationEngine {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl EnumerationEngine {
    /// An engine over `graph` with the default [`EngineConfig`] and no
    /// directed view.
    pub fn new(graph: UndirectedGraph) -> Self {
        Self::with_graphs(graph, None, EngineConfig::default())
    }

    /// An engine over `graph` with an explicit configuration.
    pub fn with_config(graph: UndirectedGraph, config: EngineConfig) -> Self {
        Self::with_graphs(graph, None, config)
    }

    /// An engine serving both undirected queries on `graph` and
    /// [`Query::DirectedSteinerTree`] on `digraph`.
    pub fn with_graphs(
        graph: UndirectedGraph,
        digraph: Option<DiGraph>,
        config: EngineConfig,
    ) -> Self {
        fn make_cache<Item: Copy + Eq + std::hash::Hash>(bytes: Option<u64>) -> ResultCache<Item> {
            match bytes {
                Some(b) => ResultCache::with_capacity_bytes(b),
                None => ResultCache::new(),
            }
        }
        let shared = Arc::new(Shared {
            graph: RwLock::new(EpochGraph::new(graph)),
            digraph: digraph.map(|d| RwLock::new(EpochDigraph::new(d))),
            config,
            edge_cache: make_cache(config.cache_capacity_bytes),
            arc_cache: make_cache(config.cache_capacity_bytes),
            sched: Mutex::new(Scheduler {
                tenants: Vec::new(),
                by_name: HashMap::new(),
                in_flight: 0,
                epoch: 0,
                target_epoch: 0,
                current_unfinished: 0,
                next_unfinished: 0,
                mutation_stats: EnumStats::default(),
                paused: false,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            mutation_lock: Mutex::new(()),
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("steiner-service-{i}"))
                    .stack_size(steiner_paths::streaming::DEFAULT_STACK_BYTES)
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn service worker")
            })
            .collect();
        EnumerationEngine { shared, workers }
    }

    /// Attaches a tenant with scheduling weight 1. Attaching the same
    /// name again returns a session for the *same* tenant (shared
    /// queue, counters, and scheduling state).
    pub fn session(&self, name: &str) -> Session {
        self.session_with_weight(name, 1)
    }

    /// Attaches a tenant with an explicit scheduling weight: the
    /// dispatch frequency of tenant `t` is proportional to
    /// `weight(t)` among tenants with queued work. Re-attaching an
    /// existing tenant updates its weight. A newly registered tenant
    /// starts at the current minimum pass, so it gets its fair share
    /// from now on but no retroactive catch-up burst.
    pub fn session_with_weight(&self, name: &str, weight: u32) -> Session {
        let mut sched = self.shared.lock();
        let tenant = match sched.by_name.get(name) {
            Some(&i) => {
                sched.tenants[i].weight = weight.max(1);
                i
            }
            None => {
                let i = sched.tenants.len();
                let pass = sched.min_pass();
                sched.tenants.push(TenantState {
                    name: name.to_string(),
                    weight: weight.max(1),
                    pass,
                    queue: VecDeque::new(),
                    stats: EnumStats::default(),
                    completed: 0,
                    rejected: 0,
                    deadline_exceeded: 0,
                });
                sched.by_name.insert(name.to_string(), i);
                i
            }
        };
        Session::new(Arc::clone(&self.shared), tenant)
    }

    /// Holds back dispatch: admitted queries stay queued until
    /// [`Self::resume`]. Running queries are unaffected. Useful for
    /// deterministic tests of admission control and scheduling order —
    /// and note that shutdown overrides a pause, so dropping a paused
    /// engine still drains its queues. A mutation batch submitted while
    /// queries are held back blocks until [`Self::resume`] lets them
    /// finish.
    pub fn pause(&self) {
        self.shared.lock().paused = true;
    }

    /// Resumes dispatch after [`Self::pause`].
    pub fn resume(&self) {
        self.shared.lock().paused = false;
        self.shared.work_ready.notify_all();
    }

    /// Blocks until no admitted query is queued or running.
    pub fn wait_idle(&self) {
        let mut sched = self.shared.lock();
        while sched.in_flight > 0 {
            sched = self
                .shared
                .work_ready
                .wait(sched)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Admitted-but-unfinished queries right now (queued + running).
    pub fn in_flight(&self) -> usize {
        self.shared.lock().in_flight
    }

    /// The engine's configuration.
    pub fn config(&self) -> EngineConfig {
        self.shared.config
    }

    /// The serving epoch: the number of committed mutation batches
    /// (undirected and directed combined). Every admitted query is
    /// pinned to the epoch at its admission.
    pub fn epoch(&self) -> u64 {
        self.shared.lock().epoch
    }

    /// Read access to the undirected graph every undirected query runs
    /// against. The returned guard blocks mutation batches while held.
    pub fn graph(&self) -> GraphRef<'_> {
        GraphRef(self.shared.read_graph())
    }

    /// Read access to the directed view, when the engine was built
    /// with one. The returned guard blocks mutation batches while held.
    pub fn digraph(&self) -> Option<DigraphRef<'_>> {
        self.shared.read_digraph().map(DigraphRef)
    }

    /// Inserts and removes edges in the serving undirected graph as one
    /// atomic batch, serialized against queries: the batch waits for
    /// every query admitted before it, and every query admitted after
    /// it (even mid-batch) runs against the mutated graph. Edge-item
    /// cache entries whose region signature intersects a touched region
    /// are dropped; all others are retained and keep replaying across
    /// the epoch boundary. The arc-item cache is untouched — the
    /// directed view is a separate graph.
    ///
    /// The batch is validated up front: on error nothing changes, no
    /// fence goes up, and queries are not delayed.
    pub fn apply_mutations(&self, batch: &[GraphMutation]) -> Result<MutationOutcome, GraphError> {
        let _serial = self
            .shared
            .mutation_lock
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        self.shared.read_graph().validate(batch)?;
        self.fence()?;
        let report = {
            let mut g = self.shared.graph.write().unwrap_or_else(|e| e.into_inner());
            g.batch_apply(batch).expect("batch was pre-validated")
        };
        let (retained, invalidated) = self.shared.edge_cache.invalidate_regions(&report.touched);
        Ok(self.commit_epoch(report.touched, retained, invalidated))
    }

    /// [`Self::apply_mutations`] for a single edit.
    pub fn apply_mutation(&self, edit: GraphMutation) -> Result<MutationOutcome, GraphError> {
        self.apply_mutations(&[edit])
    }

    /// Inserts and removes arcs in the directed view as one atomic
    /// batch — the directed sibling of [`Self::apply_mutations`],
    /// invalidating arc-item cache entries by touched region. Fails
    /// with [`GraphError::Precondition`] when the engine has no
    /// directed view.
    pub fn apply_arc_mutations(
        &self,
        batch: &[ArcMutation],
    ) -> Result<MutationOutcome, GraphError> {
        let _serial = self
            .shared
            .mutation_lock
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let Some(digraph) = self.shared.digraph.as_ref() else {
            return Err(GraphError::Precondition {
                message: NO_DIGRAPH.to_string(),
            });
        };
        digraph
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .validate(batch)?;
        self.fence()?;
        let report = {
            let mut d = digraph.write().unwrap_or_else(|e| e.into_inner());
            d.batch_apply(batch).expect("batch was pre-validated")
        };
        let (retained, invalidated) = self.shared.arc_cache.invalidate_regions(&report.touched);
        Ok(self.commit_epoch(report.touched, retained, invalidated))
    }

    /// Routes new submissions to the next epoch and waits until every
    /// query admitted at the current epoch has finished. Caller must
    /// hold the mutation lock.
    fn fence(&self) -> Result<(), GraphError> {
        let mut sched = self.shared.lock();
        if sched.shutdown {
            return Err(GraphError::Precondition {
                message: SHUT_DOWN.to_string(),
            });
        }
        sched.target_epoch = sched.epoch + 1;
        while sched.current_unfinished > 0 {
            sched = self
                .shared
                .work_ready
                .wait(sched)
                .unwrap_or_else(|e| e.into_inner());
        }
        Ok(())
    }

    /// Commits a mutation batch: advances the serving epoch, promotes
    /// fence-gated jobs to dispatchable, folds the invalidation
    /// counters, and wakes the workers. Caller must hold the mutation
    /// lock and have completed [`Self::fence`].
    fn commit_epoch(
        &self,
        touched_regions: Vec<u32>,
        entries_retained: u64,
        entries_invalidated: u64,
    ) -> MutationOutcome {
        let epoch = {
            let mut sched = self.shared.lock();
            sched.epoch += 1;
            sched.target_epoch = sched.epoch;
            sched.current_unfinished = sched.next_unfinished;
            sched.next_unfinished = 0;
            sched.mutation_stats.entries_retained += entries_retained;
            sched.mutation_stats.entries_invalidated += entries_invalidated;
            sched.epoch
        };
        self.shared.work_ready.notify_all();
        MutationOutcome {
            epoch,
            touched_regions,
            entries_retained,
            entries_invalidated,
        }
    }

    /// [`EnumStats`] fold of every committed mutation batch — today
    /// the [`EnumStats::entries_retained`] / [`EnumStats::entries_invalidated`]
    /// counters.
    pub fn mutation_stats(&self) -> EnumStats {
        self.shared.lock().mutation_stats
    }

    /// Counters of the (edge-item, arc-item) result caches.
    pub fn cache_stats(&self) -> (CacheStats, CacheStats) {
        (
            self.shared.edge_cache.stats(),
            self.shared.arc_cache.stats(),
        )
    }

    /// A [`TenantReport`] per registered tenant, sorted by name.
    pub fn tenants(&self) -> Vec<TenantReport> {
        let sched = self.shared.lock();
        let mut reports: Vec<TenantReport> = sched
            .tenants
            .iter()
            .map(|t| TenantReport {
                name: t.name.clone(),
                weight: t.weight,
                queued: t.queue.len(),
                completed: t.completed,
                rejected: t.rejected,
                deadline_exceeded: t.deadline_exceeded,
                stats: t.stats,
            })
            .collect();
        reports.sort_by(|a, b| a.name.cmp(&b.name));
        reports
    }

    /// Serializes both result caches into one deterministic,
    /// versioned, checksummed byte blob (the engine-level framing of
    /// [`ResultCache::snapshot`]), tagged with the serving epoch it was
    /// taken at. Feed it to [`Self::restore`] on a freshly constructed
    /// engine over the same graphs to answer warm after a restart.
    pub fn snapshot(&self) -> Vec<u8> {
        let edges = self.shared.edge_cache.snapshot();
        let arcs = self.shared.arc_cache.snapshot();
        let epoch = self.epoch();
        let mut out = Vec::with_capacity(32 + edges.len() + arcs.len());
        out.extend_from_slice(&SERVICE_MAGIC);
        out.extend_from_slice(&SERVICE_VERSION.to_le_bytes());
        out.extend_from_slice(&epoch.to_le_bytes());
        out.extend_from_slice(&(edges.len() as u64).to_le_bytes());
        out.extend_from_slice(&edges);
        out.extend_from_slice(&(arcs.len() as u64).to_le_bytes());
        out.extend_from_slice(&arcs);
        out
    }

    /// Loads a [`Self::snapshot`] blob into this engine's caches,
    /// returning the number of cached query results restored.
    ///
    /// Every stored entry carries the region fingerprints it was
    /// recorded against and is validated against the serving graph's
    /// current region map (directed entries against the directed
    /// view's) **before** anything is committed: a corrupted,
    /// truncated, version-skewed, or wrong-graph snapshot is rejected
    /// with a typed [`SnapshotError`] and the caches are left untouched
    /// — a stale snapshot is never silently served. Version-1 blobs
    /// (written before graphs were mutable) are refused with
    /// [`SnapshotError::VersionSkew`]: their whole-graph fingerprints
    /// cannot be checked region-by-region. The stored epoch tag is
    /// informational — validity is decided by the region fingerprints,
    /// so a snapshot restores into any engine whose graph regions
    /// match, whatever its epoch counter reads.
    pub fn restore(&self, bytes: &[u8]) -> Result<u64, SnapshotError> {
        if bytes.len() < 4 || bytes[..4] != SERVICE_MAGIC {
            // v1 frames began with a raw u64 length, not a magic.
            return Err(SnapshotError::VersionSkew {
                stored: 1,
                supported: SERVICE_VERSION,
            });
        }
        let rest = &bytes[4..];
        if rest.len() < 12 {
            return Err(SnapshotError::Corrupted("service frame truncated"));
        }
        let version = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes"));
        if version != SERVICE_VERSION {
            return Err(SnapshotError::VersionSkew {
                stored: version,
                supported: SERVICE_VERSION,
            });
        }
        let _epoch_tag = u64::from_le_bytes(rest[4..12].try_into().expect("8 bytes"));
        let (edges, rest) = take_frame(&rest[12..])?;
        let (arcs, rest) = take_frame(rest)?;
        if !rest.is_empty() {
            return Err(SnapshotError::Corrupted(
                "trailing bytes after service frame",
            ));
        }
        let kinds = paper_problem_kinds();
        // Validate both parts before committing either, so a half-bad
        // snapshot cannot leave the engine half-restored. The read
        // guards also hold mutations off until the restore commits.
        let g = self.shared.read_graph();
        let d = self.shared.read_digraph();
        self.shared
            .edge_cache
            .validate_snapshot(edges, &kinds, Some(g.regions()))?;
        self.shared
            .arc_cache
            .validate_snapshot(arcs, &kinds, d.as_ref().map(|d| d.regions()))?;
        let restored = self
            .shared
            .edge_cache
            .restore(edges, &kinds, Some(g.regions()))?
            + self
                .shared
                .arc_cache
                .restore(arcs, &kinds, d.as_ref().map(|d| d.regions()))?;
        Ok(restored)
    }
}

impl Drop for EnumerationEngine {
    /// Graceful drain: refuse new submissions, execute everything
    /// already admitted (resolving every outstanding [`Ticket`]), then
    /// join the workers.
    fn drop(&mut self) {
        self.shared.lock().shutdown = true;
        self.shared.work_ready.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Splits `bytes` into a `u64 LE` length-prefixed frame and the rest.
fn take_frame(bytes: &[u8]) -> Result<(&[u8], &[u8]), SnapshotError> {
    if bytes.len() < 8 {
        return Err(SnapshotError::Corrupted("service frame truncated"));
    }
    let (len, rest) = bytes.split_at(8);
    let len = u64::from_le_bytes(len.try_into().expect("split_at(8)")) as usize;
    if rest.len() < len {
        return Err(SnapshotError::Corrupted("service frame truncated"));
    }
    Ok(rest.split_at(len))
}

/// Admission control + enqueue. Called by [`Session::submit`].
pub(crate) fn submit(
    shared: &Shared,
    tenant: usize,
    query: Query,
    opts: QueryOptions,
) -> Result<Ticket, SteinerError> {
    let mut sched = shared.lock();
    if sched.shutdown {
        return Err(SteinerError::Unsupported(SHUT_DOWN));
    }
    if query.is_directed() && shared.digraph.is_none() {
        // Fail fast at submission: the query could never run.
        return Err(SteinerError::Unsupported(NO_DIGRAPH));
    }
    if sched.in_flight >= shared.config.max_in_flight {
        let in_flight = sched.in_flight;
        sched.tenants[tenant].rejected += 1;
        return Err(SteinerError::AdmissionRejected {
            in_flight,
            capacity: shared.config.max_in_flight,
        });
    }
    let depth = sched.tenants[tenant].queue.len();
    if depth >= shared.config.tenant_queue_depth {
        sched.tenants[tenant].rejected += 1;
        return Err(SteinerError::AdmissionRejected {
            in_flight: depth,
            capacity: shared.config.tenant_queue_depth,
        });
    }
    let (done, rx) = crossbeam_channel::bounded(1);
    // Pin the query to the admission epoch: during a mutation fence,
    // `target_epoch` is one ahead and the job only dispatches once the
    // batch commits — the stream always reflects the graph as admitted.
    let epoch = sched.target_epoch;
    if epoch == sched.epoch {
        sched.current_unfinished += 1;
    } else {
        sched.next_unfinished += 1;
    }
    sched.tenants[tenant].queue.push_back(Job {
        query,
        opts,
        epoch,
        done,
    });
    sched.in_flight += 1;
    drop(sched);
    shared.work_ready.notify_all();
    Ok(Ticket { rx })
}

/// One tenant's report, by index. Called by [`Session::report`].
pub(crate) fn tenant_report(shared: &Shared, tenant: usize) -> TenantReport {
    let sched = shared.lock();
    let t = &sched.tenants[tenant];
    TenantReport {
        name: t.name.clone(),
        weight: t.weight,
        queued: t.queue.len(),
        completed: t.completed,
        rejected: t.rejected,
        deadline_exceeded: t.deadline_exceeded,
        stats: t.stats,
    }
}

pub(crate) fn tenant_name(shared: &Shared, tenant: usize) -> String {
    shared.lock().tenants[tenant].name.clone()
}

/// Worker thread body: pull the next stride-scheduled job, execute it,
/// fold its stats into the tenant, resolve the ticket. Exits once
/// shutdown is flagged and every queue is drained — including
/// epoch-gated jobs, which an in-progress mutation batch will release.
fn worker_loop(shared: &Shared) {
    loop {
        let dispatched = {
            let mut sched = shared.lock();
            loop {
                // Shutdown overrides a pause: a paused engine still
                // drains on drop.
                if !sched.paused || sched.shutdown {
                    if let Some(d) = sched.next_job() {
                        break Some(d);
                    }
                }
                if sched.shutdown && !sched.any_queued() {
                    break None;
                }
                sched = shared
                    .work_ready
                    .wait(sched)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        let Some((tenant, job)) = dispatched else {
            return;
        };
        let outcome = execute(shared, &job.query, &job.opts);
        {
            let mut sched = shared.lock();
            let t = &mut sched.tenants[tenant];
            t.stats.merge(&outcome.stats);
            t.completed += 1;
            if matches!(outcome.status, Err(SteinerError::DeadlineExceeded)) {
                t.deadline_exceeded += 1;
            }
            sched.in_flight -= 1;
            // The job was dispatchable, so it was admitted at the
            // serving epoch; its completion is what a mutation fence
            // waits for.
            sched.current_unfinished -= 1;
        }
        // Wake idle workers (more queued work may be dispatchable now
        // that a slot freed), `wait_idle` callers, and fencing
        // mutation batches.
        shared.work_ready.notify_all();
        let _ = job.done.send(outcome);
    }
}

/// Runs one query against the engine's serving graph and shared caches.
/// The problem instance borrows the graph through a read guard held for
/// the duration of the run — a mutation batch can only interleave
/// between queries, never inside one. The problem instance carries only
/// terminals, so construction is O(|query|).
fn execute(shared: &Shared, query: &Query, opts: &QueryOptions) -> QueryOutcome {
    if let Some(deadline) = opts.deadline {
        // The deadline is a caller promise: time spent queued counts.
        // lint:allow(clock) admission-time deadline check against the sanctioned service clock
        if Instant::now() >= deadline {
            let solutions = if query.is_directed() {
                SolutionItems::Arcs(Vec::new())
            } else {
                SolutionItems::Edges(Vec::new())
            };
            return QueryOutcome {
                solutions,
                stats: EnumStats::default(),
                status: Err(SteinerError::DeadlineExceeded),
            };
        }
    }
    match query {
        Query::SteinerTree { terminals } => {
            let g = shared.read_graph();
            run(
                SteinerTree::new(g.graph(), terminals),
                &shared.edge_cache,
                opts,
                SolutionItems::Edges,
            )
        }
        Query::SteinerForest { sets } => {
            let g = shared.read_graph();
            run(
                SteinerForest::new(g.graph(), sets),
                &shared.edge_cache,
                opts,
                SolutionItems::Edges,
            )
        }
        Query::TerminalSteinerTree { terminals } => {
            let g = shared.read_graph();
            run(
                TerminalSteinerTree::new(g.graph(), terminals),
                &shared.edge_cache,
                opts,
                SolutionItems::Edges,
            )
        }
        Query::DirectedSteinerTree { root, terminals } => match shared.read_digraph() {
            Some(d) => run(
                DirectedSteinerTree::new(d.digraph(), *root, terminals),
                &shared.arc_cache,
                opts,
                SolutionItems::Arcs,
            ),
            // Submission already rejects this; kept for defence in
            // depth (e.g. a job admitted through a future API).
            None => QueryOutcome {
                solutions: SolutionItems::Arcs(Vec::new()),
                stats: EnumStats::default(),
                status: Err(SteinerError::Unsupported(NO_DIGRAPH)),
            },
        },
    }
}

/// Configures an [`Enumeration`] per `opts`, runs it, and wraps the
/// delivered stream. The stream is byte-identical to a standalone run
/// because this *is* a standalone run — the service layer adds nothing
/// between the engine and the collection sink.
fn run<P>(
    problem: P,
    cache: &ResultCache<P::Item>,
    opts: &QueryOptions,
    wrap: fn(Vec<Vec<P::Item>>) -> SolutionItems,
) -> QueryOutcome
where
    P: MinimalSteinerProblem + Send,
    P::Item: Send + SnapshotItem,
{
    let mut e = Enumeration::new(problem)
        .with_packed_frontiers(opts.packed_frontiers.unwrap_or(true))
        .cached(cache);
    if let Some(n) = opts.limit {
        e = e.with_limit(n);
    }
    if let Some(deadline) = opts.deadline {
        e = e.with_deadline(deadline);
    }
    if opts.queue {
        e = e.with_default_queue();
    }
    if opts.threads > 1 {
        // Stealing defaults on for pooled queries: a multi-tenant engine
        // cannot afford a sharded run collapsing to one worker on a
        // skew-rooted instance; `stealing(false)` keeps the root-only
        // path available as an A/B reference.
        e = e
            .with_threads(opts.threads)
            .with_stealing(opts.stealing.unwrap_or(true));
    }
    let (e, handle) = e.with_stats();
    let mut solutions = Vec::new();
    let status = e.for_each(|items| {
        solutions.push(items.to_vec());
        ControlFlow::Continue(())
    });
    match status {
        Ok(stats) => QueryOutcome {
            solutions: wrap(solutions),
            stats,
            status: Ok(()),
        },
        Err(SteinerError::DeadlineExceeded) => QueryOutcome {
            // The prefix delivered before expiry is valid; the stats
            // were published through the handle before the abort.
            solutions: wrap(solutions),
            stats: handle.get(),
            status: Err(SteinerError::DeadlineExceeded),
        },
        Err(err) => QueryOutcome {
            solutions: wrap(Vec::new()),
            stats: handle.get(),
            status: Err(err),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use steiner_graph::VertexId;

    fn square() -> UndirectedGraph {
        UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap()
    }

    fn tree_query() -> Query {
        Query::SteinerTree {
            terminals: vec![VertexId(0), VertexId(2)],
        }
    }

    /// A scheduler with `queued[i]` jobs waiting for tenant `i`.
    fn scheduler(tenants: &[(&str, u32, usize)]) -> Scheduler {
        let mut sched = Scheduler {
            tenants: Vec::new(),
            by_name: HashMap::new(),
            in_flight: 0,
            epoch: 0,
            target_epoch: 0,
            current_unfinished: 0,
            next_unfinished: 0,
            mutation_stats: EnumStats::default(),
            paused: false,
            shutdown: false,
        };
        for &(name, weight, queued) in tenants {
            let mut queue = VecDeque::new();
            for _ in 0..queued {
                let (done, _rx) = crossbeam_channel::bounded(1);
                std::mem::forget(_rx); // keep the channel open for the dummy job
                queue.push_back(Job {
                    query: tree_query(),
                    opts: QueryOptions::default(),
                    epoch: 0,
                    done,
                });
            }
            sched.in_flight += queued;
            sched.current_unfinished += queued;
            sched.by_name.insert(name.to_string(), sched.tenants.len());
            sched.tenants.push(TenantState {
                name: name.to_string(),
                weight,
                pass: 0,
                queue,
                stats: EnumStats::default(),
                completed: 0,
                rejected: 0,
                deadline_exceeded: 0,
            });
        }
        sched
    }

    #[test]
    fn stride_dispatch_is_weight_proportional_and_deterministic() {
        let mut sched = scheduler(&[("a", 2, 8), ("b", 1, 4)]);
        let mut order = String::new();
        while let Some((i, _job)) = sched.next_job() {
            order.push_str(&sched.tenants[i].name);
        }
        // Weight 2:1 → `a` is dispatched twice as often; ties break by
        // name, so the order is fully deterministic.
        assert_eq!(order, "abaabaabaaba");
    }

    #[test]
    fn equal_weights_round_robin() {
        let mut sched = scheduler(&[("x", 1, 3), ("y", 1, 3)]);
        let mut order = String::new();
        while let Some((i, _job)) = sched.next_job() {
            order.push_str(&sched.tenants[i].name);
        }
        assert_eq!(order, "xyxyxy");
    }

    #[test]
    fn next_job_gates_jobs_pinned_to_a_future_epoch() {
        let mut sched = scheduler(&[("a", 1, 2)]);
        // Simulate a fence: the queued jobs belong to epoch 1, the
        // engine still serves epoch 0.
        for job in sched.tenants[0].queue.iter_mut() {
            job.epoch = 1;
        }
        assert!(sched.next_job().is_none(), "future-epoch jobs are held");
        sched.epoch = 1;
        assert!(
            sched.next_job().is_some(),
            "released once the epoch commits"
        );
    }

    #[test]
    fn admission_rejects_beyond_tenant_queue_depth() {
        let engine = EnumerationEngine::with_config(
            square(),
            EngineConfig {
                workers: 1,
                max_in_flight: 16,
                tenant_queue_depth: 2,
                cache_capacity_bytes: None,
            },
        );
        engine.pause(); // hold jobs in the queue deterministically
        let s = engine.session("t");
        let t1 = s.submit(tree_query(), QueryOptions::default()).unwrap();
        let t2 = s.submit(tree_query(), QueryOptions::default()).unwrap();
        let err = s.submit(tree_query(), QueryOptions::default()).unwrap_err();
        assert_eq!(
            err,
            SteinerError::AdmissionRejected {
                in_flight: 2,
                capacity: 2
            }
        );
        assert_eq!(s.report().rejected, 1);
        engine.resume();
        assert!(t1.wait().is_complete());
        assert!(t2.wait().is_complete());
    }

    #[test]
    fn admission_rejects_beyond_global_pool() {
        let engine = EnumerationEngine::with_config(
            square(),
            EngineConfig {
                workers: 1,
                max_in_flight: 2,
                tenant_queue_depth: 8,
                cache_capacity_bytes: None,
            },
        );
        engine.pause();
        let a = engine.session("a");
        let b = engine.session("b");
        let _t1 = a.submit(tree_query(), QueryOptions::default()).unwrap();
        let _t2 = a.submit(tree_query(), QueryOptions::default()).unwrap();
        let err = b.submit(tree_query(), QueryOptions::default()).unwrap_err();
        assert_eq!(
            err,
            SteinerError::AdmissionRejected {
                in_flight: 2,
                capacity: 2
            }
        );
        engine.resume();
        engine.wait_idle();
        assert_eq!(engine.in_flight(), 0);
    }

    #[test]
    fn directed_query_without_digraph_is_unsupported_at_submit() {
        let engine = EnumerationEngine::new(square());
        let s = engine.session("t");
        let err = s
            .submit(
                Query::DirectedSteinerTree {
                    root: VertexId(0),
                    terminals: vec![VertexId(2)],
                },
                QueryOptions::default(),
            )
            .unwrap_err();
        assert!(matches!(err, SteinerError::Unsupported(_)));
    }

    #[test]
    fn drop_drains_queued_work() {
        let engine = EnumerationEngine::with_config(
            square(),
            EngineConfig {
                workers: 1,
                ..EngineConfig::default()
            },
        );
        engine.pause(); // nothing dispatches until drop flips shutdown
        let s = engine.session("t");
        let tickets: Vec<Ticket> = (0..4)
            .map(|_| s.submit(tree_query(), QueryOptions::default()).unwrap())
            .collect();
        drop(engine);
        for t in tickets {
            let outcome = t.wait();
            assert!(outcome.is_complete());
            assert_eq!(outcome.solutions.len(), 2);
        }
    }

    #[test]
    fn expired_deadline_resolves_without_running() {
        let engine = EnumerationEngine::new(square());
        let s = engine.session("t");
        let opts =
            QueryOptions::default().deadline(Instant::now() - std::time::Duration::from_millis(1));
        let outcome = s.run(tree_query(), opts).unwrap();
        assert_eq!(outcome.status, Err(SteinerError::DeadlineExceeded));
        assert!(outcome.solutions.is_empty());
        assert_eq!(s.report().deadline_exceeded, 1);
    }

    #[test]
    fn snapshot_restores_into_fresh_engine_as_hits() {
        let engine = EnumerationEngine::new(square());
        let s = engine.session("t");
        let cold = s.run(tree_query(), QueryOptions::default()).unwrap();
        assert_eq!(cold.stats.cache_misses, 1);
        let blob = engine.snapshot();

        let restarted = EnumerationEngine::new(square());
        assert_eq!(restarted.restore(&blob).unwrap(), 1);
        let warm = restarted
            .session("t")
            .run(tree_query(), QueryOptions::default())
            .unwrap();
        assert_eq!(warm.stats.cache_hits, 1);
        assert_eq!(warm.solutions, cold.solutions);
    }

    #[test]
    fn restore_rejects_wrong_graph_and_corruption_atomically() {
        let engine = EnumerationEngine::new(square());
        let s = engine.session("t");
        s.run(tree_query(), QueryOptions::default()).unwrap();
        let blob = engine.snapshot();

        // Different graph → every entry's region fingerprint mismatches.
        let other = EnumerationEngine::new(
            UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (2, 0)]).unwrap(),
        );
        assert!(matches!(
            other.restore(&blob),
            Err(SnapshotError::GraphMismatch { .. })
        ));
        let (edge_stats, _) = other.cache_stats();
        assert_eq!(edge_stats.entries, 0, "rejected restore must not commit");

        // Truncated frame.
        let fresh = EnumerationEngine::new(square());
        assert!(matches!(
            fresh.restore(&blob[..blob.len() - 1]),
            Err(SnapshotError::Corrupted(_) | SnapshotError::ChecksumMismatch)
        ));
        // Trailing junk.
        let mut long = blob;
        long.push(0);
        assert!(matches!(
            fresh.restore(&long),
            Err(SnapshotError::Corrupted(_))
        ));
        let (edge_stats, _) = fresh.cache_stats();
        assert_eq!(edge_stats.entries, 0);
    }

    #[test]
    fn restore_refuses_v1_blobs_with_version_skew() {
        let engine = EnumerationEngine::new(square());
        let s = engine.session("t");
        s.run(tree_query(), QueryOptions::default()).unwrap();
        let v2 = engine.snapshot();

        // A v1 engine frame: two raw length-prefixed cache frames with
        // no magic, version, or epoch tag — exactly the v2 payload
        // minus its 16-byte header.
        let v1 = v2[16..].to_vec();
        let fresh = EnumerationEngine::new(square());
        assert_eq!(
            fresh.restore(&v1),
            Err(SnapshotError::VersionSkew {
                stored: 1,
                supported: SERVICE_VERSION
            })
        );

        // A future version is refused symmetrically.
        let mut v3 = v2;
        v3[4..8].copy_from_slice(&3u32.to_le_bytes());
        assert_eq!(
            fresh.restore(&v3),
            Err(SnapshotError::VersionSkew {
                stored: 3,
                supported: SERVICE_VERSION
            })
        );
        let (edge_stats, _) = fresh.cache_stats();
        assert_eq!(edge_stats.entries, 0, "nothing was committed");
    }

    #[test]
    fn mutations_serialize_against_queries_and_advance_the_epoch() {
        let engine = EnumerationEngine::with_config(
            square(),
            EngineConfig {
                workers: 1,
                ..EngineConfig::default()
            },
        );
        assert_eq!(engine.epoch(), 0);
        let s = engine.session("t");
        let before = s.run(tree_query(), QueryOptions::default()).unwrap();

        // Remove edge {2,3}: the square loses one of the two minimal
        // Steiner trees between 0 and 2.
        let out = engine
            .apply_mutation(GraphMutation::RemoveEdge(EdgeId(2)))
            .unwrap();
        assert_eq!(out.epoch, 1);
        assert_eq!(engine.epoch(), 1);
        assert_eq!(out.entries_invalidated, 1, "the square entry died");
        assert_eq!(out.entries_retained, 0);

        let after = s.run(tree_query(), QueryOptions::default()).unwrap();
        assert_eq!(before.solutions.len(), 2);
        assert_eq!(after.solutions.len(), 1, "one tree survives the removal");
        assert_eq!(engine.mutation_stats().entries_invalidated, 1);

        // An invalid batch changes nothing — no epoch bump, no fence.
        let err = engine
            .apply_mutation(GraphMutation::RemoveEdge(EdgeId(99)))
            .unwrap_err();
        assert!(matches!(err, GraphError::EdgeOutOfRange { .. }));
        assert_eq!(engine.epoch(), 1);
    }

    #[test]
    fn queries_admitted_before_a_mutation_run_against_the_old_graph() {
        let engine = EnumerationEngine::with_config(
            square(),
            EngineConfig {
                workers: 1,
                ..EngineConfig::default()
            },
        );
        let s = engine.session("t");
        // Admit at epoch 0, then race a mutation: the fence must wait
        // for the admitted query, so its stream matches the original
        // square no matter when the worker gets to it.
        let ticket = s.submit(tree_query(), QueryOptions::default()).unwrap();
        let out = engine
            .apply_mutation(GraphMutation::RemoveEdge(EdgeId(2)))
            .unwrap();
        assert_eq!(out.epoch, 1);
        let outcome = ticket.wait();
        assert!(outcome.is_complete());
        assert_eq!(
            outcome.solutions.len(),
            2,
            "the pinned-epoch stream saw both square trees"
        );
        // And a fresh query sees the mutated graph.
        let after = s.run(tree_query(), QueryOptions::default()).unwrap();
        assert_eq!(after.solutions.len(), 1);
    }

    #[test]
    fn untouched_region_entries_survive_mutations() {
        // Two components: the square {0..3} and a path {4,5,6}.
        let g = UndirectedGraph::from_edges(7, &[(0, 1), (1, 2), (2, 3), (3, 0), (4, 5), (5, 6)])
            .unwrap();
        let engine = EnumerationEngine::new(g);
        let s = engine.session("t");
        let square_q = tree_query();
        let path_q = Query::SteinerTree {
            terminals: vec![VertexId(4), VertexId(6)],
        };
        s.run(square_q.clone(), QueryOptions::default()).unwrap();
        s.run(path_q.clone(), QueryOptions::default()).unwrap();

        // Mutate the path component only: insert a chord 4–6. The
        // square's entry must survive; the path's must die.
        let out = engine
            .apply_mutation(GraphMutation::InsertEdge {
                u: VertexId(4),
                v: VertexId(6),
            })
            .unwrap();
        assert_eq!(out.touched_regions, vec![4]);
        assert_eq!(out.entries_retained, 1);
        assert_eq!(out.entries_invalidated, 1);

        let warm = s.run(square_q, QueryOptions::default()).unwrap();
        assert_eq!(warm.stats.cache_hits, 1, "untouched region replays");
        let cold = s.run(path_q, QueryOptions::default()).unwrap();
        assert_eq!(cold.stats.cache_misses, 1, "touched region re-enumerates");
        assert_eq!(cold.solutions.len(), 2, "the chord added a second tree");
    }

    #[test]
    fn arc_mutations_require_a_directed_view_and_invalidate_arc_entries() {
        let engine = EnumerationEngine::new(square());
        let err = engine
            .apply_arc_mutations(&[ArcMutation::InsertArc {
                tail: VertexId(0),
                head: VertexId(1),
            }])
            .unwrap_err();
        assert!(matches!(err, GraphError::Precondition { .. }));

        let mut d = DiGraph::new(3);
        d.add_arc_indices(0, 1).unwrap();
        d.add_arc_indices(1, 2).unwrap();
        let engine = EnumerationEngine::with_graphs(square(), Some(d), EngineConfig::default());
        let s = engine.session("t");
        let q = Query::DirectedSteinerTree {
            root: VertexId(0),
            terminals: vec![VertexId(2)],
        };
        s.run(q.clone(), QueryOptions::default()).unwrap();
        let out = engine
            .apply_arc_mutations(&[ArcMutation::InsertArc {
                tail: VertexId(0),
                head: VertexId(2),
            }])
            .unwrap();
        assert_eq!(out.entries_invalidated, 1);
        assert_eq!(out.epoch, 1);
        let cold = s.run(q, QueryOptions::default()).unwrap();
        assert_eq!(cold.stats.cache_misses, 1);
        assert_eq!(cold.solutions.len(), 2, "the shortcut arc adds a solution");
    }
}
