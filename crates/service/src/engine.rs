//! The long-lived engine: worker pool, admission control, fair
//! scheduling, and warm-restart persistence.
//!
//! See the [crate docs](crate) for the architecture overview and an
//! end-to-end example.

use std::collections::{HashMap, VecDeque};
use std::ops::ControlFlow;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;

use steiner_core::cache::{fingerprint_digraph, fingerprint_undirected};
use steiner_core::snapshot::paper_problem_kinds;
use steiner_core::{
    CacheStats, DirectedSteinerTree, EnumStats, Enumeration, MinimalSteinerProblem, ResultCache,
    SnapshotError, SnapshotItem, SteinerError, SteinerForest, SteinerTree, TerminalSteinerTree,
};
use steiner_graph::{ArcId, DiGraph, EdgeId, UndirectedGraph};

use crate::query::{Query, QueryOptions, QueryOutcome, SolutionItems, Ticket};
use crate::session::Session;

/// Rejection reason for directed queries on an engine built without a
/// directed graph view.
pub(crate) const NO_DIGRAPH: &str =
    "directed query on an engine built without a directed graph view";

/// Rejection reason for submissions after the engine started shutting
/// down.
const SHUT_DOWN: &str = "engine is shut down";

/// Stride-scheduling quantum: a tenant of weight `w` advances its pass
/// by `STRIDE / w` per dispatched query, so dispatch frequency is
/// proportional to weight.
const STRIDE: u64 = 1 << 20;

/// Sizing and admission knobs for an [`EnumerationEngine`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads executing queries (at least 1). Each query runs
    /// on one worker; a query may additionally shard itself via
    /// [`QueryOptions::threads`](crate::QueryOptions::threads).
    pub workers: usize,
    /// Global cap on admitted-but-unfinished queries (queued plus
    /// running, across all tenants). A submission beyond the cap is
    /// rejected with [`SteinerError::AdmissionRejected`] — the engine
    /// never queues unboundedly.
    pub max_in_flight: usize,
    /// Per-tenant cap on *queued* (not yet dispatched) queries. A
    /// tenant at its cap is rejected with
    /// [`SteinerError::AdmissionRejected`] even when the global pool
    /// has room, so one tenant cannot squat the whole pool.
    pub tenant_queue_depth: usize,
    /// Byte capacity for each of the engine's two result caches
    /// ([`ResultCache::with_capacity_bytes`]); `None` uses the cache's
    /// default capacity.
    pub cache_capacity_bytes: Option<u64>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 2,
            max_in_flight: 32,
            tenant_queue_depth: 8,
            cache_capacity_bytes: None,
        }
    }
}

/// One admitted, not-yet-executed query.
struct Job {
    query: Query,
    opts: QueryOptions,
    done: crossbeam_channel::Sender<QueryOutcome>,
}

/// Per-tenant scheduler state and lifetime counters.
struct TenantState {
    name: String,
    weight: u32,
    /// Stride-scheduling pass: the tenant with the smallest pass (ties
    /// broken by name) is dispatched next.
    pass: u64,
    queue: VecDeque<Job>,
    /// [`EnumStats::merge`]-fold of every completed query's counters.
    stats: EnumStats,
    completed: u64,
    rejected: u64,
    deadline_exceeded: u64,
}

/// State behind the engine's scheduler lock.
struct Scheduler {
    tenants: Vec<TenantState>,
    by_name: HashMap<String, usize>,
    /// Admitted and not yet finished (queued + running), all tenants.
    in_flight: usize,
    paused: bool,
    shutdown: bool,
}

impl Scheduler {
    /// Picks the queued job of the tenant with the minimum (pass, name)
    /// and advances that tenant's pass — stride-scheduled weighted
    /// round-robin, deterministic given the queue states.
    fn next_job(&mut self) -> Option<(usize, Job)> {
        let mut best: Option<usize> = None;
        for i in 0..self.tenants.len() {
            if self.tenants[i].queue.is_empty() {
                continue;
            }
            best = Some(match best {
                None => i,
                Some(b) => {
                    let (ti, tb) = (&self.tenants[i], &self.tenants[b]);
                    if (ti.pass, ti.name.as_str()) < (tb.pass, tb.name.as_str()) {
                        i
                    } else {
                        b
                    }
                }
            });
        }
        let i = best?;
        let weight = u64::from(self.tenants[i].weight.max(1));
        self.tenants[i].pass = self.tenants[i].pass.saturating_add(STRIDE / weight);
        let job = self.tenants[i]
            .queue
            .pop_front()
            .expect("queue checked non-empty");
        Some((i, job))
    }

    /// The smallest pass among registered tenants — the starting pass
    /// for a newcomer, so joining late never grants catch-up credit.
    fn min_pass(&self) -> u64 {
        self.tenants.iter().map(|t| t.pass).min().unwrap_or(0)
    }
}

/// State shared between the engine handle, its sessions, and the worker
/// threads.
pub(crate) struct Shared {
    graph: UndirectedGraph,
    digraph: Option<DiGraph>,
    graph_fp: u64,
    digraph_fp: Option<u64>,
    config: EngineConfig,
    edge_cache: ResultCache<EdgeId>,
    arc_cache: ResultCache<ArcId>,
    sched: Mutex<Scheduler>,
    work_ready: Condvar,
}

impl Shared {
    /// Scheduler lock, recovering from a poisoned mutex (a worker panic
    /// must not wedge the whole engine).
    fn lock(&self) -> MutexGuard<'_, Scheduler> {
        self.sched.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A lifetime snapshot of one tenant's scheduler state and counters.
#[derive(Clone, Debug)]
pub struct TenantReport {
    /// The tenant's name (unique within the engine).
    pub name: String,
    /// The tenant's scheduling weight (dispatch share).
    pub weight: u32,
    /// Queries queued right now (admitted, not yet dispatched).
    pub queued: usize,
    /// Queries completed over the engine's lifetime (including
    /// deadline-expired ones — those delivered a valid prefix).
    pub completed: u64,
    /// Submissions refused by admission control.
    pub rejected: u64,
    /// Completed queries that hit their deadline.
    pub deadline_exceeded: u64,
    /// [`EnumStats::merge`]-fold of every completed query's counters.
    pub stats: EnumStats,
}

/// A long-lived, multi-tenant enumeration engine.
///
/// Owns one undirected graph (and optionally its directed counterpart),
/// two shared [`ResultCache`]s (edge-item and arc-item), and a pool of
/// worker threads. Tenants attach via [`Self::session`] and submit
/// [`Query`]s; admission control bounds in-flight work, a
/// stride-scheduled weighted round-robin picks the next query, and
/// every completed stream is byte-identical to a one-shot
/// [`Enumeration`] run of the same query.
///
/// Dropping the engine drains gracefully: new submissions are refused,
/// queued queries still execute, and every outstanding [`Ticket`]
/// resolves before the worker threads exit.
pub struct EnumerationEngine {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl EnumerationEngine {
    /// An engine over `graph` with the default [`EngineConfig`] and no
    /// directed view.
    pub fn new(graph: UndirectedGraph) -> Self {
        Self::with_graphs(graph, None, EngineConfig::default())
    }

    /// An engine over `graph` with an explicit configuration.
    pub fn with_config(graph: UndirectedGraph, config: EngineConfig) -> Self {
        Self::with_graphs(graph, None, config)
    }

    /// An engine serving both undirected queries on `graph` and
    /// [`Query::DirectedSteinerTree`] on `digraph`.
    pub fn with_graphs(
        graph: UndirectedGraph,
        digraph: Option<DiGraph>,
        config: EngineConfig,
    ) -> Self {
        fn make_cache<Item: Copy + Eq + std::hash::Hash>(bytes: Option<u64>) -> ResultCache<Item> {
            match bytes {
                Some(b) => ResultCache::with_capacity_bytes(b),
                None => ResultCache::new(),
            }
        }
        let shared = Arc::new(Shared {
            graph_fp: fingerprint_undirected(&graph),
            digraph_fp: digraph.as_ref().map(fingerprint_digraph),
            graph,
            digraph,
            config,
            edge_cache: make_cache(config.cache_capacity_bytes),
            arc_cache: make_cache(config.cache_capacity_bytes),
            sched: Mutex::new(Scheduler {
                tenants: Vec::new(),
                by_name: HashMap::new(),
                in_flight: 0,
                paused: false,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("steiner-service-{i}"))
                    .stack_size(steiner_paths::streaming::DEFAULT_STACK_BYTES)
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn service worker")
            })
            .collect();
        EnumerationEngine { shared, workers }
    }

    /// Attaches a tenant with scheduling weight 1. Attaching the same
    /// name again returns a session for the *same* tenant (shared
    /// queue, counters, and scheduling state).
    pub fn session(&self, name: &str) -> Session {
        self.session_with_weight(name, 1)
    }

    /// Attaches a tenant with an explicit scheduling weight: the
    /// dispatch frequency of tenant `t` is proportional to
    /// `weight(t)` among tenants with queued work. Re-attaching an
    /// existing tenant updates its weight. A newly registered tenant
    /// starts at the current minimum pass, so it gets its fair share
    /// from now on but no retroactive catch-up burst.
    pub fn session_with_weight(&self, name: &str, weight: u32) -> Session {
        let mut sched = self.shared.lock();
        let tenant = match sched.by_name.get(name) {
            Some(&i) => {
                sched.tenants[i].weight = weight.max(1);
                i
            }
            None => {
                let i = sched.tenants.len();
                let pass = sched.min_pass();
                sched.tenants.push(TenantState {
                    name: name.to_string(),
                    weight: weight.max(1),
                    pass,
                    queue: VecDeque::new(),
                    stats: EnumStats::default(),
                    completed: 0,
                    rejected: 0,
                    deadline_exceeded: 0,
                });
                sched.by_name.insert(name.to_string(), i);
                i
            }
        };
        Session::new(Arc::clone(&self.shared), tenant)
    }

    /// Holds back dispatch: admitted queries stay queued until
    /// [`Self::resume`]. Running queries are unaffected. Useful for
    /// deterministic tests of admission control and scheduling order —
    /// and note that shutdown overrides a pause, so dropping a paused
    /// engine still drains its queues.
    pub fn pause(&self) {
        self.shared.lock().paused = true;
    }

    /// Resumes dispatch after [`Self::pause`].
    pub fn resume(&self) {
        self.shared.lock().paused = false;
        self.shared.work_ready.notify_all();
    }

    /// Blocks until no admitted query is queued or running.
    pub fn wait_idle(&self) {
        let mut sched = self.shared.lock();
        while sched.in_flight > 0 {
            sched = self
                .shared
                .work_ready
                .wait(sched)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Admitted-but-unfinished queries right now (queued + running).
    pub fn in_flight(&self) -> usize {
        self.shared.lock().in_flight
    }

    /// The engine's configuration.
    pub fn config(&self) -> EngineConfig {
        self.shared.config
    }

    /// The undirected graph every undirected query runs against.
    pub fn graph(&self) -> &UndirectedGraph {
        &self.shared.graph
    }

    /// The directed view, when the engine was built with one.
    pub fn digraph(&self) -> Option<&DiGraph> {
        self.shared.digraph.as_ref()
    }

    /// Counters of the (edge-item, arc-item) result caches.
    pub fn cache_stats(&self) -> (CacheStats, CacheStats) {
        (
            self.shared.edge_cache.stats(),
            self.shared.arc_cache.stats(),
        )
    }

    /// A [`TenantReport`] per registered tenant, sorted by name.
    pub fn tenants(&self) -> Vec<TenantReport> {
        let sched = self.shared.lock();
        let mut reports: Vec<TenantReport> = sched
            .tenants
            .iter()
            .map(|t| TenantReport {
                name: t.name.clone(),
                weight: t.weight,
                queued: t.queue.len(),
                completed: t.completed,
                rejected: t.rejected,
                deadline_exceeded: t.deadline_exceeded,
                stats: t.stats,
            })
            .collect();
        reports.sort_by(|a, b| a.name.cmp(&b.name));
        reports
    }

    /// Serializes both result caches into one deterministic,
    /// versioned, checksummed byte blob (the engine-level framing of
    /// [`ResultCache::snapshot`]). Feed it to [`Self::restore`] on a
    /// freshly constructed engine over the same graphs to answer warm
    /// after a restart.
    pub fn snapshot(&self) -> Vec<u8> {
        let edges = self.shared.edge_cache.snapshot();
        let arcs = self.shared.arc_cache.snapshot();
        let mut out = Vec::with_capacity(16 + edges.len() + arcs.len());
        out.extend_from_slice(&(edges.len() as u64).to_le_bytes());
        out.extend_from_slice(&edges);
        out.extend_from_slice(&(arcs.len() as u64).to_le_bytes());
        out.extend_from_slice(&arcs);
        out
    }

    /// Loads a [`Self::snapshot`] blob into this engine's caches,
    /// returning the number of cached query results restored.
    ///
    /// Every stored entry is validated against this engine's graph
    /// fingerprints (and the directed entries against the directed
    /// view's, when present) **before** anything is committed: a
    /// corrupted, truncated, version-skewed, or wrong-graph snapshot is
    /// rejected with a typed [`SnapshotError`] and the caches are left
    /// untouched — a stale snapshot is never silently served.
    pub fn restore(&self, bytes: &[u8]) -> Result<u64, SnapshotError> {
        let (edges, rest) = take_frame(bytes)?;
        let (arcs, rest) = take_frame(rest)?;
        if !rest.is_empty() {
            return Err(SnapshotError::Corrupted(
                "trailing bytes after service frame",
            ));
        }
        let kinds = paper_problem_kinds();
        // Validate both parts before committing either, so a half-bad
        // snapshot cannot leave the engine half-restored.
        self.shared
            .edge_cache
            .validate_snapshot(edges, &kinds, Some(self.shared.graph_fp))?;
        self.shared
            .arc_cache
            .validate_snapshot(arcs, &kinds, self.shared.digraph_fp)?;
        let restored = self
            .shared
            .edge_cache
            .restore(edges, &kinds, Some(self.shared.graph_fp))?
            + self
                .shared
                .arc_cache
                .restore(arcs, &kinds, self.shared.digraph_fp)?;
        Ok(restored)
    }
}

impl Drop for EnumerationEngine {
    /// Graceful drain: refuse new submissions, execute everything
    /// already admitted (resolving every outstanding [`Ticket`]), then
    /// join the workers.
    fn drop(&mut self) {
        self.shared.lock().shutdown = true;
        self.shared.work_ready.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Splits `bytes` into a `u64 LE` length-prefixed frame and the rest.
fn take_frame(bytes: &[u8]) -> Result<(&[u8], &[u8]), SnapshotError> {
    if bytes.len() < 8 {
        return Err(SnapshotError::Corrupted("service frame truncated"));
    }
    let (len, rest) = bytes.split_at(8);
    let len = u64::from_le_bytes(len.try_into().expect("split_at(8)")) as usize;
    if rest.len() < len {
        return Err(SnapshotError::Corrupted("service frame truncated"));
    }
    Ok(rest.split_at(len))
}

/// Admission control + enqueue. Called by [`Session::submit`].
pub(crate) fn submit(
    shared: &Shared,
    tenant: usize,
    query: Query,
    opts: QueryOptions,
) -> Result<Ticket, SteinerError> {
    let mut sched = shared.lock();
    if sched.shutdown {
        return Err(SteinerError::Unsupported(SHUT_DOWN));
    }
    if query.is_directed() && shared.digraph.is_none() {
        // Fail fast at submission: the query could never run.
        return Err(SteinerError::Unsupported(NO_DIGRAPH));
    }
    if sched.in_flight >= shared.config.max_in_flight {
        let in_flight = sched.in_flight;
        sched.tenants[tenant].rejected += 1;
        return Err(SteinerError::AdmissionRejected {
            in_flight,
            capacity: shared.config.max_in_flight,
        });
    }
    let depth = sched.tenants[tenant].queue.len();
    if depth >= shared.config.tenant_queue_depth {
        sched.tenants[tenant].rejected += 1;
        return Err(SteinerError::AdmissionRejected {
            in_flight: depth,
            capacity: shared.config.tenant_queue_depth,
        });
    }
    let (done, rx) = crossbeam_channel::bounded(1);
    sched.tenants[tenant]
        .queue
        .push_back(Job { query, opts, done });
    sched.in_flight += 1;
    drop(sched);
    shared.work_ready.notify_all();
    Ok(Ticket { rx })
}

/// One tenant's report, by index. Called by [`Session::report`].
pub(crate) fn tenant_report(shared: &Shared, tenant: usize) -> TenantReport {
    let sched = shared.lock();
    let t = &sched.tenants[tenant];
    TenantReport {
        name: t.name.clone(),
        weight: t.weight,
        queued: t.queue.len(),
        completed: t.completed,
        rejected: t.rejected,
        deadline_exceeded: t.deadline_exceeded,
        stats: t.stats,
    }
}

pub(crate) fn tenant_name(shared: &Shared, tenant: usize) -> String {
    shared.lock().tenants[tenant].name.clone()
}

/// Worker thread body: pull the next stride-scheduled job, execute it,
/// fold its stats into the tenant, resolve the ticket. Exits once
/// shutdown is flagged and every queue is drained.
fn worker_loop(shared: &Shared) {
    loop {
        let dispatched = {
            let mut sched = shared.lock();
            loop {
                // Shutdown overrides a pause: a paused engine still
                // drains on drop.
                if !sched.paused || sched.shutdown {
                    if let Some(d) = sched.next_job() {
                        break Some(d);
                    }
                }
                if sched.shutdown {
                    break None;
                }
                sched = shared
                    .work_ready
                    .wait(sched)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        let Some((tenant, job)) = dispatched else {
            return;
        };
        let outcome = execute(shared, &job.query, &job.opts);
        {
            let mut sched = shared.lock();
            let t = &mut sched.tenants[tenant];
            t.stats.merge(&outcome.stats);
            t.completed += 1;
            if matches!(outcome.status, Err(SteinerError::DeadlineExceeded)) {
                t.deadline_exceeded += 1;
            }
            sched.in_flight -= 1;
        }
        // Wake both idle workers (more queued work may be dispatchable
        // now that a slot freed) and `wait_idle` callers.
        shared.work_ready.notify_all();
        let _ = job.done.send(outcome);
    }
}

/// Runs one query against the engine's graph and shared caches. The
/// problem instance borrows the engine-owned graph — queries carry only
/// terminals, so construction is O(|query|).
fn execute(shared: &Shared, query: &Query, opts: &QueryOptions) -> QueryOutcome {
    if let Some(deadline) = opts.deadline {
        // The deadline is a caller promise: time spent queued counts.
        // lint:allow(clock) admission-time deadline check against the sanctioned service clock
        if Instant::now() >= deadline {
            let solutions = if query.is_directed() {
                SolutionItems::Arcs(Vec::new())
            } else {
                SolutionItems::Edges(Vec::new())
            };
            return QueryOutcome {
                solutions,
                stats: EnumStats::default(),
                status: Err(SteinerError::DeadlineExceeded),
            };
        }
    }
    match query {
        Query::SteinerTree { terminals } => run(
            SteinerTree::new(&shared.graph, terminals),
            &shared.edge_cache,
            opts,
            SolutionItems::Edges,
        ),
        Query::SteinerForest { sets } => run(
            SteinerForest::new(&shared.graph, sets),
            &shared.edge_cache,
            opts,
            SolutionItems::Edges,
        ),
        Query::TerminalSteinerTree { terminals } => run(
            TerminalSteinerTree::new(&shared.graph, terminals),
            &shared.edge_cache,
            opts,
            SolutionItems::Edges,
        ),
        Query::DirectedSteinerTree { root, terminals } => match shared.digraph.as_ref() {
            Some(d) => run(
                DirectedSteinerTree::new(d, *root, terminals),
                &shared.arc_cache,
                opts,
                SolutionItems::Arcs,
            ),
            // Submission already rejects this; kept for defence in
            // depth (e.g. a job admitted through a future API).
            None => QueryOutcome {
                solutions: SolutionItems::Arcs(Vec::new()),
                stats: EnumStats::default(),
                status: Err(SteinerError::Unsupported(NO_DIGRAPH)),
            },
        },
    }
}

/// Configures an [`Enumeration`] per `opts`, runs it, and wraps the
/// delivered stream. The stream is byte-identical to a standalone run
/// because this *is* a standalone run — the service layer adds nothing
/// between the engine and the collection sink.
fn run<P>(
    problem: P,
    cache: &ResultCache<P::Item>,
    opts: &QueryOptions,
    wrap: fn(Vec<Vec<P::Item>>) -> SolutionItems,
) -> QueryOutcome
where
    P: MinimalSteinerProblem + Send,
    P::Item: Send + SnapshotItem,
{
    let mut e = Enumeration::new(problem).cached(cache);
    if let Some(n) = opts.limit {
        e = e.with_limit(n);
    }
    if let Some(deadline) = opts.deadline {
        e = e.with_deadline(deadline);
    }
    if opts.queue {
        e = e.with_default_queue();
    }
    if opts.threads > 1 {
        e = e.with_threads(opts.threads);
    }
    let (e, handle) = e.with_stats();
    let mut solutions = Vec::new();
    let status = e.for_each(|items| {
        solutions.push(items.to_vec());
        ControlFlow::Continue(())
    });
    match status {
        Ok(stats) => QueryOutcome {
            solutions: wrap(solutions),
            stats,
            status: Ok(()),
        },
        Err(SteinerError::DeadlineExceeded) => QueryOutcome {
            // The prefix delivered before expiry is valid; the stats
            // were published through the handle before the abort.
            solutions: wrap(solutions),
            stats: handle.get(),
            status: Err(SteinerError::DeadlineExceeded),
        },
        Err(err) => QueryOutcome {
            solutions: wrap(Vec::new()),
            stats: handle.get(),
            status: Err(err),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use steiner_graph::VertexId;

    fn square() -> UndirectedGraph {
        UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap()
    }

    fn tree_query() -> Query {
        Query::SteinerTree {
            terminals: vec![VertexId(0), VertexId(2)],
        }
    }

    /// A scheduler with `queued[i]` jobs waiting for tenant `i`.
    fn scheduler(tenants: &[(&str, u32, usize)]) -> Scheduler {
        let mut sched = Scheduler {
            tenants: Vec::new(),
            by_name: HashMap::new(),
            in_flight: 0,
            paused: false,
            shutdown: false,
        };
        for &(name, weight, queued) in tenants {
            let mut queue = VecDeque::new();
            for _ in 0..queued {
                let (done, _rx) = crossbeam_channel::bounded(1);
                std::mem::forget(_rx); // keep the channel open for the dummy job
                queue.push_back(Job {
                    query: tree_query(),
                    opts: QueryOptions::default(),
                    done,
                });
            }
            sched.in_flight += queued;
            sched.by_name.insert(name.to_string(), sched.tenants.len());
            sched.tenants.push(TenantState {
                name: name.to_string(),
                weight,
                pass: 0,
                queue,
                stats: EnumStats::default(),
                completed: 0,
                rejected: 0,
                deadline_exceeded: 0,
            });
        }
        sched
    }

    #[test]
    fn stride_dispatch_is_weight_proportional_and_deterministic() {
        let mut sched = scheduler(&[("a", 2, 8), ("b", 1, 4)]);
        let mut order = String::new();
        while let Some((i, _job)) = sched.next_job() {
            order.push_str(&sched.tenants[i].name);
        }
        // Weight 2:1 → `a` is dispatched twice as often; ties break by
        // name, so the order is fully deterministic.
        assert_eq!(order, "abaabaabaaba");
    }

    #[test]
    fn equal_weights_round_robin() {
        let mut sched = scheduler(&[("x", 1, 3), ("y", 1, 3)]);
        let mut order = String::new();
        while let Some((i, _job)) = sched.next_job() {
            order.push_str(&sched.tenants[i].name);
        }
        assert_eq!(order, "xyxyxy");
    }

    #[test]
    fn admission_rejects_beyond_tenant_queue_depth() {
        let engine = EnumerationEngine::with_config(
            square(),
            EngineConfig {
                workers: 1,
                max_in_flight: 16,
                tenant_queue_depth: 2,
                cache_capacity_bytes: None,
            },
        );
        engine.pause(); // hold jobs in the queue deterministically
        let s = engine.session("t");
        let t1 = s.submit(tree_query(), QueryOptions::default()).unwrap();
        let t2 = s.submit(tree_query(), QueryOptions::default()).unwrap();
        let err = s.submit(tree_query(), QueryOptions::default()).unwrap_err();
        assert_eq!(
            err,
            SteinerError::AdmissionRejected {
                in_flight: 2,
                capacity: 2
            }
        );
        assert_eq!(s.report().rejected, 1);
        engine.resume();
        assert!(t1.wait().is_complete());
        assert!(t2.wait().is_complete());
    }

    #[test]
    fn admission_rejects_beyond_global_pool() {
        let engine = EnumerationEngine::with_config(
            square(),
            EngineConfig {
                workers: 1,
                max_in_flight: 2,
                tenant_queue_depth: 8,
                cache_capacity_bytes: None,
            },
        );
        engine.pause();
        let a = engine.session("a");
        let b = engine.session("b");
        let _t1 = a.submit(tree_query(), QueryOptions::default()).unwrap();
        let _t2 = a.submit(tree_query(), QueryOptions::default()).unwrap();
        let err = b.submit(tree_query(), QueryOptions::default()).unwrap_err();
        assert_eq!(
            err,
            SteinerError::AdmissionRejected {
                in_flight: 2,
                capacity: 2
            }
        );
        engine.resume();
        engine.wait_idle();
        assert_eq!(engine.in_flight(), 0);
    }

    #[test]
    fn directed_query_without_digraph_is_unsupported_at_submit() {
        let engine = EnumerationEngine::new(square());
        let s = engine.session("t");
        let err = s
            .submit(
                Query::DirectedSteinerTree {
                    root: VertexId(0),
                    terminals: vec![VertexId(2)],
                },
                QueryOptions::default(),
            )
            .unwrap_err();
        assert!(matches!(err, SteinerError::Unsupported(_)));
    }

    #[test]
    fn drop_drains_queued_work() {
        let engine = EnumerationEngine::with_config(
            square(),
            EngineConfig {
                workers: 1,
                ..EngineConfig::default()
            },
        );
        engine.pause(); // nothing dispatches until drop flips shutdown
        let s = engine.session("t");
        let tickets: Vec<Ticket> = (0..4)
            .map(|_| s.submit(tree_query(), QueryOptions::default()).unwrap())
            .collect();
        drop(engine);
        for t in tickets {
            let outcome = t.wait();
            assert!(outcome.is_complete());
            assert_eq!(outcome.solutions.len(), 2);
        }
    }

    #[test]
    fn expired_deadline_resolves_without_running() {
        let engine = EnumerationEngine::new(square());
        let s = engine.session("t");
        let opts =
            QueryOptions::default().deadline(Instant::now() - std::time::Duration::from_millis(1));
        let outcome = s.run(tree_query(), opts).unwrap();
        assert_eq!(outcome.status, Err(SteinerError::DeadlineExceeded));
        assert!(outcome.solutions.is_empty());
        assert_eq!(s.report().deadline_exceeded, 1);
    }

    #[test]
    fn snapshot_restores_into_fresh_engine_as_hits() {
        let engine = EnumerationEngine::new(square());
        let s = engine.session("t");
        let cold = s.run(tree_query(), QueryOptions::default()).unwrap();
        assert_eq!(cold.stats.cache_misses, 1);
        let blob = engine.snapshot();

        let restarted = EnumerationEngine::new(square());
        assert_eq!(restarted.restore(&blob).unwrap(), 1);
        let warm = restarted
            .session("t")
            .run(tree_query(), QueryOptions::default())
            .unwrap();
        assert_eq!(warm.stats.cache_hits, 1);
        assert_eq!(warm.solutions, cold.solutions);
    }

    #[test]
    fn restore_rejects_wrong_graph_and_corruption_atomically() {
        let engine = EnumerationEngine::new(square());
        let s = engine.session("t");
        s.run(tree_query(), QueryOptions::default()).unwrap();
        let blob = engine.snapshot();

        // Different graph → every entry's fingerprint mismatches.
        let other =
            EnumerationEngine::new(UndirectedGraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap());
        assert!(matches!(
            other.restore(&blob),
            Err(SnapshotError::GraphMismatch { .. })
        ));
        let (edge_stats, _) = other.cache_stats();
        assert_eq!(edge_stats.entries, 0, "rejected restore must not commit");

        // Truncated frame.
        let fresh = EnumerationEngine::new(square());
        assert!(matches!(
            fresh.restore(&blob[..blob.len() - 1]),
            Err(SnapshotError::Corrupted(_) | SnapshotError::ChecksumMismatch)
        ));
        // Trailing junk.
        let mut long = blob;
        long.push(0);
        assert!(matches!(
            fresh.restore(&long),
            Err(SnapshotError::Corrupted(_))
        ));
        let (edge_stats, _) = fresh.cache_stats();
        assert_eq!(edge_stats.entries, 0);
    }
}
