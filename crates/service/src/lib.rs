//! A long-lived, multi-tenant enumeration service over the
//! `steiner-core` engine — the serving layer for *Linear-Delay
//! Enumeration for Minimal Steiner Problems* (PODS 2022).
//!
//! One [`EnumerationEngine`] owns a graph (optionally with a directed
//! view), a pool of worker threads, and two shared
//! [`ResultCache`](steiner_core::ResultCache)s (edge-item for the three
//! undirected problems, arc-item for the directed one). Tenants attach
//! via [`EnumerationEngine::session`] and submit [`Query`]s; each
//! resolves a [`Ticket`] into a [`QueryOutcome`] whose solution stream
//! is **byte-identical** to a one-shot
//! [`Enumeration`](steiner_core::Enumeration) run of the same query —
//! the service adds scheduling and sharing around the engine, never
//! between the engine and the output.
//!
//! Five concerns make it a service rather than a function call:
//!
//! - **Admission control** — a global in-flight cap plus a per-tenant
//!   queue-depth cap ([`EngineConfig`]). A submission beyond either cap
//!   is refused *immediately* with a typed
//!   [`SteinerError::AdmissionRejected`](steiner_core::SteinerError::AdmissionRejected);
//!   the engine never queues unboundedly.
//! - **Deadlines** — [`QueryOptions::deadline`] bounds a query's
//!   wall-clock time (queue wait included). An expired query resolves
//!   to [`SteinerError::DeadlineExceeded`](steiner_core::SteinerError::DeadlineExceeded)
//!   carrying the valid prefix enumerated so far; incomplete runs are
//!   never recorded in the shared caches.
//! - **Fair scheduling** — dispatch is stride-scheduled weighted
//!   round-robin across tenants with queued work: deterministic, and
//!   proportional to each tenant's weight
//!   ([`EnumerationEngine::session_with_weight`]).
//! - **Live mutation** — the serving graph is not frozen:
//!   [`EnumerationEngine::apply_mutations`] (and
//!   [`apply_arc_mutations`](EnumerationEngine::apply_arc_mutations) for
//!   the directed view) applies a [`GraphMutation`] batch atomically,
//!   serialized against in-flight queries by an epoch fence — every
//!   query is pinned to the serving epoch at admission and streams
//!   exactly what a one-shot run on that graph version streams. Each
//!   committed batch advances [`EnumerationEngine::epoch`] and
//!   invalidates exactly the cache entries whose graph *regions* it
//!   touched; the returned [`MutationOutcome`] reports the touched
//!   regions and the retained/invalidated counters (accumulated in
//!   [`EnumerationEngine::mutation_stats`]).
//! - **Warm restart** — [`EnumerationEngine::snapshot`] persists both
//!   caches in a versioned, checksummed format;
//!   [`EnumerationEngine::restore`] on a fresh engine over the same
//!   graph validates everything (rejecting corruption, version skew,
//!   and wrong-graph snapshots with typed
//!   [`SnapshotError`](steiner_core::SnapshotError)s) and then answers
//!   repeated queries as cache hits — no search, same bytes.
//!
//! ```
//! use std::ops::ControlFlow;
//! use steiner_graph::{UndirectedGraph, VertexId};
//! use steiner_service::{EnumerationEngine, Query, QueryOptions};
//!
//! let g = UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
//! let engine = EnumerationEngine::new(g.clone());
//!
//! // Two tenants share the engine (and its result caches).
//! let alice = engine.session("alice");
//! let bob = engine.session("bob");
//! let q = Query::SteinerTree { terminals: vec![VertexId(0), VertexId(2)] };
//! let a = alice.run(q.clone(), QueryOptions::default()).unwrap();
//! let b = bob.run(q.clone(), QueryOptions::default()).unwrap();
//! assert_eq!(a.solutions, b.solutions); // same answer ...
//! assert_eq!(b.stats.cache_hits, 1); // ... and Bob's replayed from cache.
//!
//! // The stream matches a one-shot engine run byte for byte.
//! let mut oneshot = Vec::new();
//! steiner_core::Enumeration::new(steiner_core::SteinerTree::new(&g, &[VertexId(0), VertexId(2)]))
//!     .for_each(|t| {
//!         oneshot.push(t.to_vec());
//!         ControlFlow::Continue(())
//!     })
//!     .unwrap();
//! assert_eq!(a.solutions.edges().unwrap(), &oneshot[..]);
//!
//! // Warm restart: snapshot, build a fresh engine, restore, replay.
//! let blob = engine.snapshot();
//! let restarted = EnumerationEngine::new(g.clone());
//! assert!(restarted.restore(&blob).unwrap() >= 1);
//! let carol = restarted.session("carol");
//! let warm = carol.run(q, QueryOptions::default()).unwrap();
//! assert_eq!(warm.stats.cache_hits, 1);
//! assert_eq!(warm.solutions, a.solutions);
//! ```
//!
//! The example under `examples/enumeration_service.rs` exercises the
//! full surface — concurrent tenants, admission rejections, a
//! deadline'd query, and a warm restart.

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod engine;
mod query;
mod session;

pub use engine::{
    DigraphRef, EngineConfig, EnumerationEngine, GraphRef, MutationOutcome, TenantReport,
};
pub use query::{Query, QueryOptions, QueryOutcome, SolutionItems, Ticket};
pub use session::Session;
// The mutation vocabulary is defined by the graph layer; re-exported so
// service callers can drive a live graph without a direct dependency.
pub use steiner_graph::epoch::{ArcMutation, GraphMutation};
