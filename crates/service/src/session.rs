//! Tenant handles: the submission front-end of the engine.

use std::sync::Arc;

use steiner_core::SteinerError;

use crate::engine::{self, Shared, TenantReport};
use crate::query::{Query, QueryOptions, QueryOutcome, Ticket};

/// A tenant's handle onto an [`EnumerationEngine`](crate::EnumerationEngine).
///
/// Sessions are cheap to clone and safe to use from any thread; every
/// clone (and every [`session`](crate::EnumerationEngine::session) call
/// with the same name) addresses the *same* tenant — one queue, one
/// weight, one set of counters. A session stays usable after the engine
/// handle is dropped, but submissions are then refused (the engine
/// drains and shuts down).
#[derive(Clone)]
pub struct Session {
    shared: Arc<Shared>,
    tenant: usize,
}

impl Session {
    pub(crate) fn new(shared: Arc<Shared>, tenant: usize) -> Self {
        Session { shared, tenant }
    }

    /// The tenant's name.
    pub fn name(&self) -> String {
        engine::tenant_name(&self.shared, self.tenant)
    }

    /// Submits a query through admission control.
    ///
    /// Returns a [`Ticket`] once admitted — the query is queued behind
    /// the tenant's earlier submissions and dispatched by the engine's
    /// weighted round-robin. Rejections are immediate and typed:
    /// [`SteinerError::AdmissionRejected`] when the global in-flight
    /// pool or this tenant's queue is full,
    /// [`SteinerError::Unsupported`] for a directed query on an engine
    /// without a directed view (or after shutdown began). A rejected
    /// query never ran and left no trace beyond the tenant's `rejected`
    /// counter.
    pub fn submit(&self, query: Query, opts: QueryOptions) -> Result<Ticket, SteinerError> {
        engine::submit(&self.shared, self.tenant, query, opts)
    }

    /// [`Self::submit`] + [`Ticket::wait`]: blocks until the query
    /// finishes and returns its outcome. Admission rejections surface
    /// as the `Err` arm; execution-level errors (including
    /// [`SteinerError::DeadlineExceeded`]) arrive inside the
    /// [`QueryOutcome::status`] so the partial prefix stays accessible.
    pub fn run(&self, query: Query, opts: QueryOptions) -> Result<QueryOutcome, SteinerError> {
        Ok(self.submit(query, opts)?.wait())
    }

    /// This tenant's scheduler state and lifetime counters.
    pub fn report(&self) -> TenantReport {
        engine::tenant_report(&self.shared, self.tenant)
    }
}
