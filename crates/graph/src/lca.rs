//! Lowest common ancestors in rooted forests.
//!
//! The Steiner-forest unique-completion step (§5, Theorem 25) computes the
//! LCA of every terminal pair in the forest `F + B` and then marks the
//! edges on terminal-to-LCA paths in descending LCA-height order. The paper
//! uses the Harel–Tarjan O(n)-preprocessing structure \[16\]; we substitute
//! the standard Euler-tour + sparse-table structure — O(n log n)
//! preprocessing, identical O(1) queries (see DESIGN.md §9.1).

use crate::ids::VertexId;

/// Constant-time LCA queries over a rooted forest given by parent pointers.
#[derive(Clone, Debug)]
pub struct Lca {
    /// `depth[v]` — depth of `v` in its tree (`u32::MAX` if absent).
    pub depth: Vec<u32>,
    /// `root[v]` — the root of `v`'s tree (`u32::MAX` if absent); used to
    /// reject cross-tree queries.
    root: Vec<u32>,
    /// First occurrence of each vertex in the Euler tour (`u32::MAX` if absent).
    first_occurrence: Vec<u32>,
    /// Euler tour of vertices.
    tour: Vec<u32>,
    /// Sparse table of minimum-depth tour positions: `table[k][i]` is the
    /// position of the minimum-depth vertex in `tour[i .. i + 2^k]`.
    table: Vec<Vec<u32>>,
}

impl Lca {
    /// Builds the structure from parent pointers. `parent[v] == None` marks
    /// `v` as a root *if* `present[v]`, otherwise `v` is ignored entirely.
    pub fn from_parents(parent: &[Option<VertexId>], present: &[bool]) -> Self {
        let n = parent.len();
        debug_assert_eq!(present.len(), n);
        // Children lists.
        let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut roots: Vec<u32> = Vec::new();
        for v in 0..n {
            if !present[v] {
                continue;
            }
            match parent[v] {
                Some(p) => {
                    debug_assert!(present[p.index()], "parent of a present vertex is present");
                    children[p.index()].push(v as u32);
                }
                None => roots.push(v as u32),
            }
        }
        let mut depth = vec![u32::MAX; n];
        let mut root = vec![u32::MAX; n];
        let mut first_occurrence = vec![u32::MAX; n];
        let mut tour: Vec<u32> = Vec::with_capacity(2 * n);
        // Iterative Euler tour: (vertex, next child index).
        let mut stack: Vec<(u32, usize)> = Vec::new();
        for &r in &roots {
            depth[r as usize] = 0;
            root[r as usize] = r;
            stack.push((r, 0));
            first_occurrence[r as usize] = tour.len() as u32;
            tour.push(r);
            while let Some(&mut (u, ref mut next)) = stack.last_mut() {
                if let Some(&c) = children[u as usize].get(*next) {
                    *next += 1;
                    depth[c as usize] = depth[u as usize] + 1;
                    root[c as usize] = r;
                    first_occurrence[c as usize] = tour.len() as u32;
                    tour.push(c);
                    stack.push((c, 0));
                } else {
                    stack.pop();
                    if let Some(&(p, _)) = stack.last() {
                        tour.push(p);
                    }
                }
            }
        }
        // Sparse table over tour positions, comparing by vertex depth.
        let len = tour.len();
        let levels = if len <= 1 {
            1
        } else {
            len.ilog2() as usize + 1
        };
        let mut table: Vec<Vec<u32>> = Vec::with_capacity(levels);
        table.push((0..len as u32).collect());
        let min_pos = |depth: &[u32], tour: &[u32], a: u32, b: u32| -> u32 {
            if depth[tour[a as usize] as usize] <= depth[tour[b as usize] as usize] {
                a
            } else {
                b
            }
        };
        for k in 1..levels {
            let half = 1usize << (k - 1);
            let prev = &table[k - 1];
            let width = 1usize << k;
            let mut row = Vec::with_capacity(len.saturating_sub(width) + 1);
            for i in 0..=len.saturating_sub(width) {
                row.push(min_pos(&depth, &tour, prev[i], prev[i + half]));
            }
            table.push(row);
        }
        Lca {
            depth,
            root,
            first_occurrence,
            tour,
            table,
        }
    }

    /// Whether `v` participates in the forest.
    pub fn contains(&self, v: VertexId) -> bool {
        self.first_occurrence[v.index()] != u32::MAX
    }

    /// The lowest common ancestor of `u` and `v`, or `None` if they live in
    /// different trees (or either is absent). O(1).
    pub fn lca(&self, u: VertexId, v: VertexId) -> Option<VertexId> {
        if !self.contains(u) || !self.contains(v) {
            return None;
        }
        if self.root[u.index()] != self.root[v.index()] {
            return None;
        }
        let (mut a, mut b) = (
            self.first_occurrence[u.index()],
            self.first_occurrence[v.index()],
        );
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        let span = (b - a + 1) as usize;
        let k = span.ilog2() as usize;
        let left = self.table[k][a as usize];
        let right = self.table[k][(b as usize + 1) - (1usize << k)];
        let pos = if self.depth[self.tour[left as usize] as usize]
            <= self.depth[self.tour[right as usize] as usize]
        {
            left
        } else {
            right
        };
        Some(VertexId(self.tour[pos as usize]))
    }

    /// Depth accessor (`u32::MAX` for absent vertices).
    pub fn depth_of(&self, v: VertexId) -> u32 {
        self.depth[v.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// parent array for:        0
    ///                         / \
    ///                        1   2
    ///                       / \   \
    ///                      3   4   5
    ///                     /
    ///                    6
    fn sample_parents() -> Vec<Option<VertexId>> {
        vec![
            None,
            Some(VertexId(0)),
            Some(VertexId(0)),
            Some(VertexId(1)),
            Some(VertexId(1)),
            Some(VertexId(2)),
            Some(VertexId(3)),
        ]
    }

    #[test]
    fn basic_lca_queries() {
        let parents = sample_parents();
        let lca = Lca::from_parents(&parents, &[true; 7]);
        assert_eq!(lca.lca(VertexId(3), VertexId(4)), Some(VertexId(1)));
        assert_eq!(lca.lca(VertexId(6), VertexId(4)), Some(VertexId(1)));
        assert_eq!(lca.lca(VertexId(6), VertexId(5)), Some(VertexId(0)));
        assert_eq!(lca.lca(VertexId(3), VertexId(3)), Some(VertexId(3)));
        assert_eq!(lca.lca(VertexId(6), VertexId(3)), Some(VertexId(3)));
        assert_eq!(lca.depth_of(VertexId(6)), 3);
    }

    #[test]
    fn cross_tree_queries_return_none() {
        // Two trees: 0 -> 1 and 2 -> 3.
        let parents = vec![None, Some(VertexId(0)), None, Some(VertexId(2))];
        let lca = Lca::from_parents(&parents, &[true; 4]);
        assert_eq!(lca.lca(VertexId(1), VertexId(3)), None);
        assert_eq!(lca.lca(VertexId(0), VertexId(1)), Some(VertexId(0)));
    }

    #[test]
    fn absent_vertices_are_rejected() {
        let parents = vec![None, Some(VertexId(0)), None];
        let present = vec![true, true, false];
        let lca = Lca::from_parents(&parents, &present);
        assert!(!lca.contains(VertexId(2)));
        assert_eq!(lca.lca(VertexId(0), VertexId(2)), None);
    }

    #[test]
    fn matches_naive_on_random_trees() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for _ in 0..30 {
            let n = 2 + rng.gen_range(0..40);
            // Random recursive tree rooted at 0.
            let mut parents: Vec<Option<VertexId>> = vec![None];
            for v in 1..n {
                parents.push(Some(VertexId::new(rng.gen_range(0..v))));
            }
            let lca = Lca::from_parents(&parents, &vec![true; n]);
            // Naive ancestor-walk LCA.
            let naive = |mut u: usize, mut v: usize| -> usize {
                let depth = |mut x: usize| {
                    let mut d = 0;
                    while let Some(p) = parents[x] {
                        x = p.index();
                        d += 1;
                    }
                    d
                };
                let (mut du, mut dv) = (depth(u), depth(v));
                while du > dv {
                    u = parents[u].unwrap().index();
                    du -= 1;
                }
                while dv > du {
                    v = parents[v].unwrap().index();
                    dv -= 1;
                }
                while u != v {
                    u = parents[u].unwrap().index();
                    v = parents[v].unwrap().index();
                }
                u
            };
            for _ in 0..50 {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                assert_eq!(
                    lca.lca(VertexId::new(u), VertexId::new(v)),
                    Some(VertexId::new(naive(u, v))),
                    "n={n} u={u} v={v}"
                );
            }
        }
    }
}
