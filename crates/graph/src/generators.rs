//! Workload generators.
//!
//! The paper has no datasets (it is a theory paper), so the benchmark and
//! test workloads are synthetic families chosen to exercise its claims:
//!
//! * [`theta_graph`] / [`theta_chain`] — solution-dense families where the
//!   number of s-t paths (and of minimal Steiner trees) grows as `kᵇ`,
//!   stressing the *delay* rather than the total time;
//! * [`grid`] / [`ladder`] — planar instances with many bridgeless regions;
//! * [`random_connected_graph`] — G(n, m) scaling sweeps;
//! * [`random_rooted_dag`] / [`layered_digraph`] — directed Steiner inputs;
//! * line graphs of random graphs — claw-free inputs for §7 (see
//!   [`random_claw_free`]).

use crate::digraph::DiGraph;
use crate::ids::VertexId;
use crate::line_graph::line_graph;
use crate::undirected::UndirectedGraph;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashSet;

/// Path with `n` vertices (`n − 1` edges).
pub fn path(n: usize) -> UndirectedGraph {
    let mut g = UndirectedGraph::with_capacity(n, n.saturating_sub(1));
    for i in 1..n {
        g.add_edge_indices(i - 1, i).expect("path edge");
    }
    g
}

/// Cycle with `n ≥ 3` vertices.
pub fn cycle(n: usize) -> UndirectedGraph {
    assert!(n >= 3, "cycle needs at least 3 vertices");
    let mut g = path(n);
    g.add_edge_indices(n - 1, 0).expect("closing edge");
    g
}

/// Complete graph `K_n`.
pub fn complete(n: usize) -> UndirectedGraph {
    let mut g = UndirectedGraph::with_capacity(n, n * (n.saturating_sub(1)) / 2);
    for u in 0..n {
        for v in u + 1..n {
            g.add_edge_indices(u, v).expect("complete edge");
        }
    }
    g
}

/// Complete bipartite graph `K_{a,b}` (left side `0..a`, right `a..a+b`).
pub fn complete_bipartite(a: usize, b: usize) -> UndirectedGraph {
    let mut g = UndirectedGraph::with_capacity(a + b, a * b);
    for u in 0..a {
        for v in a..a + b {
            g.add_edge_indices(u, v).expect("bipartite edge");
        }
    }
    g
}

/// Star with center `0` and `leaves` leaves `1..=leaves`.
pub fn star(leaves: usize) -> UndirectedGraph {
    let mut g = UndirectedGraph::with_capacity(leaves + 1, leaves);
    for v in 1..=leaves {
        g.add_edge_indices(0, v).expect("star edge");
    }
    g
}

/// `rows × cols` grid graph; vertex `(r, c)` has index `r * cols + c`.
pub fn grid(rows: usize, cols: usize) -> UndirectedGraph {
    let n = rows * cols;
    let mut g = UndirectedGraph::with_capacity(n, 2 * n);
    for r in 0..rows {
        for c in 0..cols {
            let v = r * cols + c;
            if c + 1 < cols {
                g.add_edge_indices(v, v + 1).expect("grid edge");
            }
            if r + 1 < rows {
                g.add_edge_indices(v, v + cols).expect("grid edge");
            }
        }
    }
    g
}

/// Ladder graph: a `2 × n` grid.
pub fn ladder(n: usize) -> UndirectedGraph {
    grid(2, n)
}

/// Theta graph: vertices `s = 0` and `t = 1` joined by `paths` internally
/// disjoint paths of `length ≥ 1` edges each. Has exactly `paths` s-t paths.
pub fn theta_graph(paths: usize, length: usize) -> UndirectedGraph {
    assert!(length >= 1, "paths need at least one edge");
    assert!(paths >= 1);
    let internal = length - 1;
    let n = 2 + paths * internal;
    let mut g = UndirectedGraph::with_capacity(n, paths * length);
    for p in 0..paths {
        let mut prev = 0; // s
        for i in 0..internal {
            let v = 2 + p * internal + i;
            g.add_edge_indices(prev, v).expect("theta edge");
            prev = v;
        }
        g.add_edge_indices(prev, 1).expect("theta edge");
    }
    g
}

/// A chain of `blocks` theta blocks, each offering `width` parallel
/// two-edge routes between consecutive hubs. The hubs are
/// `0, 1, …, blocks`; the number of hub-to-hub paths from `0` to `blocks`
/// is `width^blocks`, so enumeration output is exponential while `n + m`
/// stays linear in `blocks · width` — the delay stress test.
pub fn theta_chain(blocks: usize, width: usize) -> UndirectedGraph {
    assert!(width >= 1 && blocks >= 1);
    let n = (blocks + 1) + blocks * width;
    let mut g = UndirectedGraph::with_capacity(n, 2 * blocks * width);
    for b in 0..blocks {
        let (s, t) = (b, b + 1);
        for w in 0..width {
            let mid = blocks + 1 + b * width + w;
            g.add_edge_indices(s, mid).expect("theta-chain edge");
            g.add_edge_indices(mid, t).expect("theta-chain edge");
        }
    }
    g
}

/// Uniformly random recursive tree on `n` vertices: vertex `v` attaches to
/// a uniform vertex among `0..v`.
pub fn random_tree<R: Rng>(n: usize, rng: &mut R) -> UndirectedGraph {
    let mut g = UndirectedGraph::with_capacity(n, n.saturating_sub(1));
    for v in 1..n {
        let parent = rng.gen_range(0..v);
        g.add_edge_indices(parent, v).expect("tree edge");
    }
    g
}

/// Connected simple random graph: a random tree plus distinct random extra
/// edges up to `m` total. `m` is clamped to `[n − 1, n(n−1)/2]`.
pub fn random_connected_graph<R: Rng>(n: usize, m: usize, rng: &mut R) -> UndirectedGraph {
    assert!(n >= 1);
    let max_m = n * n.saturating_sub(1) / 2;
    let m = m.max(n.saturating_sub(1)).min(max_m);
    let mut g = random_tree(n, rng);
    let mut present: HashSet<(usize, usize)> = g
        .edges()
        .map(|e| {
            let (u, v) = g.endpoints(e);
            (u.index().min(v.index()), u.index().max(v.index()))
        })
        .collect();
    while g.num_edges() < m {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if present.insert(key) {
            g.add_edge_indices(u, v).expect("extra edge");
        }
    }
    g
}

/// Random simple digraph with `m` arcs (no self-loops, no parallel arcs;
/// antiparallel pairs allowed). `m` is clamped to `n(n−1)`.
pub fn random_digraph<R: Rng>(n: usize, m: usize, rng: &mut R) -> DiGraph {
    assert!(n >= 1);
    let m = m.min(n * n.saturating_sub(1));
    let mut d = DiGraph::with_capacity(n, m);
    let mut present: HashSet<(usize, usize)> = HashSet::with_capacity(m);
    while d.num_arcs() < m {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v {
            continue;
        }
        if present.insert((u, v)) {
            d.add_arc_indices(u, v).expect("random arc");
        }
    }
    d
}

/// Random DAG: arcs only go forward along a random permutation, plus a
/// spine guaranteeing that vertex `order[0]` reaches everything. Returns
/// the digraph and its unique source.
pub fn random_rooted_dag<R: Rng>(n: usize, m: usize, rng: &mut R) -> (DiGraph, VertexId) {
    assert!(n >= 1);
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    let mut d = DiGraph::with_capacity(n, m);
    let mut present: HashSet<(usize, usize)> = HashSet::new();
    // Spine: order[i] -> order[i+1], so the first vertex reaches all.
    for i in 1..n {
        let (u, v) = (order[i - 1], order[i]);
        present.insert((u, v));
        d.add_arc_indices(u, v).expect("spine arc");
    }
    let max_m = n * n.saturating_sub(1) / 2;
    let m = m.max(n.saturating_sub(1)).min(max_m);
    let mut rank = vec![0usize; n];
    for (i, &v) in order.iter().enumerate() {
        rank[v] = i;
    }
    while d.num_arcs() < m {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v || rank[u] >= rank[v] {
            continue;
        }
        if present.insert((u, v)) {
            d.add_arc_indices(u, v).expect("dag arc");
        }
    }
    (d, VertexId::new(order[0]))
}

/// Layered digraph: a root, then `layers` layers of `width` vertices; every
/// vertex has arcs to all vertices in the next layer. The root reaches all
/// vertices and the digraph is rich in rooted Steiner trees.
pub fn layered_digraph(layers: usize, width: usize) -> (DiGraph, VertexId) {
    assert!(layers >= 1 && width >= 1);
    let n = 1 + layers * width;
    let mut d = DiGraph::with_capacity(n, width + (layers - 1) * width * width);
    let root = VertexId(0);
    for w in 0..width {
        d.add_arc_indices(0, 1 + w).expect("root arc");
    }
    for l in 1..layers {
        for u in 0..width {
            for v in 0..width {
                d.add_arc_indices(1 + (l - 1) * width + u, 1 + l * width + v)
                    .expect("layer arc");
            }
        }
    }
    (d, root)
}

/// Samples `t` distinct vertices of a graph with `n` vertices.
pub fn random_terminals<R: Rng>(n: usize, t: usize, rng: &mut R) -> Vec<VertexId> {
    assert!(t <= n, "cannot sample {t} terminals from {n} vertices");
    let mut all: Vec<usize> = (0..n).collect();
    all.shuffle(rng);
    let mut picked: Vec<VertexId> = all[..t].iter().map(|&v| VertexId::new(v)).collect();
    picked.sort_unstable();
    picked
}

/// A random claw-free graph: the line graph of a random connected graph on
/// `base_n` vertices with `base_m` edges (line graphs are claw-free).
pub fn random_claw_free<R: Rng>(base_n: usize, base_m: usize, rng: &mut R) -> UndirectedGraph {
    line_graph(&random_connected_graph(base_n, base_m, rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::connected_components;
    use rand::SeedableRng;

    #[test]
    fn structured_families_have_expected_sizes() {
        assert_eq!(path(5).num_edges(), 4);
        assert_eq!(cycle(5).num_edges(), 5);
        assert_eq!(complete(5).num_edges(), 10);
        assert_eq!(complete_bipartite(2, 3).num_edges(), 6);
        assert_eq!(star(4).num_edges(), 4);
        assert_eq!(grid(3, 4).num_vertices(), 12);
        assert_eq!(grid(3, 4).num_edges(), 3 * 3 + 2 * 4);
        assert_eq!(ladder(5).num_vertices(), 10);
    }

    #[test]
    fn theta_graph_shape() {
        let g = theta_graph(3, 2);
        assert_eq!(g.num_vertices(), 2 + 3);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.degree(VertexId(0)), 3);
        assert_eq!(g.degree(VertexId(1)), 3);
        let c = connected_components(&g, None);
        assert_eq!(c.count, 1);
    }

    #[test]
    fn theta_graph_length_one_is_parallel_edges() {
        let g = theta_graph(4, 1);
        assert_eq!(g.num_vertices(), 2);
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn theta_chain_shape() {
        let g = theta_chain(3, 2);
        assert_eq!(g.num_vertices(), 4 + 6);
        assert_eq!(g.num_edges(), 12);
        assert_eq!(connected_components(&g, None).count, 1);
    }

    #[test]
    fn random_tree_is_connected_tree() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for n in 1..30 {
            let g = random_tree(n, &mut rng);
            assert_eq!(g.num_edges(), n - 1);
            assert_eq!(
                connected_components(&g, None).count,
                1.min(n).max(usize::from(n > 0))
            );
        }
    }

    #[test]
    fn random_connected_graph_is_connected_and_simple() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for case in 0..20 {
            let n = 2 + case;
            let g = random_connected_graph(n, n + 3, &mut rng);
            assert_eq!(connected_components(&g, None).count, 1);
            let mut seen = HashSet::new();
            for e in g.edges() {
                let (u, v) = g.endpoints(e);
                let key = (u.0.min(v.0), u.0.max(v.0));
                assert!(
                    seen.insert(key),
                    "no parallel edges in the generator output"
                );
            }
        }
    }

    #[test]
    fn random_connected_graph_clamps_m() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let g = random_connected_graph(4, 100, &mut rng);
        assert_eq!(g.num_edges(), 6, "clamped to K_4");
        let g2 = random_connected_graph(5, 0, &mut rng);
        assert_eq!(g2.num_edges(), 4, "clamped up to a spanning tree");
    }

    #[test]
    fn rooted_dag_root_reaches_all() {
        use crate::connectivity::reachable_from;
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        for _ in 0..10 {
            let (d, root) = random_rooted_dag(12, 25, &mut rng);
            let reach = reachable_from(&d, root, None);
            assert!(reach.iter().all(|&b| b));
        }
    }

    #[test]
    fn layered_digraph_shape() {
        use crate::connectivity::reachable_from;
        let (d, root) = layered_digraph(3, 2);
        assert_eq!(d.num_vertices(), 7);
        assert_eq!(d.num_arcs(), 2 + 4 + 4);
        assert!(reachable_from(&d, root, None).iter().all(|&b| b));
    }

    #[test]
    fn random_terminals_are_distinct_sorted() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let t = random_terminals(10, 4, &mut rng);
        assert_eq!(t.len(), 4);
        for w in t.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn random_claw_free_is_claw_free() {
        use crate::clawfree::is_claw_free;
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let g = random_claw_free(8, 12, &mut rng);
        assert!(is_claw_free(&g));
    }
}
