//! Graph epochs: mutable graphs with region-level fingerprints and delta
//! logs.
//!
//! The enumeration engine serves cached replay traffic keyed on graph
//! fingerprints. A whole-graph fingerprint cold-starts every cached query
//! on any mutation; this module makes invalidation *regional* instead.
//! A **region** is a connected component (weakly connected for digraphs),
//! canonically identified by its minimum vertex id. Each region carries a
//! 64-bit fingerprint folded (XOR) over per-vertex and per-edge hashes, so
//! two graphs agree on a region's fingerprint iff the region has the same
//! vertex set and the same edge-id/endpoint assignment — and, because
//! adjacency lists are sorted by edge id (see [`UndirectedGraph`]), iff
//! every enumeration stream confined to that region is byte-identical.
//!
//! [`EpochGraph`] / [`EpochDigraph`] wrap a graph with:
//!
//! * a monotone **epoch counter**, advanced once per mutation batch,
//! * a maintained [`RegionMap`] (region fingerprints kept incrementally on
//!   inserts, recomputed and diffed on removals),
//! * a bounded **delta log** ([`EpochGraph::deltas_since`]) so CSR views
//!   and classification state can replay mutations instead of rebuilding.
//!
//! All hashes use fixed splitmix64-style constants, so fingerprints are
//! stable across processes and can be embedded in snapshots.

use crate::digraph::{DiGraph, RemovedArc};
use crate::ids::{ArcId, EdgeId, VertexId};
use crate::undirected::{RemovedEdge, UndirectedGraph};
use crate::{GraphError, Result};

/// Seed for per-vertex hashes.
const SEED_VERTEX: u64 = 0x9e37_79b9_7f4a_7c15;
/// Seed for per-undirected-edge hashes.
const SEED_EDGE: u64 = 0xd1b5_4a32_d192_ed03;
/// Seed for per-arc hashes.
const SEED_ARC: u64 = 0x8cb9_2ba7_2f3d_8dd7;

/// How many epoch deltas each wrapper retains for replay.
const DELTA_LOG_CAP: usize = 64;

/// splitmix64 finalizer: a cheap, fixed, well-mixing 64-bit permutation.
#[inline]
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Hash of a vertex's membership in a region.
#[inline]
fn vertex_hash(v: VertexId) -> u64 {
    mix(SEED_VERTEX ^ u64::from(v.0))
}

/// Hash of an undirected edge: order-sensitive chain over (id, u, v).
#[inline]
fn edge_hash(e: EdgeId, u: VertexId, v: VertexId) -> u64 {
    let h = mix(SEED_EDGE ^ u64::from(e.0));
    let h = mix(h ^ u64::from(u.0));
    mix(h ^ u64::from(v.0))
}

/// Hash of an arc: order-sensitive chain over (id, tail, head).
#[inline]
fn arc_hash(a: ArcId, tail: VertexId, head: VertexId) -> u64 {
    let h = mix(SEED_ARC ^ u64::from(a.0));
    let h = mix(h ^ u64::from(tail.0));
    mix(h ^ u64::from(head.0))
}

/// Vertex → region labeling with per-region fingerprints.
///
/// Regions are connected components (weak components for digraphs); the
/// canonical region id is the minimum vertex id in the component, so ids
/// are stable under mutations that do not restructure the component.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RegionMap {
    /// `region[v]` = canonical region id of vertex `v`.
    region: Vec<u32>,
    /// `(region id, fingerprint)`, sorted by region id.
    fps: Vec<(u32, u64)>,
}

impl RegionMap {
    /// Labels the connected components of an undirected graph.
    pub fn of_undirected(g: &UndirectedGraph) -> Self {
        let n = g.num_vertices();
        let mut map = Self::label(n, |v, stack| {
            for (w, _) in g.neighbors(VertexId::new(v)) {
                stack.push(w.index());
            }
        });
        for e in g.edges() {
            let (u, v) = g.endpoints(e);
            map.xor_region_of(u, edge_hash(e, u, v));
        }
        map.finish_fps();
        map
    }

    /// Labels the weakly connected components of a digraph.
    pub fn of_digraph(d: &DiGraph) -> Self {
        let n = d.num_vertices();
        let mut map = Self::label(n, |v, stack| {
            for (w, _) in d.out_neighbors(VertexId::new(v)) {
                stack.push(w.index());
            }
            for (w, _) in d.in_neighbors(VertexId::new(v)) {
                stack.push(w.index());
            }
        });
        for a in d.arcs() {
            let (t, h) = d.arc(a);
            map.xor_region_of(t, arc_hash(a, t, h));
        }
        map.finish_fps();
        map
    }

    /// Shared labeling pass: ascending-order seeded DFS, so the canonical
    /// id of each region is its minimum vertex. Region fingerprints start
    /// as the fold of vertex hashes; the callers fold in edge/arc hashes.
    fn label(n: usize, mut push_neighbors: impl FnMut(usize, &mut Vec<usize>)) -> Self {
        const UNSET: u32 = u32::MAX;
        let mut region = vec![UNSET; n];
        let mut fps: Vec<(u32, u64)> = Vec::new();
        let mut stack = Vec::new();
        let mut nbrs = Vec::new();
        for start in 0..n {
            if region[start] != UNSET {
                continue;
            }
            let id = start as u32;
            let mut fp = 0u64;
            region[start] = id;
            stack.push(start);
            while let Some(v) = stack.pop() {
                fp ^= vertex_hash(VertexId::new(v));
                push_neighbors(v, &mut nbrs);
                for w in nbrs.drain(..) {
                    // Mark on push so each vertex is hashed exactly once.
                    if region[w] == UNSET {
                        region[w] = id;
                        stack.push(w);
                    }
                }
            }
            fps.push((id, fp));
        }
        RegionMap { region, fps }
    }

    /// Folds `h` into the fingerprint of `v`'s region (build-time helper;
    /// `fps` is still sorted because regions were discovered in ascending
    /// canonical-id order).
    fn xor_region_of(&mut self, v: VertexId, h: u64) {
        let id = self.region[v.index()];
        let idx = self
            .fps
            .binary_search_by_key(&id, |&(r, _)| r)
            .expect("every labeled vertex has a region entry");
        self.fps[idx].1 ^= h;
    }

    /// Normalizes the fingerprint table (sorted by region id).
    fn finish_fps(&mut self) {
        self.fps.sort_unstable_by_key(|&(r, _)| r);
    }

    /// Number of vertices covered by the labeling.
    pub fn num_vertices(&self) -> usize {
        self.region.len()
    }

    /// Canonical region id of `v`, or `None` if `v` is out of range.
    pub fn region_of(&self, v: VertexId) -> Option<u32> {
        self.region.get(v.index()).copied()
    }

    /// Fingerprint of a region, or `None` if no such region exists.
    pub fn fingerprint(&self, region: u32) -> Option<u64> {
        self.fps
            .binary_search_by_key(&region, |&(r, _)| r)
            .ok()
            .map(|i| self.fps[i].1)
    }

    /// All `(region id, fingerprint)` pairs, sorted by region id.
    pub fn regions(&self) -> &[(u32, u64)] {
        &self.fps
    }

    /// Whole-graph fingerprint: the XOR fold of every region fingerprint.
    pub fn fold(&self) -> u64 {
        self.fps.iter().fold(0, |acc, &(_, fp)| acc ^ fp)
    }

    /// The region signature covering `vertices`: the deduplicated, sorted
    /// `(region, fingerprint)` pairs of their regions. Out-of-range
    /// vertices are skipped — malformed queries must still produce a key
    /// (validation rejects them later).
    pub fn signature_of<I: IntoIterator<Item = VertexId>>(&self, vertices: I) -> RegionSignature {
        let mut pairs: Vec<(u32, u64)> = vertices
            .into_iter()
            .filter_map(|v| {
                let r = self.region_of(v)?;
                Some((r, self.fingerprint(r).expect("region exists")))
            })
            .collect();
        pairs.sort_unstable();
        pairs.dedup();
        RegionSignature { pairs }
    }

    /// Region ids whose fingerprint differs between `self` and `newer`
    /// (changed, appeared, or disappeared), sorted ascending.
    pub fn diff(&self, newer: &RegionMap) -> Vec<u32> {
        diff_fps(&self.fps, &newer.fps)
    }
}

/// Merge-walk of two sorted fingerprint tables; ids present in exactly one
/// table or carrying different fingerprints are "touched".
fn diff_fps(old: &[(u32, u64)], new: &[(u32, u64)]) -> Vec<u32> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < old.len() || j < new.len() {
        match (old.get(i), new.get(j)) {
            (Some(&(ro, fo)), Some(&(rn, fn_))) => {
                if ro == rn {
                    if fo != fn_ {
                        out.push(ro);
                    }
                    i += 1;
                    j += 1;
                } else if ro < rn {
                    out.push(ro);
                    i += 1;
                } else {
                    out.push(rn);
                    j += 1;
                }
            }
            (Some(&(ro, _)), None) => {
                out.push(ro);
                i += 1;
            }
            (None, Some(&(rn, _))) => {
                out.push(rn);
                j += 1;
            }
            (None, None) => unreachable!("the loop exits when both walks are exhausted"),
        }
    }
    out
}

/// The sorted, deduplicated `(region, fingerprint)` pairs a query touches.
///
/// This is the graph-side half of an epoch-qualified cache key: a cached
/// entry built under signature `S` is still valid iff every pair of `S`
/// matches the serving graph's current region map — checked for free by
/// hashed lookup, since the signature *is* part of the key.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionSignature {
    pairs: Vec<(u32, u64)>,
}

impl RegionSignature {
    /// Builds a signature from raw pairs (sorted and deduplicated here).
    pub fn from_pairs(mut pairs: Vec<(u32, u64)>) -> Self {
        pairs.sort_unstable();
        pairs.dedup();
        RegionSignature { pairs }
    }

    /// The `(region, fingerprint)` pairs, sorted by region id.
    pub fn pairs(&self) -> &[(u32, u64)] {
        &self.pairs
    }

    /// Whether the signature covers no regions.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Whether the signature touches `region`.
    pub fn touches(&self, region: u32) -> bool {
        self.pairs
            .binary_search_by_key(&region, |&(r, _)| r)
            .is_ok()
    }

    /// Whether the signature touches any id in `touched` (sorted ascending).
    pub fn intersects(&self, touched: &[u32]) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.pairs.len() && j < touched.len() {
            match self.pairs[i].0.cmp(&touched[j]) {
                std::cmp::Ordering::Equal => return true,
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
            }
        }
        false
    }

    /// XOR fold of the fingerprints (for compact display / stats keys).
    pub fn fold(&self) -> u64 {
        self.pairs.iter().fold(0, |acc, &(_, fp)| acc ^ fp)
    }
}

/// One edit to an undirected epoch graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GraphMutation {
    /// Insert the edge `{u, v}` (gets the next dense edge id).
    InsertEdge {
        /// First endpoint.
        u: VertexId,
        /// Second endpoint.
        v: VertexId,
    },
    /// Remove the edge with this id (the last edge is renumbered onto it).
    RemoveEdge(EdgeId),
}

/// One edit to a directed epoch graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArcMutation {
    /// Insert the arc `(tail, head)` (gets the next dense arc id).
    InsertArc {
        /// Tail (source) endpoint.
        tail: VertexId,
        /// Head (target) endpoint.
        head: VertexId,
    },
    /// Remove the arc with this id (the last arc is renumbered onto it).
    RemoveArc(ArcId),
}

/// A structural delta record for one undirected edge, precise enough for a
/// CSR view to mirror the endpoint-table edit without rescanning the graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeDelta {
    /// Edge `e = {u, v}` was appended.
    Inserted {
        /// Id assigned to the new edge.
        e: EdgeId,
        /// First endpoint.
        u: VertexId,
        /// Second endpoint.
        v: VertexId,
    },
    /// Edge `e = {u, v}` was removed; `moved` is the `(old id, u, v)` of
    /// the edge renumbered onto the freed id, if any.
    Removed {
        /// Id the removed edge held (now reused by `moved`, if present).
        e: EdgeId,
        /// First endpoint of the removed edge.
        u: VertexId,
        /// Second endpoint of the removed edge.
        v: VertexId,
        /// The relocated edge: `(old id, endpoints…)`.
        moved: Option<(EdgeId, VertexId, VertexId)>,
    },
}

/// A structural delta record for one arc (see [`EdgeDelta`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArcDelta {
    /// Arc `a = (tail, head)` was appended.
    Inserted {
        /// Id assigned to the new arc.
        a: ArcId,
        /// Tail endpoint.
        tail: VertexId,
        /// Head endpoint.
        head: VertexId,
    },
    /// Arc `a` was removed; `moved` is the relocated arc, if any.
    Removed {
        /// Id the removed arc held.
        a: ArcId,
        /// Tail endpoint of the removed arc.
        tail: VertexId,
        /// Head endpoint of the removed arc.
        head: VertexId,
        /// The relocated arc: `(old id, tail, head)`.
        moved: Option<(ArcId, VertexId, VertexId)>,
    },
}

/// The delta log entry produced by one mutation batch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeltaRecord<D> {
    /// The epoch this batch produced (post-mutation counter value).
    pub epoch: u64,
    /// The structural edits, in application order.
    pub edits: Vec<D>,
    /// Region ids whose fingerprint changed, sorted ascending.
    pub touched: Vec<u32>,
}

/// Summary of one applied mutation batch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MutationReport {
    /// The epoch the graph is now at.
    pub epoch: u64,
    /// Region ids whose fingerprint changed (old ∪ new ids), sorted.
    pub touched: Vec<u32>,
}

/// An [`UndirectedGraph`] under epoch management: every mutation batch
/// advances the epoch, updates region fingerprints, and appends a replay
/// delta. Read access is by `Deref`-style accessors; structural writes
/// must go through the mutation API so the bookkeeping stays truthful.
#[derive(Clone, Debug)]
pub struct EpochGraph {
    g: UndirectedGraph,
    epoch: u64,
    regions: RegionMap,
    log: Vec<DeltaRecord<EdgeDelta>>,
}

impl EpochGraph {
    /// Wraps a graph at epoch 0, computing its region map.
    pub fn new(g: UndirectedGraph) -> Self {
        let regions = RegionMap::of_undirected(&g);
        EpochGraph {
            g,
            epoch: 0,
            regions,
            log: Vec::new(),
        }
    }

    /// The wrapped graph (read-only).
    pub fn graph(&self) -> &UndirectedGraph {
        &self.g
    }

    /// Unwraps the graph, discarding epoch state.
    pub fn into_inner(self) -> UndirectedGraph {
        self.g
    }

    /// Current epoch (0 for a freshly wrapped graph).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The maintained region map (always consistent with [`Self::graph`]).
    pub fn regions(&self) -> &RegionMap {
        &self.regions
    }

    /// Whole-graph fingerprint: XOR fold of the maintained region
    /// fingerprints — no rescan of the graph.
    pub fn fingerprint(&self) -> u64 {
        self.regions.fold()
    }

    /// Checks a batch against the current graph without applying anything,
    /// simulating the evolving edge count so later edits in the batch see
    /// the ids earlier ones create or free.
    pub fn validate(&self, batch: &[GraphMutation]) -> Result<()> {
        let n = self.g.num_vertices();
        let mut m = self.g.num_edges();
        for mu in batch {
            match *mu {
                GraphMutation::InsertEdge { u, v } => {
                    if u.index() >= n || v.index() >= n {
                        let worst = u.index().max(v.index());
                        return Err(GraphError::VertexOutOfRange {
                            vertex: worst,
                            num_vertices: n,
                        });
                    }
                    if u == v {
                        return Err(GraphError::SelfLoop { vertex: u.index() });
                    }
                    m += 1;
                }
                GraphMutation::RemoveEdge(e) => {
                    if e.index() >= m {
                        return Err(GraphError::EdgeOutOfRange {
                            edge: e.index(),
                            num_edges: m,
                        });
                    }
                    m -= 1;
                }
            }
        }
        Ok(())
    }

    /// Inserts one edge; sugar for a single-edit [`Self::batch_apply`].
    /// Returns the new edge's id alongside the mutation report.
    pub fn insert_edge(&mut self, u: VertexId, v: VertexId) -> Result<(EdgeId, MutationReport)> {
        let report = self.batch_apply(&[GraphMutation::InsertEdge { u, v }])?;
        Ok((EdgeId::new(self.g.num_edges() - 1), report))
    }

    /// Removes one edge; sugar for a single-edit [`Self::batch_apply`].
    pub fn remove_edge(&mut self, e: EdgeId) -> Result<MutationReport> {
        self.batch_apply(&[GraphMutation::RemoveEdge(e)])
    }

    /// Applies a mutation batch atomically: the whole batch is validated
    /// up front, then applied as **one** epoch step. Returns the new epoch
    /// and the touched-region set (regions whose fingerprint changed).
    pub fn batch_apply(&mut self, batch: &[GraphMutation]) -> Result<MutationReport> {
        self.validate(batch)?;
        // lint:allow(alloc) per-batch diff baseline: mutations are the cold side
        let old_fps = self.regions.fps.clone();
        // lint:allow(alloc) one delta record per batch, bounded by the log cap
        let mut edits = Vec::with_capacity(batch.len());
        let mut removed_any = false;
        for mu in batch {
            match *mu {
                GraphMutation::InsertEdge { u, v } => {
                    let e = self.g.add_edge(u, v).expect("batch validated");
                    edits.push(EdgeDelta::Inserted { e, u, v });
                    if !removed_any {
                        self.apply_insert_fp(e, u, v);
                    }
                }
                GraphMutation::RemoveEdge(e) => {
                    let RemovedEdge {
                        endpoints: (u, v),
                        moved,
                    } = self.g.remove_edge(e).expect("batch validated");
                    edits.push(EdgeDelta::Removed { e, u, v, moved });
                    removed_any = true;
                }
            }
        }
        if removed_any {
            // Removals can split regions and renumber edges; recompute and
            // let the fingerprint diff pick up every affected region.
            self.regions = RegionMap::of_undirected(&self.g);
        }
        let touched = diff_fps(&old_fps, &self.regions.fps);
        self.epoch += 1;
        self.log.push(DeltaRecord {
            epoch: self.epoch,
            edits,
            // lint:allow(alloc) the touched set is part of the per-batch record
            touched: touched.clone(),
        });
        if self.log.len() > DELTA_LOG_CAP {
            let excess = self.log.len() - DELTA_LOG_CAP;
            self.log.drain(..excess);
        }
        Ok(MutationReport {
            epoch: self.epoch,
            touched,
        })
    }

    /// Incrementally folds an inserted edge into the region map: same
    /// region is an O(log R) fingerprint update; distinct regions merge
    /// into the smaller canonical id with an O(n) relabel.
    fn apply_insert_fp(&mut self, e: EdgeId, u: VertexId, v: VertexId) {
        let eh = edge_hash(e, u, v);
        let ru = self.regions.region[u.index()];
        let rv = self.regions.region[v.index()];
        if ru == rv {
            let idx = self
                .regions
                .fps
                .binary_search_by_key(&ru, |&(r, _)| r)
                .expect("region exists");
            self.regions.fps[idx].1 ^= eh;
            return;
        }
        let (keep, gone) = if ru < rv { (ru, rv) } else { (rv, ru) };
        for r in self.regions.region.iter_mut() {
            if *r == gone {
                *r = keep;
            }
        }
        let gone_idx = self
            .regions
            .fps
            .binary_search_by_key(&gone, |&(r, _)| r)
            .expect("region exists");
        let (_, gone_fp) = self.regions.fps.remove(gone_idx);
        let keep_idx = self
            .regions
            .fps
            .binary_search_by_key(&keep, |&(r, _)| r)
            .expect("region exists");
        self.regions.fps[keep_idx].1 ^= gone_fp ^ eh;
    }

    /// The contiguous delta records covering `(since_epoch, current]`, or
    /// `None` if the log has been truncated past `since_epoch` (or the
    /// epoch is from the future). `Some(&[])` means "already current".
    pub fn deltas_since(&self, since_epoch: u64) -> Option<&[DeltaRecord<EdgeDelta>]> {
        if since_epoch > self.epoch {
            return None;
        }
        if since_epoch == self.epoch {
            return Some(&[]);
        }
        let oldest = self.epoch - self.log.len() as u64; // epoch before first record
        if since_epoch < oldest {
            return None;
        }
        Some(&self.log[(since_epoch - oldest) as usize..])
    }
}

/// A [`DiGraph`] under epoch management (see [`EpochGraph`]).
#[derive(Clone, Debug)]
pub struct EpochDigraph {
    d: DiGraph,
    epoch: u64,
    regions: RegionMap,
    log: Vec<DeltaRecord<ArcDelta>>,
}

impl EpochDigraph {
    /// Wraps a digraph at epoch 0, computing its weak-component region map.
    pub fn new(d: DiGraph) -> Self {
        let regions = RegionMap::of_digraph(&d);
        EpochDigraph {
            d,
            epoch: 0,
            regions,
            log: Vec::new(),
        }
    }

    /// The wrapped digraph (read-only).
    pub fn digraph(&self) -> &DiGraph {
        &self.d
    }

    /// Unwraps the digraph, discarding epoch state.
    pub fn into_inner(self) -> DiGraph {
        self.d
    }

    /// Current epoch (0 for a freshly wrapped digraph).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The maintained region map (always consistent with [`Self::digraph`]).
    pub fn regions(&self) -> &RegionMap {
        &self.regions
    }

    /// Whole-digraph fingerprint: XOR fold of the maintained region
    /// fingerprints — no rescan of the digraph.
    pub fn fingerprint(&self) -> u64 {
        self.regions.fold()
    }

    /// Checks a batch against the current digraph without applying it.
    pub fn validate(&self, batch: &[ArcMutation]) -> Result<()> {
        let n = self.d.num_vertices();
        let mut m = self.d.num_arcs();
        for mu in batch {
            match *mu {
                ArcMutation::InsertArc { tail, head } => {
                    if tail.index() >= n || head.index() >= n {
                        let worst = tail.index().max(head.index());
                        return Err(GraphError::VertexOutOfRange {
                            vertex: worst,
                            num_vertices: n,
                        });
                    }
                    if tail == head {
                        return Err(GraphError::SelfLoop {
                            vertex: tail.index(),
                        });
                    }
                    m += 1;
                }
                ArcMutation::RemoveArc(a) => {
                    if a.index() >= m {
                        return Err(GraphError::EdgeOutOfRange {
                            edge: a.index(),
                            num_edges: m,
                        });
                    }
                    m -= 1;
                }
            }
        }
        Ok(())
    }

    /// Inserts one arc; sugar for a single-edit [`Self::batch_apply`].
    /// Returns the new arc's id alongside the mutation report.
    pub fn insert_arc(
        &mut self,
        tail: VertexId,
        head: VertexId,
    ) -> Result<(ArcId, MutationReport)> {
        let report = self.batch_apply(&[ArcMutation::InsertArc { tail, head }])?;
        Ok((ArcId::new(self.d.num_arcs() - 1), report))
    }

    /// Removes one arc; sugar for a single-edit [`Self::batch_apply`].
    pub fn remove_arc(&mut self, a: ArcId) -> Result<MutationReport> {
        self.batch_apply(&[ArcMutation::RemoveArc(a)])
    }

    /// Applies a mutation batch atomically as one epoch step (see
    /// [`EpochGraph::batch_apply`]).
    pub fn batch_apply(&mut self, batch: &[ArcMutation]) -> Result<MutationReport> {
        self.validate(batch)?;
        // lint:allow(alloc) per-batch diff baseline: mutations are the cold side
        let old_fps = self.regions.fps.clone();
        // lint:allow(alloc) one delta record per batch, bounded by the log cap
        let mut edits = Vec::with_capacity(batch.len());
        let mut removed_any = false;
        for mu in batch {
            match *mu {
                ArcMutation::InsertArc { tail, head } => {
                    let a = self.d.add_arc(tail, head).expect("batch validated");
                    edits.push(ArcDelta::Inserted { a, tail, head });
                    if !removed_any {
                        self.apply_insert_fp(a, tail, head);
                    }
                }
                ArcMutation::RemoveArc(a) => {
                    let RemovedArc {
                        endpoints: (tail, head),
                        moved,
                    } = self.d.remove_arc(a).expect("batch validated");
                    edits.push(ArcDelta::Removed {
                        a,
                        tail,
                        head,
                        moved,
                    });
                    removed_any = true;
                }
            }
        }
        if removed_any {
            self.regions = RegionMap::of_digraph(&self.d);
        }
        let touched = diff_fps(&old_fps, &self.regions.fps);
        self.epoch += 1;
        self.log.push(DeltaRecord {
            epoch: self.epoch,
            edits,
            // lint:allow(alloc) the touched set is part of the per-batch record
            touched: touched.clone(),
        });
        if self.log.len() > DELTA_LOG_CAP {
            let excess = self.log.len() - DELTA_LOG_CAP;
            self.log.drain(..excess);
        }
        Ok(MutationReport {
            epoch: self.epoch,
            touched,
        })
    }

    /// Incrementally folds an inserted arc into the weak-component map.
    fn apply_insert_fp(&mut self, a: ArcId, tail: VertexId, head: VertexId) {
        let ah = arc_hash(a, tail, head);
        let rt = self.regions.region[tail.index()];
        let rh = self.regions.region[head.index()];
        if rt == rh {
            let idx = self
                .regions
                .fps
                .binary_search_by_key(&rt, |&(r, _)| r)
                .expect("region exists");
            self.regions.fps[idx].1 ^= ah;
            return;
        }
        let (keep, gone) = if rt < rh { (rt, rh) } else { (rh, rt) };
        for r in self.regions.region.iter_mut() {
            if *r == gone {
                *r = keep;
            }
        }
        let gone_idx = self
            .regions
            .fps
            .binary_search_by_key(&gone, |&(r, _)| r)
            .expect("region exists");
        let (_, gone_fp) = self.regions.fps.remove(gone_idx);
        let keep_idx = self
            .regions
            .fps
            .binary_search_by_key(&keep, |&(r, _)| r)
            .expect("region exists");
        self.regions.fps[keep_idx].1 ^= gone_fp ^ ah;
    }

    /// The contiguous delta records covering `(since_epoch, current]` (see
    /// [`EpochGraph::deltas_since`]).
    pub fn deltas_since(&self, since_epoch: u64) -> Option<&[DeltaRecord<ArcDelta>]> {
        if since_epoch > self.epoch {
            return None;
        }
        if since_epoch == self.epoch {
            return Some(&[]);
        }
        let oldest = self.epoch - self.log.len() as u64;
        if since_epoch < oldest {
            return None;
        }
        Some(&self.log[(since_epoch - oldest) as usize..])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift so tests need no external RNG.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
        fn below(&mut self, n: usize) -> usize {
            (self.next() % n as u64) as usize
        }
    }

    fn two_component_graph() -> UndirectedGraph {
        // Component A: {0,1,2}; component B: {3,4}; 5 isolated.
        UndirectedGraph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]).unwrap()
    }

    #[test]
    fn regions_are_min_vertex_components() {
        let g = two_component_graph();
        let map = RegionMap::of_undirected(&g);
        assert_eq!(map.region_of(VertexId(0)), Some(0));
        assert_eq!(map.region_of(VertexId(2)), Some(0));
        assert_eq!(map.region_of(VertexId(3)), Some(3));
        assert_eq!(map.region_of(VertexId(4)), Some(3));
        assert_eq!(map.region_of(VertexId(5)), Some(5));
        assert_eq!(map.region_of(VertexId(9)), None);
        let ids: Vec<u32> = map.regions().iter().map(|&(r, _)| r).collect();
        assert_eq!(ids, vec![0, 3, 5]);
    }

    #[test]
    fn signature_skips_out_of_range_and_dedups() {
        let g = two_component_graph();
        let map = RegionMap::of_undirected(&g);
        let sig = map.signature_of([VertexId(2), VertexId(1), VertexId(4), VertexId(99)]);
        let ids: Vec<u32> = sig.pairs().iter().map(|&(r, _)| r).collect();
        assert_eq!(ids, vec![0, 3]);
        assert!(sig.touches(0));
        assert!(!sig.touches(5));
        assert!(sig.intersects(&[3, 7]));
        assert!(!sig.intersects(&[5, 7]));
    }

    #[test]
    fn insert_in_one_region_leaves_others_untouched() {
        let mut eg = EpochGraph::new(two_component_graph());
        let before = eg.regions().clone();
        let (_, report) = eg.insert_edge(VertexId(0), VertexId(2)).unwrap();
        assert_eq!(report.epoch, 1);
        assert_eq!(report.touched, vec![0]);
        assert_eq!(
            eg.regions().fingerprint(3),
            before.fingerprint(3),
            "region 3 fingerprint survives a mutation in region 0"
        );
        assert_ne!(eg.regions().fingerprint(0), before.fingerprint(0));
    }

    #[test]
    fn insert_merging_regions_touches_both() {
        let mut eg = EpochGraph::new(two_component_graph());
        let (_, report) = eg.insert_edge(VertexId(2), VertexId(3)).unwrap();
        assert_eq!(report.touched, vec![0, 3]);
        assert_eq!(eg.regions().region_of(VertexId(4)), Some(0));
        assert_eq!(eg.regions().fingerprint(3), None, "region 3 merged away");
    }

    #[test]
    fn removal_splitting_region_touches_fragments() {
        // Edge order puts {1,2} last so its removal renumbers nothing.
        let g = UndirectedGraph::from_edges(6, &[(3, 4), (0, 1), (1, 2)]).unwrap();
        let mut eg = EpochGraph::new(g);
        // Removing {1,2} splits region 0 into {0,1} and {2}.
        let report = eg.remove_edge(EdgeId(2)).unwrap();
        assert!(report.touched.contains(&0));
        assert!(report.touched.contains(&2), "new region 2 appears");
        assert!(!report.touched.contains(&3), "region 3 untouched");
        assert_eq!(eg.regions().region_of(VertexId(2)), Some(2));
    }

    #[test]
    fn removal_renumbering_touches_the_moved_edges_region() {
        // Edges: 0={0,1}, 1={1,2}, 2={3,4}. Removing edge 1 renumbers
        // edge 2 (in region 3) onto id 1 — edge ids appear in solution
        // sets, so region 3's fingerprint must change too.
        let mut eg = EpochGraph::new(two_component_graph());
        let report = eg.remove_edge(EdgeId(1)).unwrap();
        assert!(report.touched.contains(&3), "renumbered region invalidated");
    }

    #[test]
    fn maintained_fingerprints_match_fresh_recompute() {
        let mut rng = Rng(0x5eed);
        let mut eg = EpochGraph::new(UndirectedGraph::new(12));
        for step in 0..300 {
            let m = eg.graph().num_edges();
            if m == 0 || rng.below(3) > 0 {
                let u = VertexId::new(rng.below(12));
                let mut v = VertexId::new(rng.below(12));
                if u == v {
                    v = VertexId::new((v.index() + 1) % 12);
                }
                eg.insert_edge(u, v).unwrap();
            } else {
                eg.remove_edge(EdgeId::new(rng.below(m))).unwrap();
            }
            let fresh = RegionMap::of_undirected(eg.graph());
            assert_eq!(
                eg.regions(),
                &fresh,
                "maintained region map drifted at step {step}"
            );
            assert_eq!(eg.epoch(), step + 1);
        }
    }

    #[test]
    fn digraph_maintained_fingerprints_match_fresh_recompute() {
        let mut rng = Rng(0xbeef);
        let mut ed = EpochDigraph::new(DiGraph::new(9));
        for step in 0..200 {
            let m = ed.digraph().num_arcs();
            if m == 0 || rng.below(3) > 0 {
                let t = VertexId::new(rng.below(9));
                let mut h = VertexId::new(rng.below(9));
                if t == h {
                    h = VertexId::new((h.index() + 1) % 9);
                }
                ed.insert_arc(t, h).unwrap();
            } else {
                ed.remove_arc(ArcId::new(rng.below(m))).unwrap();
            }
            let fresh = RegionMap::of_digraph(ed.digraph());
            assert_eq!(
                ed.regions(),
                &fresh,
                "maintained digraph region map drifted at step {step}"
            );
        }
    }

    #[test]
    fn removal_keeps_adjacency_sorted_and_ids_dense() {
        let mut g =
            UndirectedGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4), (1, 2)]).unwrap();
        let rm = g.remove_edge(EdgeId(1)).unwrap();
        assert_eq!(rm.endpoints, (VertexId(0), VertexId(2)));
        assert_eq!(rm.moved, Some((EdgeId(4), VertexId(1), VertexId(2))));
        assert_eq!(g.num_edges(), 4);
        // Edge 1 is now the old edge 4 = {1,2}.
        assert_eq!(g.endpoints(EdgeId(1)), (VertexId(1), VertexId(2)));
        for v in g.vertices() {
            let ids: Vec<EdgeId> = g.adjacency(v).iter().map(|&(_, e)| e).collect();
            let mut sorted = ids.clone();
            sorted.sort();
            assert_eq!(ids, sorted, "adjacency of {v} stays sorted by edge id");
        }
    }

    #[test]
    fn batch_is_atomic_on_invalid_edit() {
        let mut eg = EpochGraph::new(two_component_graph());
        let before_fp = eg.fingerprint();
        let err = eg.batch_apply(&[
            GraphMutation::InsertEdge {
                u: VertexId(0),
                v: VertexId(5),
            },
            GraphMutation::RemoveEdge(EdgeId(99)),
        ]);
        assert!(matches!(err, Err(GraphError::EdgeOutOfRange { .. })));
        assert_eq!(eg.epoch(), 0, "failed batch does not advance the epoch");
        assert_eq!(eg.fingerprint(), before_fp);
        assert_eq!(eg.graph().num_edges(), 3);
    }

    #[test]
    fn deltas_since_covers_recent_epochs_and_truncates() {
        let mut eg = EpochGraph::new(UndirectedGraph::new(4));
        for _ in 0..3 {
            eg.insert_edge(VertexId(0), VertexId(1)).unwrap();
        }
        assert_eq!(eg.deltas_since(3).map(|d| d.len()), Some(0));
        assert_eq!(eg.deltas_since(1).map(|d| d.len()), Some(2));
        assert_eq!(eg.deltas_since(0).map(|d| d.len()), Some(3));
        assert!(eg.deltas_since(9).is_none(), "future epoch");
        for _ in 0..DELTA_LOG_CAP {
            eg.insert_edge(VertexId(2), VertexId(3)).unwrap();
        }
        assert!(eg.deltas_since(0).is_none(), "log truncated");
        let cur = eg.epoch();
        assert_eq!(
            eg.deltas_since(cur - DELTA_LOG_CAP as u64).map(|d| d.len()),
            Some(DELTA_LOG_CAP)
        );
    }

    #[test]
    fn fingerprints_are_process_stable() {
        // Pinned values: if these change, snapshot compatibility breaks and
        // SNAPSHOT_VERSION must be bumped again.
        let g = two_component_graph();
        let map = RegionMap::of_undirected(&g);
        let again = RegionMap::of_undirected(&g);
        assert_eq!(map, again);
        assert_ne!(map.fold(), 0);
        // Same structure, different edge id order => different fingerprints.
        let g2 = UndirectedGraph::from_edges(6, &[(1, 2), (0, 1), (3, 4)]).unwrap();
        let map2 = RegionMap::of_undirected(&g2);
        assert_ne!(map.fingerprint(0), map2.fingerprint(0));
        assert_eq!(map.fingerprint(3), map2.fingerprint(3));
    }
}
