//! Graph substrate for the minimal-Steiner enumeration library.
//!
//! This crate implements, from scratch, every graph-theoretic primitive the
//! paper *Linear-Delay Enumeration for Minimal Steiner Problems* (PODS 2022)
//! relies on:
//!
//! * undirected and directed **multigraphs** (parallel edges allowed, no
//!   self-loops — the paper's preliminaries, §2),
//! * BFS/DFS traversals with vertex masks ([`traversal`]),
//! * connected components and reachability ([`connectivity`]),
//! * multigraph-aware **bridge** finding ([`bridges`], used by Lemmas 16, 24
//!   and 30),
//! * edge-set **contraction** `G/F` preserving original edge identities
//!   ([`contraction`], used by the Steiner-forest and directed variants),
//! * **lowest common ancestors** ([`lca`], used by the forest
//!   unique-completion step),
//! * spanning trees containing a required subtree and non-terminal leaf
//!   pruning ([`spanning`], Propositions 3/26/32),
//! * **line graphs** and the Theorem 39 construction ([`line_graph`]),
//! * claw detection ([`clawfree`], §7),
//! * workload **generators** ([`generators`]) and plain-text I/O ([`io`]).
//!
//! Vertices and edges are dense `u32` indices wrapped in [`VertexId`] /
//! [`EdgeId`]; all algorithms are index-based and allocation-conscious.

#![deny(unsafe_code)]

pub mod bridges;
pub mod clawfree;
pub mod connectivity;
pub mod contraction;
pub mod csr;
pub mod digraph;
pub mod epoch;
pub mod generators;
pub mod ids;
pub mod io;
pub mod lca;
pub mod line_graph;
pub mod spanning;
pub mod traversal;
pub mod undirected;
pub mod union_find;

pub use csr::{CsrDigraph, CsrUndirected};
pub use digraph::DiGraph;
pub use epoch::{
    ArcMutation, EpochDigraph, EpochGraph, GraphMutation, MutationReport, RegionMap,
    RegionSignature,
};
pub use ids::{ArcId, EdgeId, VertexId};
pub use undirected::UndirectedGraph;

/// Errors produced when constructing or parsing graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A self-loop `{v, v}` was supplied; the paper's graphs have none (§2).
    SelfLoop { vertex: usize },
    /// A vertex index was at least the number of vertices.
    VertexOutOfRange { vertex: usize, num_vertices: usize },
    /// An edge index was at least the number of edges.
    EdgeOutOfRange { edge: usize, num_edges: usize },
    /// Input text could not be parsed.
    Parse { line: usize, message: String },
    /// A problem-specific precondition failed (e.g. the root of a directed
    /// Steiner instance is itself a terminal).
    Precondition { message: String },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::SelfLoop { vertex } => {
                write!(f, "self-loop at vertex {vertex} is not allowed")
            }
            GraphError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => {
                write!(
                    f,
                    "vertex {vertex} out of range (graph has {num_vertices} vertices)"
                )
            }
            GraphError::EdgeOutOfRange { edge, num_edges } => {
                write!(f, "edge {edge} out of range (graph has {num_edges} edges)")
            }
            GraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            GraphError::Precondition { message } => write!(f, "precondition failed: {message}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// Crate-local result alias.
pub type Result<T> = std::result::Result<T, GraphError>;
