//! Connected components and reachability queries.

use crate::digraph::DiGraph;
use crate::ids::VertexId;
use crate::traversal::{bfs, di_bfs, Direction};
use crate::undirected::UndirectedGraph;

/// Connected-component labelling of (a masked portion of) a graph.
#[derive(Clone, Debug)]
pub struct Components {
    /// `comp[v]` — component index of `v`, `None` if masked out.
    pub comp: Vec<Option<u32>>,
    /// Number of components.
    pub count: usize,
    /// `sizes[c]` — number of vertices in component `c`.
    pub sizes: Vec<u32>,
}

impl Components {
    /// Whether `u` and `v` lie in the same component (both must be present).
    pub fn same(&self, u: VertexId, v: VertexId) -> bool {
        match (self.comp[u.index()], self.comp[v.index()]) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        }
    }

    /// Collects the vertices of component `c`, in increasing id order.
    pub fn members(&self, c: u32) -> Vec<VertexId> {
        self.comp
            .iter()
            .enumerate()
            .filter(|(_, comp)| **comp == Some(c))
            .map(|(i, _)| VertexId::new(i))
            .collect()
    }
}

/// Labels the connected components of vertices allowed by `allowed`
/// (all vertices if `None`).
pub fn connected_components(g: &UndirectedGraph, allowed: Option<&[bool]>) -> Components {
    let n = g.num_vertices();
    let mut comp: Vec<Option<u32>> = vec![None; n];
    let mut sizes: Vec<u32> = Vec::new();
    let ok = |v: usize| allowed.is_none_or(|mask| mask[v]);
    let mut stack: Vec<VertexId> = Vec::new();
    for start in 0..n {
        if !ok(start) || comp[start].is_some() {
            continue;
        }
        let c = sizes.len() as u32;
        sizes.push(0);
        comp[start] = Some(c);
        stack.push(VertexId::new(start));
        while let Some(u) = stack.pop() {
            sizes[c as usize] += 1;
            for (v, _) in g.neighbors(u) {
                if ok(v.index()) && comp[v.index()].is_none() {
                    comp[v.index()] = Some(c);
                    stack.push(v);
                }
            }
        }
    }
    Components {
        comp,
        count: sizes.len(),
        sizes,
    }
}

/// Whether all of `vertices` lie in one connected component of the masked
/// graph. Vacuously true for zero or one vertex.
pub fn all_in_one_component(
    g: &UndirectedGraph,
    vertices: &[VertexId],
    allowed: Option<&[bool]>,
) -> bool {
    let Some((&first, rest)) = vertices.split_first() else {
        return true;
    };
    if let Some(mask) = allowed {
        if vertices.iter().any(|v| !mask[v.index()]) {
            return false;
        }
    }
    let forest = bfs(g, &[first], allowed);
    rest.iter().all(|v| forest.visited[v.index()])
}

/// Vertices reachable from `s` in a digraph (as a mask).
pub fn reachable_from(d: &DiGraph, s: VertexId, allowed: Option<&[bool]>) -> Vec<bool> {
    di_bfs(d, &[s], Direction::Forward, allowed).visited
}

/// Vertices that can reach `t` in a digraph (as a mask).
pub fn reaching_to(d: &DiGraph, t: VertexId, allowed: Option<&[bool]>) -> Vec<bool> {
    di_bfs(d, &[t], Direction::Backward, allowed).visited
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_of_two_triangles() {
        let g = UndirectedGraph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)])
            .unwrap();
        let c = connected_components(&g, None);
        assert_eq!(c.count, 2);
        assert!(c.same(VertexId(0), VertexId(2)));
        assert!(!c.same(VertexId(0), VertexId(3)));
        assert_eq!(c.sizes, vec![3, 3]);
        assert_eq!(c.members(1), vec![VertexId(3), VertexId(4), VertexId(5)]);
    }

    #[test]
    fn masking_splits_components() {
        // Path 0-1-2-3-4; removing 2 splits it.
        let g = UndirectedGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let mask = vec![true, true, false, true, true];
        let c = connected_components(&g, Some(&mask));
        assert_eq!(c.count, 2);
        assert_eq!(c.comp[2], None);
        assert!(!c.same(VertexId(1), VertexId(3)));
    }

    #[test]
    fn all_in_one_component_checks() {
        let g = UndirectedGraph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(all_in_one_component(&g, &[VertexId(0), VertexId(1)], None));
        assert!(!all_in_one_component(&g, &[VertexId(0), VertexId(2)], None));
        assert!(all_in_one_component(&g, &[], None));
        assert!(all_in_one_component(&g, &[VertexId(3)], None));
        let mask = vec![true, false, true, true];
        assert!(!all_in_one_component(
            &g,
            &[VertexId(0), VertexId(1)],
            Some(&mask)
        ));
    }

    #[test]
    fn digraph_reachability() {
        let d = DiGraph::from_arcs(4, &[(0, 1), (1, 2), (3, 2)]).unwrap();
        let from0 = reachable_from(&d, VertexId(0), None);
        assert_eq!(from0, vec![true, true, true, false]);
        let to2 = reaching_to(&d, VertexId(2), None);
        assert_eq!(to2, vec![true, true, true, true]);
    }

    #[test]
    fn isolated_vertices_are_singletons() {
        let g = UndirectedGraph::new(3);
        let c = connected_components(&g, None);
        assert_eq!(c.count, 3);
        assert_eq!(c.sizes, vec![1, 1, 1]);
    }
}
