//! Breadth-first and depth-first traversals with optional vertex masks.
//!
//! Every Steiner enumerator in this workspace repeatedly searches graphs
//! from which the vertices of a partial solution have been removed, so all
//! traversals accept an optional `allowed` mask instead of requiring a
//! materialized subgraph.

use crate::digraph::DiGraph;
use crate::ids::{ArcId, EdgeId, VertexId};
use crate::undirected::UndirectedGraph;

/// Direction of a digraph traversal.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Direction {
    /// Follow arcs tail → head.
    Forward,
    /// Follow arcs head → tail (traversal of the reverse graph).
    Backward,
}

/// Result of a (multi-source) BFS on an undirected graph: a BFS forest.
#[derive(Clone, Debug)]
pub struct BfsForest {
    /// `visited[v]` — whether `v` was reached.
    pub visited: Vec<bool>,
    /// `parent[v]` — predecessor of `v` in the forest (`None` for roots and
    /// unreached vertices).
    pub parent: Vec<Option<VertexId>>,
    /// `parent_edge[v]` — the edge connecting `v` to its parent.
    pub parent_edge: Vec<Option<EdgeId>>,
    /// `dist[v]` — BFS distance from the root set (`u32::MAX` if unreached).
    pub dist: Vec<u32>,
    /// Vertices in visit order (roots first).
    pub order: Vec<VertexId>,
}

/// Runs a multi-source BFS from `roots` over vertices allowed by `allowed`
/// (all vertices if `None`). Roots that are masked out are skipped.
pub fn bfs(g: &UndirectedGraph, roots: &[VertexId], allowed: Option<&[bool]>) -> BfsForest {
    let n = g.num_vertices();
    let mut forest = BfsForest {
        visited: vec![false; n],
        parent: vec![None; n],
        parent_edge: vec![None; n],
        dist: vec![u32::MAX; n],
        order: Vec::with_capacity(n),
    };
    let ok = |v: VertexId| allowed.is_none_or(|mask| mask[v.index()]);
    let mut queue = std::collections::VecDeque::with_capacity(roots.len());
    for &r in roots {
        if ok(r) && !forest.visited[r.index()] {
            forest.visited[r.index()] = true;
            forest.dist[r.index()] = 0;
            forest.order.push(r);
            queue.push_back(r);
        }
    }
    while let Some(u) = queue.pop_front() {
        for (v, e) in g.neighbors(u) {
            if ok(v) && !forest.visited[v.index()] {
                forest.visited[v.index()] = true;
                forest.parent[v.index()] = Some(u);
                forest.parent_edge[v.index()] = Some(e);
                forest.dist[v.index()] = forest.dist[u.index()] + 1;
                forest.order.push(v);
                queue.push_back(v);
            }
        }
    }
    forest
}

/// Extracts the root-to-`v` path of a BFS forest as `(vertices, edges)`,
/// ordered from the root side to `v`. Returns `None` if `v` was unreached.
pub fn forest_path_to(forest: &BfsForest, v: VertexId) -> Option<(Vec<VertexId>, Vec<EdgeId>)> {
    if !forest.visited[v.index()] {
        return None;
    }
    let mut verts = vec![v];
    let mut edges = Vec::new();
    let mut cur = v;
    while let Some(p) = forest.parent[cur.index()] {
        edges.push(forest.parent_edge[cur.index()].expect("parent implies parent edge"));
        verts.push(p);
        cur = p;
    }
    verts.reverse();
    edges.reverse();
    Some((verts, edges))
}

/// Result of a (multi-source) BFS on a digraph.
#[derive(Clone, Debug)]
pub struct DiBfsForest {
    /// `visited[v]` — whether `v` was reached.
    pub visited: Vec<bool>,
    /// `parent[v]` — predecessor of `v` (w.r.t. the traversal direction).
    pub parent: Vec<Option<VertexId>>,
    /// `parent_arc[v]` — the arc connecting `v` to its parent.
    pub parent_arc: Vec<Option<ArcId>>,
    /// `dist[v]` — BFS distance from the root set (`u32::MAX` if unreached).
    pub dist: Vec<u32>,
    /// Vertices in visit order (roots first).
    pub order: Vec<VertexId>,
}

/// Runs a multi-source BFS on a digraph in the given direction.
///
/// With [`Direction::Backward`] the result describes, for every vertex `v`,
/// whether `v` *reaches* the root set; `parent[v]` then points one step
/// closer to the roots along a shortest such path.
pub fn di_bfs(
    d: &DiGraph,
    roots: &[VertexId],
    direction: Direction,
    allowed: Option<&[bool]>,
) -> DiBfsForest {
    let n = d.num_vertices();
    let mut forest = DiBfsForest {
        visited: vec![false; n],
        parent: vec![None; n],
        parent_arc: vec![None; n],
        dist: vec![u32::MAX; n],
        order: Vec::with_capacity(n),
    };
    let ok = |v: VertexId| allowed.is_none_or(|mask| mask[v.index()]);
    let mut queue = std::collections::VecDeque::with_capacity(roots.len());
    for &r in roots {
        if ok(r) && !forest.visited[r.index()] {
            forest.visited[r.index()] = true;
            forest.dist[r.index()] = 0;
            forest.order.push(r);
            queue.push_back(r);
        }
    }
    while let Some(u) = queue.pop_front() {
        let step = |v: VertexId,
                    a: ArcId,
                    forest: &mut DiBfsForest,
                    queue: &mut std::collections::VecDeque<VertexId>| {
            if ok(v) && !forest.visited[v.index()] {
                forest.visited[v.index()] = true;
                forest.parent[v.index()] = Some(u);
                forest.parent_arc[v.index()] = Some(a);
                forest.dist[v.index()] = forest.dist[u.index()] + 1;
                forest.order.push(v);
                queue.push_back(v);
            }
        };
        match direction {
            Direction::Forward => {
                for (v, a) in d.out_neighbors(u) {
                    step(v, a, &mut forest, &mut queue);
                }
            }
            Direction::Backward => {
                for (v, a) in d.in_neighbors(u) {
                    step(v, a, &mut forest, &mut queue);
                }
            }
        }
    }
    forest
}

/// A DFS tree of a digraph together with a postorder numbering, as required
/// by the §5.2 directed Steiner enumerator (Lemma 35).
#[derive(Clone, Debug)]
pub struct DiDfsTree {
    /// `visited[v]` — whether `v` was reached from the root.
    pub visited: Vec<bool>,
    /// `parent[v]` — DFS-tree parent (`None` for the root / unreached).
    pub parent: Vec<Option<VertexId>>,
    /// `parent_arc[v]` — arc from the parent into `v`.
    pub parent_arc: Vec<Option<ArcId>>,
    /// `postorder[v]` — postorder index (`u32::MAX` if unreached). The
    /// paper's total order `≺` is exactly "smaller postorder".
    pub postorder: Vec<u32>,
    /// Vertices sorted by increasing postorder.
    pub post_sequence: Vec<VertexId>,
}

/// Runs an iterative DFS from `root` following out-arcs, producing the DFS
/// tree and its postorder. Arcs are explored in adjacency (insertion) order.
pub fn di_dfs_postorder(d: &DiGraph, root: VertexId, allowed: Option<&[bool]>) -> DiDfsTree {
    let n = d.num_vertices();
    let mut tree = DiDfsTree {
        visited: vec![false; n],
        parent: vec![None; n],
        parent_arc: vec![None; n],
        postorder: vec![u32::MAX; n],
        post_sequence: Vec::new(),
    };
    let ok = |v: VertexId| allowed.is_none_or(|mask| mask[v.index()]);
    if !ok(root) {
        return tree;
    }
    // Iterative DFS: each stack entry is (vertex, next out-neighbor index).
    let mut stack: Vec<(VertexId, usize)> = vec![(root, 0)];
    tree.visited[root.index()] = true;
    while let Some(&mut (u, ref mut next)) = stack.last_mut() {
        let out = d.out_adjacency(u).get(*next).copied();
        match out {
            Some((v, a)) => {
                *next += 1;
                if ok(v) && !tree.visited[v.index()] {
                    tree.visited[v.index()] = true;
                    tree.parent[v.index()] = Some(u);
                    tree.parent_arc[v.index()] = Some(a);
                    stack.push((v, 0));
                }
            }
            None => {
                tree.postorder[u.index()] = tree.post_sequence.len() as u32;
                tree.post_sequence.push(u);
                stack.pop();
            }
        }
    }
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::undirected::UndirectedGraph;

    fn path_graph(n: usize) -> UndirectedGraph {
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        UndirectedGraph::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = path_graph(5);
        let f = bfs(&g, &[VertexId(0)], None);
        assert_eq!(f.dist, vec![0, 1, 2, 3, 4]);
        assert!(f.visited.iter().all(|&b| b));
    }

    #[test]
    fn bfs_respects_mask() {
        let g = path_graph(5);
        let mask = vec![true, true, false, true, true];
        let f = bfs(&g, &[VertexId(0)], Some(&mask));
        assert!(f.visited[1]);
        assert!(!f.visited[2]);
        assert!(!f.visited[3], "blocked by masked vertex 2");
    }

    #[test]
    fn bfs_multi_source() {
        let g = path_graph(5);
        let f = bfs(&g, &[VertexId(0), VertexId(4)], None);
        assert_eq!(f.dist, vec![0, 1, 2, 1, 0]);
    }

    #[test]
    fn forest_path_reconstruction() {
        let g = path_graph(4);
        let f = bfs(&g, &[VertexId(0)], None);
        let (verts, edges) = forest_path_to(&f, VertexId(3)).unwrap();
        assert_eq!(
            verts,
            vec![VertexId(0), VertexId(1), VertexId(2), VertexId(3)]
        );
        assert_eq!(edges, vec![EdgeId(0), EdgeId(1), EdgeId(2)]);
    }

    #[test]
    fn di_bfs_forward_and_backward() {
        let d = DiGraph::from_arcs(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let fwd = di_bfs(&d, &[VertexId(0)], Direction::Forward, None);
        assert!(fwd.visited.iter().all(|&b| b));
        let bwd = di_bfs(&d, &[VertexId(3)], Direction::Backward, None);
        assert!(bwd.visited.iter().all(|&b| b));
        assert_eq!(bwd.dist[0], 3);
        // Backward BFS from 0 reaches only 0.
        let bwd0 = di_bfs(&d, &[VertexId(0)], Direction::Backward, None);
        assert_eq!(bwd0.order, vec![VertexId(0)]);
    }

    #[test]
    fn dfs_postorder_on_tree() {
        // Root 0 with children 1 and 2; 1 has child 3.
        let d = DiGraph::from_arcs(4, &[(0, 1), (0, 2), (1, 3)]).unwrap();
        let t = di_dfs_postorder(&d, VertexId(0), None);
        // DFS explores 0 -> 1 -> 3 (post 3), back to 1 (post 1), 2, then 0.
        assert_eq!(t.postorder[3], 0);
        assert_eq!(t.postorder[1], 1);
        assert_eq!(t.postorder[2], 2);
        assert_eq!(t.postorder[0], 3);
        assert_eq!(t.parent[3], Some(VertexId(1)));
        assert_eq!(
            t.post_sequence,
            vec![VertexId(3), VertexId(1), VertexId(2), VertexId(0)]
        );
    }

    #[test]
    fn dfs_skips_masked_vertices() {
        let d = DiGraph::from_arcs(3, &[(0, 1), (1, 2)]).unwrap();
        let mask = vec![true, false, true];
        let t = di_dfs_postorder(&d, VertexId(0), Some(&mask));
        assert!(t.visited[0]);
        assert!(!t.visited[1]);
        assert!(!t.visited[2]);
    }
}
