//! Flat compressed-sparse-row (CSR) adjacency views.
//!
//! The enumeration hot paths (one `classify`/`branch` per node of the
//! enumeration tree) must not touch the allocator: a `Vec<Vec<_>>`
//! adjacency list costs one allocation per vertex every time a contracted
//! or doubled graph is rebuilt. The CSR views here store degree-prefix
//! offsets plus packed `(neighbor, edge)` arrays, are built once (or
//! rebuilt **in place**, reusing capacity) and hand out neighbor slices
//! with no indirection.
//!
//! Every rebuild method goes through [`grow`], which records whether the
//! operation had to obtain fresh memory — the counter behind the
//! engine's `scratch_allocs` statistic: after a warm-up rebuild sized to
//! the host graph, steady-state rebuilds report zero growth events.

use crate::digraph::DiGraph;
use crate::epoch::{ArcDelta, EdgeDelta};
use crate::ids::{ArcId, EdgeId, VertexId};
use crate::undirected::UndirectedGraph;

/// Clears `v` and resizes it to `len` copies of `fill`, reusing capacity.
/// Increments `*allocs` when the resize had to grow the allocation.
#[inline]
pub fn grow<T: Clone>(v: &mut Vec<T>, len: usize, fill: T, allocs: &mut u64) {
    if len > v.capacity() {
        *allocs += 1;
    }
    v.clear();
    v.resize(len, fill);
}

/// Pushes onto `v`, counting a growth event when capacity is exhausted.
#[inline]
pub fn push_tracked<T>(v: &mut Vec<T>, x: T, allocs: &mut u64) {
    if v.len() == v.capacity() {
        *allocs += 1;
    }
    v.push(x);
}

// ---------------------------------------------------------------------------
// Word-packed bitsets.
//
// The path-generation hot path sweeps vertex sets (`reached`, `removed`,
// `admissible`) over the CSR views above. Packing them into `u64` words
// turns per-vertex branchy probes into single-bit tests on 8-byte cache
// lines (64 vertices per line instead of 1–4), and set algebra like
// "reached and not removed" into word-parallel AND-NOT loops. The helpers
// are free functions over plain `&[u64]` slices so callers keep the
// grow/alloc accounting of their owning `Vec<u64>` (via [`grow`]).

/// Number of `u64` words needed for an `n`-bit set.
#[inline]
pub const fn bit_words(n: usize) -> usize {
    n.div_ceil(64)
}

/// Tests bit `i`.
#[inline]
pub fn bit_test(words: &[u64], i: usize) -> bool {
    (words[i >> 6] >> (i & 63)) & 1 != 0
}

/// Sets bit `i`.
#[inline]
pub fn bit_set(words: &mut [u64], i: usize) {
    words[i >> 6] |= 1u64 << (i & 63);
}

/// Clears bit `i`.
#[inline]
pub fn bit_clear(words: &mut [u64], i: usize) {
    words[i >> 6] &= !(1u64 << (i & 63));
}

/// Sets bit `i` to `on`.
#[inline]
pub fn bit_assign(words: &mut [u64], i: usize, on: bool) {
    let w = &mut words[i >> 6];
    let m = 1u64 << (i & 63);
    *w = (*w & !m) | (u64::from(on) << (i & 63));
}

/// Zeroes the whole set (a word-wise memset — the packed replacement for
/// an epoch bump over a per-vertex stamp array).
#[inline]
pub fn bits_clear(words: &mut [u64]) {
    words.fill(0);
}

/// `dst = a & !b`, word-parallel. The "admissible frontier" sweep:
/// `a` = reached-from-`t`, `b` = removed, `dst` = vertices an arc may
/// legally continue to.
#[inline]
pub fn bits_and_not(dst: &mut [u64], a: &[u64], b: &[u64]) {
    for ((d, &x), &y) in dst.iter_mut().zip(a).zip(b) {
        *d = x & !y;
    }
}

/// Tests bit `i` and clears it when set. The fused BFS-frontier probe:
/// with a candidate set `¬removed ∧ ¬reached`, "may this arc stamp `z`?"
/// and "stamp `z`" collapse into one word access. The store is skipped
/// on the (common) miss path so probing an already-taken bit stays
/// read-only.
#[inline]
pub fn bit_take(words: &mut [u64], i: usize) -> bool {
    let w = &mut words[i >> 6];
    let m = 1u64 << (i & 63);
    if *w & m == 0 {
        return false;
    }
    *w &= !m;
    true
}

/// `dst = !(a | b)`, word-parallel. Builds the candidate frontier
/// `¬removed ∧ ¬reached` in one pass when `a` = removed and `b` =
/// already-reached (or zero).
#[inline]
pub fn bits_not_or(dst: &mut [u64], a: &[u64], b: &[u64]) {
    for ((d, &x), &y) in dst.iter_mut().zip(a).zip(b) {
        *d = !(x | y);
    }
}

/// `dst = !a`, word-parallel: seeds a candidate set from a removal mask.
#[inline]
pub fn bits_not(dst: &mut [u64], a: &[u64]) {
    for (d, &x) in dst.iter_mut().zip(a) {
        *d = !x;
    }
}

/// The splitmix64 finalizer: a cheap, high-quality 64-bit mixer used to
/// derive per-vertex Zobrist hashes for removal-mask signatures (the
/// cross-branch `F-STP` cache key). XOR-folding `mix64` values is
/// history-independent: masking and unmasking the same vertex cancels.
#[inline]
pub const fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// An undirected multigraph in CSR form: `adjacency(v)` is a packed slice
/// of `(neighbor, edge)` pairs, ordered by edge id.
#[derive(Clone, Debug, Default)]
pub struct CsrUndirected {
    /// `offsets[v] .. offsets[v + 1]` indexes `adj` (length `n + 1`).
    offsets: Vec<u32>,
    /// Packed `(neighbor, edge)` pairs (length `2m`).
    adj: Vec<(VertexId, EdgeId)>,
    /// Endpoints per edge id (length `m`).
    endpoints: Vec<(VertexId, VertexId)>,
    /// Growth events since construction (see module docs).
    allocs: u64,
}

impl CsrUndirected {
    /// Builds the CSR view of `g`.
    pub fn from_graph(g: &UndirectedGraph) -> Self {
        let mut csr = CsrUndirected::default();
        csr.rebuild_from_graph(g);
        csr
    }

    /// Rebuilds in place from `g`, reusing buffers.
    pub fn rebuild_from_graph(&mut self, g: &UndirectedGraph) {
        let mut allocs = self.allocs;
        grow(
            &mut self.endpoints,
            g.num_edges(),
            (VertexId(0), VertexId(0)),
            &mut allocs,
        );
        for e in g.edges() {
            self.endpoints[e.index()] = g.endpoints(e);
        }
        self.allocs = allocs;
        self.rebuild_adjacency(g.num_vertices());
    }

    /// Rebuilds in place from an explicit endpoint list (used for
    /// contracted and augmented graphs). Edge ids follow list order.
    pub fn rebuild_from_edges(&mut self, n: usize, endpoints: &[(VertexId, VertexId)]) {
        let mut allocs = self.allocs;
        grow(
            &mut self.endpoints,
            endpoints.len(),
            (VertexId(0), VertexId(0)),
            &mut allocs,
        );
        self.endpoints.copy_from_slice(endpoints);
        self.allocs = allocs;
        self.rebuild_adjacency(n);
    }

    /// Counting sort of `endpoints` into the offset/packed arrays.
    fn rebuild_adjacency(&mut self, n: usize) {
        let m = self.endpoints.len();
        let mut allocs = self.allocs;
        grow(&mut self.offsets, n + 1, 0u32, &mut allocs);
        for &(u, v) in &self.endpoints {
            self.offsets[u.index() + 1] += 1;
            self.offsets[v.index() + 1] += 1;
        }
        for i in 0..n {
            self.offsets[i + 1] += self.offsets[i];
        }
        grow(&mut self.adj, 2 * m, (VertexId(0), EdgeId(0)), &mut allocs);
        // `offsets[v]` doubles as the fill cursor for `v`; afterwards it
        // holds the *end* of `v`'s range, i.e. the start of `v + 1`'s.
        for (i, &(u, v)) in self.endpoints.iter().enumerate() {
            let e = EdgeId::new(i);
            self.adj[self.offsets[u.index()] as usize] = (v, e);
            self.offsets[u.index()] += 1;
            self.adj[self.offsets[v.index()] as usize] = (u, e);
            self.offsets[v.index()] += 1;
        }
        for v in (1..=n).rev() {
            self.offsets[v] = self.offsets[v - 1];
        }
        self.offsets[0] = 0;
        self.allocs = allocs;
    }

    /// Applies an epoch delta in place: the endpoint table is patched
    /// directly from the delta records (`O(|delta|)` — the records carry
    /// exactly the `push`/`swap_remove` edits the source graph performed),
    /// then adjacency is re-sorted by the usual counting pass. After
    /// warm-up this allocates nothing, versus re-reading the whole source
    /// graph in [`Self::rebuild_from_graph`].
    ///
    /// `n` is the (unchanged) vertex count of the source graph.
    pub fn apply_delta(&mut self, n: usize, delta: &[EdgeDelta]) {
        let mut allocs = self.allocs;
        for d in delta {
            match *d {
                EdgeDelta::Inserted { e, u, v } => {
                    debug_assert_eq!(e.index(), self.endpoints.len(), "dense insert");
                    push_tracked(&mut self.endpoints, (u, v), &mut allocs);
                }
                EdgeDelta::Removed { e, .. } => {
                    self.endpoints.swap_remove(e.index());
                }
            }
        }
        self.allocs = allocs;
        self.rebuild_adjacency(n);
    }

    /// Reserves for rebuilds with up to `n` vertices and `m` edges, so
    /// they do not allocate.
    pub fn preallocate(&mut self, n: usize, m: usize) {
        if self.offsets.capacity() < n + 1 {
            self.offsets.reserve(n + 1 - self.offsets.capacity());
        }
        if self.adj.capacity() < 2 * m {
            self.adj.reserve(2 * m - self.adj.capacity());
        }
        if self.endpoints.capacity() < m {
            self.endpoints.reserve(m - self.endpoints.capacity());
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.endpoints.len()
    }

    /// The packed `(neighbor, edge)` slice of `v`.
    #[inline]
    pub fn adjacency(&self, v: VertexId) -> &[(VertexId, EdgeId)] {
        &self.adj[self.offsets[v.index()] as usize..self.offsets[v.index() + 1] as usize]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        (self.offsets[v.index() + 1] - self.offsets[v.index()]) as usize
    }

    /// Endpoints of edge `e`.
    #[inline]
    pub fn endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        self.endpoints[e.index()]
    }

    /// The endpoint of `e` that is not `v`.
    #[inline]
    pub fn other_endpoint(&self, e: EdgeId, v: VertexId) -> VertexId {
        let (a, b) = self.endpoints[e.index()];
        if v == a {
            b
        } else {
            a
        }
    }

    /// Growth events since construction.
    #[inline]
    pub fn alloc_events(&self) -> u64 {
        self.allocs
    }

    /// Bytes of owned buffer capacity (scratch-space accounting).
    pub fn capacity_bytes(&self) -> u64 {
        (self.offsets.capacity() * std::mem::size_of::<u32>()
            + self.adj.capacity() * std::mem::size_of::<(VertexId, EdgeId)>()
            + self.endpoints.capacity() * std::mem::size_of::<(VertexId, VertexId)>())
            as u64
    }
}

/// A directed multigraph in CSR form with both out- and in-adjacency,
/// usable as a [`steiner` path-view](crate) without per-query indirection.
///
/// Arc ids are preserved from the source ([`DiGraph`] arc ids, or `2e` /
/// `2e + 1` for the doubled form of an undirected graph — the same
/// convention as [`crate::digraph::DoubledDigraph`]).
#[derive(Clone, Debug, Default)]
pub struct CsrDigraph {
    out_off: Vec<u32>,
    out_adj: Vec<(VertexId, ArcId)>,
    in_off: Vec<u32>,
    in_adj: Vec<(VertexId, ArcId)>,
    /// `(tail, head)` per arc id.
    arcs: Vec<(VertexId, VertexId)>,
    allocs: u64,
}

impl CsrDigraph {
    /// Builds the CSR view of `d` (arc ids preserved).
    pub fn from_digraph(d: &DiGraph) -> Self {
        let mut csr = CsrDigraph::default();
        csr.rebuild_from_digraph(d);
        csr
    }

    /// Builds the doubled CSR digraph of an undirected graph: edge `e`
    /// becomes arcs `2e` (forward) and `2e + 1` (backward).
    pub fn doubled(g: &UndirectedGraph) -> Self {
        let mut csr = CsrDigraph::default();
        csr.rebuild_doubled(g);
        csr
    }

    /// Rebuilds in place from `d`, reusing buffers.
    pub fn rebuild_from_digraph(&mut self, d: &DiGraph) {
        let mut allocs = self.allocs;
        grow(
            &mut self.arcs,
            d.num_arcs(),
            (VertexId(0), VertexId(0)),
            &mut allocs,
        );
        for a in d.arcs() {
            self.arcs[a.index()] = d.arc(a);
        }
        self.allocs = allocs;
        self.rebuild_adjacency(d.num_vertices());
    }

    /// Rebuilds the doubled form of `g` in place, reusing buffers.
    pub fn rebuild_doubled(&mut self, g: &UndirectedGraph) {
        let mut allocs = self.allocs;
        grow(
            &mut self.arcs,
            2 * g.num_edges(),
            (VertexId(0), VertexId(0)),
            &mut allocs,
        );
        for e in g.edges() {
            let (u, v) = g.endpoints(e);
            self.arcs[2 * e.index()] = (u, v);
            self.arcs[2 * e.index() + 1] = (v, u);
        }
        self.allocs = allocs;
        self.rebuild_adjacency(g.num_vertices());
    }

    /// Rebuilds the doubled form of a CSR undirected graph in place.
    pub fn rebuild_doubled_from_csr(&mut self, g: &CsrUndirected) {
        let mut allocs = self.allocs;
        grow(
            &mut self.arcs,
            2 * g.num_edges(),
            (VertexId(0), VertexId(0)),
            &mut allocs,
        );
        for i in 0..g.num_edges() {
            let (u, v) = g.endpoints(EdgeId::new(i));
            self.arcs[2 * i] = (u, v);
            self.arcs[2 * i + 1] = (v, u);
        }
        self.allocs = allocs;
        self.rebuild_adjacency(g.num_vertices());
    }

    /// Rebuilds in place from an explicit `(tail, head)` arc list.
    pub fn rebuild_from_arcs(&mut self, n: usize, arcs: &[(VertexId, VertexId)]) {
        let mut allocs = self.allocs;
        grow(
            &mut self.arcs,
            arcs.len(),
            (VertexId(0), VertexId(0)),
            &mut allocs,
        );
        self.arcs.copy_from_slice(arcs);
        self.allocs = allocs;
        self.rebuild_adjacency(n);
    }

    fn rebuild_adjacency(&mut self, n: usize) {
        let m = self.arcs.len();
        let mut allocs = self.allocs;
        grow(&mut self.out_off, n + 1, 0u32, &mut allocs);
        grow(&mut self.in_off, n + 1, 0u32, &mut allocs);
        for &(t, h) in &self.arcs {
            self.out_off[t.index() + 1] += 1;
            self.in_off[h.index() + 1] += 1;
        }
        for i in 0..n {
            self.out_off[i + 1] += self.out_off[i];
            self.in_off[i + 1] += self.in_off[i];
        }
        grow(&mut self.out_adj, m, (VertexId(0), ArcId(0)), &mut allocs);
        grow(&mut self.in_adj, m, (VertexId(0), ArcId(0)), &mut allocs);
        for (i, &(t, h)) in self.arcs.iter().enumerate() {
            let a = ArcId::new(i);
            self.out_adj[self.out_off[t.index()] as usize] = (h, a);
            self.out_off[t.index()] += 1;
            self.in_adj[self.in_off[h.index()] as usize] = (t, a);
            self.in_off[h.index()] += 1;
        }
        for v in (1..=n).rev() {
            self.out_off[v] = self.out_off[v - 1];
            self.in_off[v] = self.in_off[v - 1];
        }
        self.out_off[0] = 0;
        self.in_off[0] = 0;
        self.allocs = allocs;
    }

    /// Applies an arc-level epoch delta in place (see
    /// [`CsrUndirected::apply_delta`]): patches the arc table from the
    /// records, then re-sorts adjacency.
    pub fn apply_delta(&mut self, n: usize, delta: &[ArcDelta]) {
        let mut allocs = self.allocs;
        for d in delta {
            match *d {
                ArcDelta::Inserted { a, tail, head } => {
                    debug_assert_eq!(a.index(), self.arcs.len(), "dense insert");
                    push_tracked(&mut self.arcs, (tail, head), &mut allocs);
                }
                ArcDelta::Removed { a, .. } => {
                    self.arcs.swap_remove(a.index());
                }
            }
        }
        self.allocs = allocs;
        self.rebuild_adjacency(n);
    }

    /// Applies an undirected epoch delta to the **doubled** view: edge `e`
    /// owns arcs `2e`/`2e + 1`, so an edge-level `swap_remove` becomes the
    /// paired arc move that keeps the arithmetic arc↔edge mapping intact.
    pub fn apply_delta_doubled(&mut self, n: usize, delta: &[EdgeDelta]) {
        let mut allocs = self.allocs;
        for d in delta {
            match *d {
                EdgeDelta::Inserted { e, u, v } => {
                    debug_assert_eq!(2 * e.index(), self.arcs.len(), "dense insert");
                    push_tracked(&mut self.arcs, (u, v), &mut allocs);
                    push_tracked(&mut self.arcs, (v, u), &mut allocs);
                }
                EdgeDelta::Removed { e, .. } => {
                    let last = self.arcs.len() / 2 - 1;
                    if e.index() != last {
                        self.arcs[2 * e.index()] = self.arcs[2 * last];
                        self.arcs[2 * e.index() + 1] = self.arcs[2 * last + 1];
                    }
                    self.arcs.truncate(2 * last);
                }
            }
        }
        self.allocs = allocs;
        self.rebuild_adjacency(n);
    }

    /// Reserves for rebuilds with up to `n` vertices and `m` arcs, so
    /// they do not allocate.
    pub fn preallocate(&mut self, n: usize, m: usize) {
        if self.out_off.capacity() < n + 1 {
            self.out_off.reserve(n + 1 - self.out_off.capacity());
        }
        if self.in_off.capacity() < n + 1 {
            self.in_off.reserve(n + 1 - self.in_off.capacity());
        }
        if self.out_adj.capacity() < m {
            self.out_adj.reserve(m - self.out_adj.capacity());
        }
        if self.in_adj.capacity() < m {
            self.in_adj.reserve(m - self.in_adj.capacity());
        }
        if self.arcs.capacity() < m {
            self.arcs.reserve(m - self.arcs.capacity());
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.out_off.len().saturating_sub(1)
    }

    /// Number of arcs.
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.arcs.len()
    }

    /// Packed `(head, arc)` slice of arcs leaving `v`, in arc-id order —
    /// the total order `≺_v` that the path enumerator's `F-STP` requires.
    #[inline]
    pub fn out_adjacency(&self, v: VertexId) -> &[(VertexId, ArcId)] {
        &self.out_adj[self.out_off[v.index()] as usize..self.out_off[v.index() + 1] as usize]
    }

    /// Packed `(tail, arc)` slice of arcs entering `v`.
    #[inline]
    pub fn in_adjacency(&self, v: VertexId) -> &[(VertexId, ArcId)] {
        &self.in_adj[self.in_off[v.index()] as usize..self.in_off[v.index() + 1] as usize]
    }

    /// `(tail, head)` of arc `a`.
    #[inline]
    pub fn arc(&self, a: ArcId) -> (VertexId, VertexId) {
        self.arcs[a.index()]
    }

    /// Tail of arc `a`.
    #[inline]
    pub fn tail(&self, a: ArcId) -> VertexId {
        self.arcs[a.index()].0
    }

    /// Head of arc `a`.
    #[inline]
    pub fn head(&self, a: ArcId) -> VertexId {
        self.arcs[a.index()].1
    }

    /// Growth events since construction.
    #[inline]
    pub fn alloc_events(&self) -> u64 {
        self.allocs
    }

    /// Bytes of owned buffer capacity (scratch-space accounting).
    pub fn capacity_bytes(&self) -> u64 {
        ((self.out_off.capacity() + self.in_off.capacity()) * std::mem::size_of::<u32>()
            + (self.out_adj.capacity() + self.in_adj.capacity())
                * std::mem::size_of::<(VertexId, ArcId)>()
            + self.arcs.capacity() * std::mem::size_of::<(VertexId, VertexId)>()) as u64
    }
}

/// A reusable incidence index over an *edge subset* of a host graph:
/// `incident(v)` lists the subset edges touching `v`. Rebuilt per node in
/// O(n + |edges|) without allocating (after warm-up); replaces the
/// `Vec<Vec<EdgeId>>` builds in leaf pruning, branch-side search, and the
/// forest unique-completion walk.
#[derive(Clone, Debug, Default)]
pub struct IncidenceCsr {
    offsets: Vec<u32>,
    items: Vec<EdgeId>,
    allocs: u64,
}

impl IncidenceCsr {
    /// Rebuilds the index for `edges`, whose endpoints are given by
    /// `endpoints_of`. `n` is the host vertex count.
    pub fn rebuild(
        &mut self,
        n: usize,
        edges: &[EdgeId],
        mut endpoints_of: impl FnMut(EdgeId) -> (VertexId, VertexId),
    ) {
        let mut allocs = self.allocs;
        grow(&mut self.offsets, n + 1, 0u32, &mut allocs);
        for &e in edges {
            let (u, v) = endpoints_of(e);
            self.offsets[u.index() + 1] += 1;
            self.offsets[v.index() + 1] += 1;
        }
        for i in 0..n {
            self.offsets[i + 1] += self.offsets[i];
        }
        grow(&mut self.items, 2 * edges.len(), EdgeId(0), &mut allocs);
        for &e in edges {
            let (u, v) = endpoints_of(e);
            self.items[self.offsets[u.index()] as usize] = e;
            self.offsets[u.index()] += 1;
            self.items[self.offsets[v.index()] as usize] = e;
            self.offsets[v.index()] += 1;
        }
        for v in (1..=n).rev() {
            self.offsets[v] = self.offsets[v - 1];
        }
        self.offsets[0] = 0;
        self.allocs = allocs;
    }

    /// Reserves for hosts with `n` vertices and subsets of up to
    /// `max_edges` edges, so later rebuilds do not allocate.
    pub fn preallocate(&mut self, n: usize, max_edges: usize) {
        if self.offsets.capacity() < n + 1 {
            self.offsets.reserve(n + 1 - self.offsets.capacity());
        }
        if self.items.capacity() < 2 * max_edges {
            self.items.reserve(2 * max_edges - self.items.capacity());
        }
    }

    /// The subset edges incident to `v`.
    #[inline]
    pub fn incident(&self, v: VertexId) -> &[EdgeId] {
        &self.items[self.offsets[v.index()] as usize..self.offsets[v.index() + 1] as usize]
    }

    /// Growth events since construction.
    #[inline]
    pub fn alloc_events(&self) -> u64 {
        self.allocs
    }

    /// Bytes of owned buffer capacity.
    pub fn capacity_bytes(&self) -> u64 {
        (self.offsets.capacity() * std::mem::size_of::<u32>()
            + self.items.capacity() * std::mem::size_of::<EdgeId>()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn undirected_csr_matches_graph() {
        let g = UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)]).unwrap();
        let csr = CsrUndirected::from_graph(&g);
        assert_eq!(csr.num_vertices(), 4);
        assert_eq!(csr.num_edges(), 5);
        for v in g.vertices() {
            let want: Vec<(VertexId, EdgeId)> = g.neighbors(v).collect();
            assert_eq!(csr.adjacency(v), &want[..], "vertex {v}");
            assert_eq!(csr.degree(v), g.degree(v));
        }
        for e in g.edges() {
            assert_eq!(csr.endpoints(e), g.endpoints(e));
            let (u, _) = g.endpoints(e);
            assert_eq!(csr.other_endpoint(e, u), g.other_endpoint(e, u));
        }
    }

    #[test]
    fn adjacency_is_in_edge_id_order() {
        let g = UndirectedGraph::from_edges(3, &[(0, 1), (0, 2), (0, 1)]).unwrap();
        let csr = CsrUndirected::from_graph(&g);
        let ids: Vec<EdgeId> = csr.adjacency(VertexId(0)).iter().map(|&(_, e)| e).collect();
        assert_eq!(ids, vec![EdgeId(0), EdgeId(1), EdgeId(2)]);
    }

    #[test]
    fn rebuild_reuses_capacity() {
        let g = UndirectedGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        let mut csr = CsrUndirected::from_graph(&g);
        let after_build = csr.alloc_events();
        let smaller = UndirectedGraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        csr.rebuild_from_graph(&smaller);
        csr.rebuild_from_graph(&g);
        assert_eq!(
            csr.alloc_events(),
            after_build,
            "same-size rebuilds must not grow"
        );
    }

    #[test]
    fn digraph_csr_matches_digraph() {
        let d = DiGraph::from_arcs(4, &[(0, 1), (1, 2), (2, 0), (0, 2), (3, 0)]).unwrap();
        let csr = CsrDigraph::from_digraph(&d);
        assert_eq!(csr.num_vertices(), 4);
        assert_eq!(csr.num_arcs(), 5);
        for v in d.vertices() {
            let out: Vec<(VertexId, ArcId)> = d.out_neighbors(v).collect();
            let inn: Vec<(VertexId, ArcId)> = d.in_neighbors(v).collect();
            assert_eq!(csr.out_adjacency(v), &out[..]);
            assert_eq!(csr.in_adjacency(v), &inn[..]);
        }
        for a in d.arcs() {
            assert_eq!(csr.arc(a), d.arc(a));
            assert_eq!(csr.tail(a), d.tail(a));
            assert_eq!(csr.head(a), d.head(a));
        }
    }

    #[test]
    fn doubled_matches_doubled_digraph() {
        let g = UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let doubled = crate::digraph::DoubledDigraph::new(&g);
        let csr = CsrDigraph::doubled(&g);
        assert_eq!(csr.num_arcs(), doubled.digraph.num_arcs());
        for v in g.vertices() {
            let want: Vec<(VertexId, ArcId)> = doubled.digraph.out_neighbors(v).collect();
            assert_eq!(csr.out_adjacency(v), &want[..]);
        }
        for a in doubled.digraph.arcs() {
            assert_eq!(csr.arc(a), doubled.digraph.arc(a));
        }
        // Arc → edge mapping is arithmetic, as in DoubledDigraph.
        assert_eq!(csr.arc(ArcId(3)).0, g.endpoints(EdgeId(1)).1);
    }

    #[test]
    fn apply_delta_tracks_mutated_graph() {
        use crate::epoch::{EpochGraph, GraphMutation};
        let g = UndirectedGraph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (2, 0)]).unwrap();
        let mut eg = EpochGraph::new(g);
        let mut csr = CsrUndirected::from_graph(eg.graph());
        csr.preallocate(6, 12);
        let mut epoch = eg.epoch();
        let batches: Vec<Vec<GraphMutation>> = vec![
            vec![GraphMutation::InsertEdge {
                u: VertexId(4),
                v: VertexId(5),
            }],
            vec![
                GraphMutation::RemoveEdge(EdgeId(1)),
                GraphMutation::InsertEdge {
                    u: VertexId(0),
                    v: VertexId(3),
                },
            ],
            vec![GraphMutation::RemoveEdge(EdgeId(0))],
        ];
        for batch in &batches {
            eg.batch_apply(batch).unwrap();
            for rec in eg.deltas_since(epoch).expect("log covers the gap") {
                csr.apply_delta(eg.graph().num_vertices(), &rec.edits);
            }
            epoch = eg.epoch();
            let fresh = CsrUndirected::from_graph(eg.graph());
            for v in eg.graph().vertices() {
                assert_eq!(csr.adjacency(v), fresh.adjacency(v), "vertex {v}");
            }
            for e in eg.graph().edges() {
                assert_eq!(csr.endpoints(e), fresh.endpoints(e));
            }
        }
    }

    #[test]
    fn apply_delta_doubled_tracks_mutated_graph() {
        use crate::epoch::EpochGraph;
        let g = UndirectedGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let mut eg = EpochGraph::new(g);
        let mut csr = CsrDigraph::doubled(eg.graph());
        let mut epoch = eg.epoch();
        eg.insert_edge(VertexId(4), VertexId(0)).unwrap();
        eg.remove_edge(EdgeId(1)).unwrap();
        for rec in eg.deltas_since(epoch).unwrap() {
            csr.apply_delta_doubled(eg.graph().num_vertices(), &rec.edits);
        }
        epoch = eg.epoch();
        let _ = epoch;
        let fresh = CsrDigraph::doubled(eg.graph());
        for v in eg.graph().vertices() {
            assert_eq!(csr.out_adjacency(v), fresh.out_adjacency(v));
            assert_eq!(csr.in_adjacency(v), fresh.in_adjacency(v));
        }
    }

    #[test]
    fn digraph_apply_delta_tracks_mutations() {
        use crate::epoch::{ArcMutation, EpochDigraph};
        let d = DiGraph::from_arcs(5, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        let mut ed = EpochDigraph::new(d);
        let mut csr = CsrDigraph::from_digraph(ed.digraph());
        let epoch = ed.epoch();
        ed.batch_apply(&[
            ArcMutation::InsertArc {
                tail: VertexId(2),
                head: VertexId(3),
            },
            ArcMutation::RemoveArc(ArcId(0)),
        ])
        .unwrap();
        for rec in ed.deltas_since(epoch).unwrap() {
            csr.apply_delta(ed.digraph().num_vertices(), &rec.edits);
        }
        let fresh = CsrDigraph::from_digraph(ed.digraph());
        for v in ed.digraph().vertices() {
            assert_eq!(csr.out_adjacency(v), fresh.out_adjacency(v));
            assert_eq!(csr.in_adjacency(v), fresh.in_adjacency(v));
        }
    }

    #[test]
    fn bitset_helpers_round_trip() {
        let n = 130;
        let mut words = vec![0u64; bit_words(n)];
        assert_eq!(words.len(), 3);
        for i in [0usize, 1, 63, 64, 65, 127, 128, 129] {
            assert!(!bit_test(&words, i));
            bit_set(&mut words, i);
            assert!(bit_test(&words, i));
        }
        bit_clear(&mut words, 64);
        assert!(!bit_test(&words, 64));
        bit_assign(&mut words, 64, true);
        assert!(bit_test(&words, 64));
        bit_assign(&mut words, 64, false);
        assert!(!bit_test(&words, 64));
        let a = words.clone();
        let mut b = vec![0u64; 3];
        bit_set(&mut b, 63);
        bit_set(&mut b, 129);
        let mut dst = vec![u64::MAX; 3];
        bits_and_not(&mut dst, &a, &b);
        assert!(bit_test(&dst, 0) && !bit_test(&dst, 63) && !bit_test(&dst, 129));
        assert!(bit_test(&dst, 128));
        bits_clear(&mut dst);
        assert_eq!(dst, vec![0u64; 3]);
        // bit_take: first probe claims the bit, the second misses.
        let mut c = vec![0u64; 3];
        bit_set(&mut c, 65);
        assert!(bit_take(&mut c, 65));
        assert!(!bit_take(&mut c, 65));
        assert!(!bit_take(&mut c, 64));
        // bits_not / bits_not_or complement word-wise.
        let mut inv = vec![0u64; 3];
        bits_not(&mut inv, &b);
        assert!(!bit_test(&inv, 63) && bit_test(&inv, 64) && !bit_test(&inv, 129));
        let mut nor = vec![0u64; 3];
        bits_not_or(&mut nor, &a, &b);
        assert!(!bit_test(&nor, 63) && !bit_test(&nor, 0) && bit_test(&nor, 70));
        // The Zobrist fold cancels: x ^ h ^ h == x, and mix64 separates
        // nearby inputs.
        assert_ne!(mix64(1), mix64(2));
        assert_eq!(0x1234u64 ^ mix64(7) ^ mix64(7), 0x1234);
    }

    #[test]
    fn incidence_over_edge_subset() {
        let g = UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let mut inc = IncidenceCsr::default();
        inc.rebuild(4, &[EdgeId(0), EdgeId(2)], |e| g.endpoints(e));
        assert_eq!(inc.incident(VertexId(0)), &[EdgeId(0)]);
        assert_eq!(inc.incident(VertexId(1)), &[EdgeId(0)]);
        assert_eq!(inc.incident(VertexId(2)), &[EdgeId(2)]);
        assert_eq!(inc.incident(VertexId(3)), &[EdgeId(2)]);
        inc.rebuild(4, &[EdgeId(1)], |e| g.endpoints(e));
        assert_eq!(inc.incident(VertexId(0)), &[] as &[EdgeId]);
        assert_eq!(inc.incident(VertexId(1)), &[EdgeId(1)]);
    }
}
