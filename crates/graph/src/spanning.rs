//! Spanning trees containing a required subtree, and leaf pruning.
//!
//! These two operations implement the "completion" steps the paper uses
//! over and over: Lemma 13 (grow a partial Steiner tree into a spanning
//! tree, then remove non-terminal leaves — Proposition 3), Lemma 28
//! (terminal Steiner trees, Proposition 26) and Lemma 33 (directed Steiner
//! trees, Proposition 32).

use crate::digraph::DiGraph;
use crate::ids::{ArcId, EdgeId, VertexId};
use crate::traversal::{bfs, BfsForest};
use crate::undirected::UndirectedGraph;

/// A tree grown from seed vertices around a base edge set.
#[derive(Clone, Debug)]
pub struct GrownTree {
    /// All tree edges: the base edges plus BFS parent edges.
    pub edges: Vec<EdgeId>,
    /// The BFS forest used to grow the tree (parents point toward seeds).
    pub forest: BfsForest,
}

/// Grows a tree that contains all `base_edges` and spans every `allowed`
/// vertex reachable from `seeds`.
///
/// `seeds` must cover the vertex set of `base_edges`, and the base edges
/// must form a forest — both hold for the partial Steiner trees the
/// enumerators maintain. O(n + m).
pub fn grow_spanning_tree(
    g: &UndirectedGraph,
    seeds: &[VertexId],
    base_edges: &[EdgeId],
    allowed: Option<&[bool]>,
) -> GrownTree {
    let forest = bfs(g, seeds, allowed);
    let mut edges = Vec::with_capacity(base_edges.len() + forest.order.len());
    edges.extend_from_slice(base_edges);
    for &v in &forest.order {
        if let Some(e) = forest.parent_edge[v.index()] {
            edges.push(e);
        }
    }
    GrownTree { edges, forest }
}

/// Repeatedly deletes degree-≤1 vertices not accepted by `keep` from the
/// edge set `tree_edges`, returning the surviving edges (in their original
/// order). This is the Proposition 3 reduction: the result's leaves all
/// satisfy `keep`.
///
/// `tree_edges` must be a forest. O(n + |tree_edges|).
pub fn prune_leaves(
    g: &UndirectedGraph,
    tree_edges: &[EdgeId],
    keep: impl Fn(VertexId) -> bool,
) -> Vec<EdgeId> {
    let n = g.num_vertices();
    // Incidence restricted to the tree edges.
    let mut incident: Vec<Vec<EdgeId>> = vec![Vec::new(); n];
    let mut degree = vec![0u32; n];
    for &e in tree_edges {
        let (u, v) = g.endpoints(e);
        incident[u.index()].push(e);
        incident[v.index()].push(e);
        degree[u.index()] += 1;
        degree[v.index()] += 1;
    }
    let mut removed_edge = vec![false; g.num_edges()];
    let mut queue: Vec<VertexId> = Vec::new();
    for &e in tree_edges {
        let (u, v) = g.endpoints(e);
        for w in [u, v] {
            if degree[w.index()] == 1 && !keep(w) {
                queue.push(w);
            }
        }
    }
    queue.sort_unstable();
    queue.dedup();
    while let Some(v) = queue.pop() {
        if degree[v.index()] != 1 || keep(v) {
            continue;
        }
        let e = *incident[v.index()]
            .iter()
            .find(|e| !removed_edge[e.index()])
            .expect("degree-1 vertex has a live incident edge");
        removed_edge[e.index()] = true;
        degree[v.index()] = 0;
        let u = g.other_endpoint(e, v);
        degree[u.index()] -= 1;
        if degree[u.index()] == 1 && !keep(u) {
            queue.push(u);
        }
    }
    tree_edges
        .iter()
        .copied()
        .filter(|e| !removed_edge[e.index()])
        .collect()
}

/// Repeatedly deletes sink leaves not accepted by `keep` from a directed
/// tree given as an arc set, returning the surviving arcs. This is the
/// Proposition 32 reduction for directed Steiner trees: afterwards every
/// leaf (vertex without outgoing arcs) satisfies `keep`.
///
/// `tree_arcs` must form a directed tree (every non-root vertex has exactly
/// one incoming arc). The root is never deleted. O(n + |tree_arcs|).
pub fn prune_directed_leaves(
    d: &DiGraph,
    tree_arcs: &[ArcId],
    keep: impl Fn(VertexId) -> bool,
) -> Vec<ArcId> {
    let n = d.num_vertices();
    let mut out_degree = vec![0u32; n];
    let mut in_arc: Vec<Option<ArcId>> = vec![None; n];
    let mut in_tree = vec![false; n];
    for &a in tree_arcs {
        let (t, h) = d.arc(a);
        out_degree[t.index()] += 1;
        debug_assert!(in_arc[h.index()].is_none(), "directed tree: unique in-arc");
        in_arc[h.index()] = Some(a);
        in_tree[t.index()] = true;
        in_tree[h.index()] = true;
    }
    let mut removed_arc = vec![false; d.num_arcs()];
    let mut queue: Vec<VertexId> = Vec::new();
    for v in 0..n {
        let v = VertexId::new(v);
        // A deletable leaf has no outgoing arcs and *does* have an incoming
        // arc (so the root, which has none, is safe).
        if in_tree[v.index()]
            && out_degree[v.index()] == 0
            && in_arc[v.index()].is_some()
            && !keep(v)
        {
            queue.push(v);
        }
    }
    while let Some(v) = queue.pop() {
        let a = in_arc[v.index()].expect("queued leaf has an in-arc");
        if removed_arc[a.index()] {
            continue;
        }
        removed_arc[a.index()] = true;
        let t = d.tail(a);
        out_degree[t.index()] -= 1;
        if out_degree[t.index()] == 0 && in_arc[t.index()].is_some() && !keep(t) {
            queue.push(t);
        }
    }
    tree_arcs
        .iter()
        .copied()
        .filter(|a| !removed_arc[a.index()])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grow_spans_component_and_contains_base() {
        // Square with a pendant: 0-1-2-3-0, 3-4.
        let g = UndirectedGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 0), (3, 4)]).unwrap();
        let grown = grow_spanning_tree(&g, &[VertexId(0)], &[], None);
        assert_eq!(grown.edges.len(), 4, "spanning tree of 5 vertices");
        // Growing around base edge {1,2} keeps it.
        let grown2 = grow_spanning_tree(&g, &[VertexId(1), VertexId(2)], &[EdgeId(1)], None);
        assert!(grown2.edges.contains(&EdgeId(1)));
        assert_eq!(grown2.edges.len(), 4);
    }

    #[test]
    fn prune_removes_non_terminal_branches() {
        // Star with center 0, leaves 1..=3; keep only 1.
        let g = UndirectedGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        let keep = |v: VertexId| v == VertexId(1);
        let pruned = prune_leaves(&g, &[EdgeId(0), EdgeId(1), EdgeId(2)], keep);
        // 2 and 3 are pruned; then 0 has degree 1 but pruning it would make
        // 1 isolated... 0 is degree-1 and not kept, so edge {0,1} also goes.
        assert!(pruned.is_empty());
    }

    #[test]
    fn prune_keeps_kept_leaves() {
        // Path 0-1-2-3; keep 0 and 2: edge {2,3} goes, rest stays.
        let g = UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let keep = |v: VertexId| v == VertexId(0) || v == VertexId(2);
        let pruned = prune_leaves(&g, &[EdgeId(0), EdgeId(1), EdgeId(2)], keep);
        assert_eq!(pruned, vec![EdgeId(0), EdgeId(1)]);
    }

    #[test]
    fn prune_spanning_tree_to_steiner_tree() {
        // Grow a spanning tree of a path graph and prune to terminals {0, 2}.
        let g = UndirectedGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let grown = grow_spanning_tree(&g, &[VertexId(0)], &[], None);
        let terminals = [VertexId(0), VertexId(2)];
        let pruned = prune_leaves(&g, &grown.edges, |v| terminals.contains(&v));
        assert_eq!(pruned.len(), 2);
        let verts = g.edge_set_vertices(&pruned);
        assert_eq!(verts, vec![VertexId(0), VertexId(1), VertexId(2)]);
    }

    #[test]
    fn prune_directed_keeps_root() {
        // r=0 -> 1 -> 2, 0 -> 3; keep terminal 2 only.
        let d = DiGraph::from_arcs(4, &[(0, 1), (1, 2), (0, 3)]).unwrap();
        let pruned =
            prune_directed_leaves(&d, &[ArcId(0), ArcId(1), ArcId(2)], |v| v == VertexId(2));
        assert_eq!(pruned, vec![ArcId(0), ArcId(1)]);
    }

    #[test]
    fn prune_directed_cascades() {
        // r=0 -> 1 -> 2 -> 3; keep only 1: arcs (2,3) then (1,2) go.
        let d = DiGraph::from_arcs(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let pruned =
            prune_directed_leaves(&d, &[ArcId(0), ArcId(1), ArcId(2)], |v| v == VertexId(1));
        assert_eq!(pruned, vec![ArcId(0)]);
    }
}
