//! Spanning trees containing a required subtree, leaf pruning, and the
//! trail-backed incremental connectivity layer.
//!
//! The completion helpers implement the steps the paper uses over and
//! over: Lemma 13 (grow a partial Steiner tree into a spanning tree, then
//! remove non-terminal leaves — Proposition 3), Lemma 28 (terminal
//! Steiner trees, Proposition 26) and Lemma 33 (directed Steiner trees,
//! Proposition 32).
//!
//! [`DynamicSpanning`] is the incremental-classification substrate: a
//! spanning forest plus component labels over a static *forced-edge
//! skeleton* (bridges for the undirected problems, unique in-arcs for the
//! directed one), answering forced-path queries in O(affected component)
//! and supporting edge-contract deltas with exact LIFO undo. The
//! enumeration engines thread it through their branch-and-bound recursion
//! so `classify` can read component state instead of re-running a
//! spanning-growth pass per node.

use crate::digraph::DiGraph;
use crate::epoch::{EdgeDelta, RegionMap};
use crate::ids::{ArcId, EdgeId, VertexId};
use crate::traversal::{bfs, BfsForest};
use crate::undirected::UndirectedGraph;
use crate::union_find::UnionFind;

/// A tree grown from seed vertices around a base edge set.
#[derive(Clone, Debug)]
pub struct GrownTree {
    /// All tree edges: the base edges plus BFS parent edges.
    pub edges: Vec<EdgeId>,
    /// The BFS forest used to grow the tree (parents point toward seeds).
    pub forest: BfsForest,
}

/// Grows a tree that contains all `base_edges` and spans every `allowed`
/// vertex reachable from `seeds`.
///
/// `seeds` must cover the vertex set of `base_edges`, and the base edges
/// must form a forest — both hold for the partial Steiner trees the
/// enumerators maintain. O(n + m).
pub fn grow_spanning_tree(
    g: &UndirectedGraph,
    seeds: &[VertexId],
    base_edges: &[EdgeId],
    allowed: Option<&[bool]>,
) -> GrownTree {
    let forest = bfs(g, seeds, allowed);
    let mut edges = Vec::with_capacity(base_edges.len() + forest.order.len());
    edges.extend_from_slice(base_edges);
    for &v in &forest.order {
        if let Some(e) = forest.parent_edge[v.index()] {
            edges.push(e);
        }
    }
    GrownTree { edges, forest }
}

/// Repeatedly deletes degree-≤1 vertices not accepted by `keep` from the
/// edge set `tree_edges`, returning the surviving edges (in their original
/// order). This is the Proposition 3 reduction: the result's leaves all
/// satisfy `keep`.
///
/// `tree_edges` must be a forest. O(n + |tree_edges|).
pub fn prune_leaves(
    g: &UndirectedGraph,
    tree_edges: &[EdgeId],
    keep: impl Fn(VertexId) -> bool,
) -> Vec<EdgeId> {
    let n = g.num_vertices();
    // Incidence restricted to the tree edges.
    let mut incident: Vec<Vec<EdgeId>> = vec![Vec::new(); n];
    let mut degree = vec![0u32; n];
    for &e in tree_edges {
        let (u, v) = g.endpoints(e);
        incident[u.index()].push(e);
        incident[v.index()].push(e);
        degree[u.index()] += 1;
        degree[v.index()] += 1;
    }
    let mut removed_edge = vec![false; g.num_edges()];
    let mut queue: Vec<VertexId> = Vec::new();
    for &e in tree_edges {
        let (u, v) = g.endpoints(e);
        for w in [u, v] {
            if degree[w.index()] == 1 && !keep(w) {
                queue.push(w);
            }
        }
    }
    queue.sort_unstable();
    queue.dedup();
    while let Some(v) = queue.pop() {
        if degree[v.index()] != 1 || keep(v) {
            continue;
        }
        let e = *incident[v.index()]
            .iter()
            .find(|e| !removed_edge[e.index()])
            .expect("degree-1 vertex has a live incident edge");
        removed_edge[e.index()] = true;
        degree[v.index()] = 0;
        let u = g.other_endpoint(e, v);
        degree[u.index()] -= 1;
        if degree[u.index()] == 1 && !keep(u) {
            queue.push(u);
        }
    }
    tree_edges
        .iter()
        .copied()
        .filter(|e| !removed_edge[e.index()])
        .collect()
}

/// Reusable buffers for the allocation-free completion pipeline
/// ([`grow_spanning_tree_csr`] + [`prune_leaves_csr`]): one instance per
/// problem, sized at `prepare()`, reused every node.
#[derive(Clone, Debug, Default)]
pub struct CompletionScratch {
    /// In/out edge buffer: the grown tree, pruned in place.
    pub edges: Vec<EdgeId>,
    visited: Vec<bool>,
    /// BFS parent edge per visited vertex (`u32::MAX` for seeds); written
    /// by [`grow_spanning_tree_csr`], consumed by [`prune_leaves_csr`].
    parent_edge: Vec<u32>,
    queue: Vec<VertexId>,
    degree: Vec<u32>,
    /// Epoch-stamped removal marks (`removed_stamp[e] == epoch` ⇔ pruned
    /// this call) — avoids an O(m) clear per node.
    removed_stamp: Vec<u32>,
    epoch: u32,
    prune_queue: Vec<VertexId>,
    allocs: u64,
}

impl CompletionScratch {
    /// Reserves for graphs with `n` vertices and `m` edges, so later runs
    /// do not allocate. The edge buffer is sized for a grown tree plus a
    /// base forest plus one leaf edge per terminal (≤ 3n).
    pub fn preallocate(&mut self, n: usize, m: usize) {
        let edges_cap = 3 * n + 4;
        if self.edges.capacity() < edges_cap {
            self.edges.reserve(edges_cap - self.edges.capacity());
        }
        if self.visited.capacity() < n {
            self.visited.reserve(n - self.visited.capacity());
        }
        crate::csr::grow(&mut self.parent_edge, n, u32::MAX, &mut self.allocs);
        if self.queue.capacity() < n {
            self.queue.reserve(n - self.queue.capacity());
        }
        if self.degree.capacity() < n {
            self.degree.reserve(n - self.degree.capacity());
        }
        crate::csr::grow(&mut self.removed_stamp, m, 0u32, &mut self.allocs);
        let pq_cap = 6 * n + 16;
        if self.prune_queue.capacity() < pq_cap {
            self.prune_queue
                .reserve(pq_cap - self.prune_queue.capacity());
        }
        self.allocs = 0;
    }

    /// Growth events recorded by the scratch buffers.
    pub fn alloc_events(&self) -> u64 {
        self.allocs
    }

    /// Bytes of owned buffer capacity.
    pub fn capacity_bytes(&self) -> u64 {
        (self.edges.capacity() * std::mem::size_of::<EdgeId>()
            + self.visited.capacity() * std::mem::size_of::<bool>()
            + (self.queue.capacity() + self.prune_queue.capacity())
                * std::mem::size_of::<VertexId>()
            + (self.degree.capacity()
                + self.parent_edge.capacity()
                + self.removed_stamp.capacity())
                * std::mem::size_of::<u32>()) as u64
    }
}

/// As [`grow_spanning_tree`], but over a CSR view, writing the grown edge
/// set into `scratch.edges` without allocating (after warm-up). The BFS
/// forest itself is not exposed — the enumeration hot path only needs the
/// edge set.
pub fn grow_spanning_tree_csr(
    g: &crate::csr::CsrUndirected,
    seeds: &[VertexId],
    base_edges: &[EdgeId],
    allowed: Option<&[bool]>,
    scratch: &mut CompletionScratch,
) {
    let n = g.num_vertices();
    crate::csr::grow(&mut scratch.visited, n, false, &mut scratch.allocs);
    if scratch.parent_edge.len() != n {
        crate::csr::grow(&mut scratch.parent_edge, n, u32::MAX, &mut scratch.allocs);
    }
    scratch.queue.clear();
    if scratch.queue.capacity() < n {
        scratch.allocs += 1;
        scratch.queue.reserve(n);
    }
    scratch.edges.clear();
    if scratch.edges.capacity() < n + base_edges.len() {
        scratch.allocs += 1;
        scratch.edges.reserve(n + base_edges.len());
    }
    scratch.edges.extend_from_slice(base_edges);
    let ok = |v: VertexId| allowed.is_none_or(|mask| mask[v.index()]);
    for &r in seeds {
        if ok(r) && !scratch.visited[r.index()] {
            scratch.visited[r.index()] = true;
            scratch.parent_edge[r.index()] = u32::MAX;
            scratch.queue.push(r);
        }
    }
    let mut head = 0;
    while head < scratch.queue.len() {
        let u = scratch.queue[head];
        head += 1;
        for &(v, e) in g.adjacency(u) {
            if ok(v) && !scratch.visited[v.index()] {
                scratch.visited[v.index()] = true;
                scratch.parent_edge[v.index()] = e.index() as u32;
                scratch.edges.push(e);
                scratch.queue.push(v);
            }
        }
    }
}

/// As [`prune_leaves`], but pruning `scratch.edges` **in place** without
/// allocating — and without the incidence-index build or any O(n + m)
/// clearing: degrees are reset through the edge list itself and removal
/// marks are epoch stamps. Must be called on the scratch of the matching
/// [`grow_spanning_tree_csr`] run (optionally with extra leaf edges
/// appended whose kept endpoint is a `keep` vertex): the unique live edge
/// of a removable leaf is then its BFS parent edge — base edges join kept
/// vertices, leaf edges hang off kept vertices and give their inner
/// endpoint degree ≥ 2, and child edges are gone once a vertex reaches
/// degree 1.
pub fn prune_leaves_csr(
    g: &crate::csr::CsrUndirected,
    keep: impl Fn(VertexId) -> bool,
    scratch: &mut CompletionScratch,
) {
    let n = g.num_vertices();
    if scratch.degree.len() != n {
        crate::csr::grow(&mut scratch.degree, n, 0u32, &mut scratch.allocs);
    }
    if scratch.removed_stamp.len() != g.num_edges() {
        crate::csr::grow(
            &mut scratch.removed_stamp,
            g.num_edges(),
            0u32,
            &mut scratch.allocs,
        );
    }
    scratch.epoch += 1;
    let ep = scratch.epoch;
    for &e in &scratch.edges {
        let (u, v) = g.endpoints(e);
        scratch.degree[u.index()] = 0;
        scratch.degree[v.index()] = 0;
    }
    for &e in &scratch.edges {
        let (u, v) = g.endpoints(e);
        scratch.degree[u.index()] += 1;
        scratch.degree[v.index()] += 1;
    }
    scratch.prune_queue.clear();
    for &e in &scratch.edges {
        let (u, v) = g.endpoints(e);
        for w in [u, v] {
            if scratch.degree[w.index()] == 1 && !keep(w) {
                scratch.prune_queue.push(w);
            }
        }
    }
    while let Some(v) = scratch.prune_queue.pop() {
        if scratch.degree[v.index()] != 1 || keep(v) {
            continue;
        }
        let e = scratch.parent_edge[v.index()];
        debug_assert_ne!(e, u32::MAX, "removable leaves are BFS-discovered");
        debug_assert_ne!(
            scratch.removed_stamp[e as usize], ep,
            "a live leaf's parent edge is still present"
        );
        scratch.removed_stamp[e as usize] = ep;
        scratch.degree[v.index()] = 0;
        let u = g.other_endpoint(EdgeId::new(e as usize), v);
        scratch.degree[u.index()] -= 1;
        if scratch.degree[u.index()] == 1 && !keep(u) {
            scratch.prune_queue.push(u);
        }
    }
    let stamps = &scratch.removed_stamp;
    scratch.edges.retain(|e| stamps[e.index()] != ep);
}

/// Repeatedly deletes sink leaves not accepted by `keep` from a directed
/// tree given as an arc set, returning the surviving arcs. This is the
/// Proposition 32 reduction for directed Steiner trees: afterwards every
/// leaf (vertex without outgoing arcs) satisfies `keep`.
///
/// `tree_arcs` must form a directed tree (every non-root vertex has exactly
/// one incoming arc). The root is never deleted. O(n + |tree_arcs|).
pub fn prune_directed_leaves(
    d: &DiGraph,
    tree_arcs: &[ArcId],
    keep: impl Fn(VertexId) -> bool,
) -> Vec<ArcId> {
    let n = d.num_vertices();
    let mut out_degree = vec![0u32; n];
    let mut in_arc: Vec<Option<ArcId>> = vec![None; n];
    let mut in_tree = vec![false; n];
    for &a in tree_arcs {
        let (t, h) = d.arc(a);
        out_degree[t.index()] += 1;
        debug_assert!(in_arc[h.index()].is_none(), "directed tree: unique in-arc");
        in_arc[h.index()] = Some(a);
        in_tree[t.index()] = true;
        in_tree[h.index()] = true;
    }
    let mut removed_arc = vec![false; d.num_arcs()];
    let mut queue: Vec<VertexId> = Vec::new();
    for v in 0..n {
        let v = VertexId::new(v);
        // A deletable leaf has no outgoing arcs and *does* have an incoming
        // arc (so the root, which has none, is safe).
        if in_tree[v.index()]
            && out_degree[v.index()] == 0
            && in_arc[v.index()].is_some()
            && !keep(v)
        {
            queue.push(v);
        }
    }
    while let Some(v) = queue.pop() {
        let a = in_arc[v.index()].expect("queued leaf has an in-arc");
        if removed_arc[a.index()] {
            continue;
        }
        removed_arc[a.index()] = true;
        let t = d.tail(a);
        out_degree[t.index()] -= 1;
        if out_degree[t.index()] == 0 && in_arc[t.index()].is_some() && !keep(t) {
            queue.push(t);
        }
    }
    tree_arcs
        .iter()
        .copied()
        .filter(|a| !removed_arc[a.index()])
        .collect()
}

/// A checkpoint into a [`DynamicSpanning`], returned by
/// [`DynamicSpanning::mark`] and consumed by [`DynamicSpanning::undo_to`].
/// Marks follow the engine's strictly LIFO branch discipline: undoing to a
/// mark restores both the reach state and the contraction labels to their
/// exact state at the checkpoint.
#[derive(Copy, Clone, Debug)]
#[must_use = "pass the mark back to undo_to()"]
pub struct SpanMark {
    unions: usize,
}

/// Trail-backed dynamic connectivity over a static **forced-edge
/// skeleton**.
///
/// The enumeration engines never mutate the instance graph — a branch
/// step only *perturbs the partial solution* by one path. What their
/// per-node classification actually needs from the graph is connectivity
/// along edges that are *forced* (on every valid extension): bridges of
/// `G` for minimal Steiner trees (Lemma 16), bridges of `G[C ∪ W]` for
/// terminal Steiner trees (Lemma 30), bridges of the contracted
/// multigraph `G/E(F)` for forests (Lemma 24), and unique in-arcs for
/// directed trees (the forced suffix of every valid path). All of these
/// skeletons are **static** per prepared instance (for forests because
/// the bridges of `G/E(F)` are exactly the bridges of `G` that `E(F)`
/// has not contracted into self-loops), so this structure maintains:
///
/// * **forced-path queries** — [`Self::is_forced`] /
///   [`Self::collect_forced_path`] search the skeleton *from the queried
///   terminal* toward the nearest source with early exit, so a
///   classification pays O(affected component), not O(n + m), and a
///   node whose terminals are all in-solution pays nothing at all. The
///   *source oracle* (which vertices belong to the partial solution) is
///   supplied per query as a closure over the problem's own trail-backed
///   membership mask — the branch deltas the engines already apply on
///   descent and restore on backtrack double as this layer's state, so
///   descending costs the connectivity layer nothing;
/// * **component labels under contract deltas** — [`Self::contract`]
///   merges two skeleton classes (a rollback union–find) and
///   [`Self::connected`] answers same-component queries (the forest
///   engine's `G″` labels);
/// * an **undo trail** — [`Self::mark`] / [`Self::undo_to`] restore both
///   delta layers exactly on backtrack, matching the engine's LIFO
///   recursion.
///
/// Vertices flagged via [`Self::set_barrier`] are *usable as endpoints
/// of a query but never traversed through* (the terminal Steiner variant
/// uses this for terminals, which valid paths may end at but never pass
/// through), and a barrier source never terminates a query (a terminal
/// leaf of the partial tree is not a valid attachment point).
#[derive(Clone, Debug, Default)]
pub struct DynamicSpanning {
    n: usize,
    /// Skeleton out-CSR: `off[v]..off[v+1]` indexes `adj`. Undirected
    /// callers insert both arc directions; the directed enumerator
    /// inserts *reversed* unique in-arcs so queries walk backward.
    off: Vec<u32>,
    adj: Vec<(VertexId, u32)>,
    /// Build buffer for [`Self::add_arc`] until [`Self::finish_skeleton`].
    arc_buf: Vec<(VertexId, VertexId, u32)>,
    /// Query-endpoint-only vertices (see type docs).
    barrier: Vec<bool>,
    /// Per-query visit stamps and BFS parents.
    visit: Vec<u32>,
    query_epoch: u32,
    parent_edge: Vec<u32>,
    parent_vertex: Vec<u32>,
    queue: Vec<VertexId>,
    /// Per-extraction edge dedup stamps for
    /// [`Self::collect_forced_path`].
    edge_stamp: Vec<u32>,
    collect_epoch: u32,
    /// Largest skeleton edge id seen (+1), sizing `edge_stamp`.
    id_bound: usize,
    /// Component labels under contract deltas.
    comps: UnionFind,
    /// Sorted region ids the skeleton occupies (scratch for
    /// [`Self::carry_over`]).
    carry_scratch: Vec<u32>,
    queries: u64,
    explored: u64,
    max_explored: u64,
    allocs: u64,
}

impl DynamicSpanning {
    /// An empty structure; call [`Self::begin_skeleton`] before use.
    pub fn new() -> Self {
        DynamicSpanning::default()
    }

    /// Reserves every buffer for `n` vertices and `m` skeleton arcs so
    /// later skeleton rebuilds and queries do not allocate.
    pub fn preallocate(&mut self, n: usize, m: usize) {
        crate::csr::grow(&mut self.off, n + 1, 0u32, &mut self.allocs);
        crate::csr::grow(&mut self.adj, m, (VertexId(0), 0u32), &mut self.allocs);
        if self.arc_buf.capacity() < m {
            self.arc_buf.reserve(m - self.arc_buf.capacity());
        }
        crate::csr::grow(&mut self.barrier, n, false, &mut self.allocs);
        crate::csr::grow(&mut self.visit, n, 0u32, &mut self.allocs);
        crate::csr::grow(&mut self.parent_edge, n, 0u32, &mut self.allocs);
        crate::csr::grow(&mut self.parent_vertex, n, 0u32, &mut self.allocs);
        if self.queue.capacity() < n {
            self.queue.reserve(n - self.queue.capacity());
        }
        crate::csr::grow(&mut self.edge_stamp, m, 0u32, &mut self.allocs);
        if self.comps.len() != n {
            self.comps = UnionFind::new(n);
            self.comps.reserve_history(n + 1);
            self.allocs += 1;
        }
        self.allocs = 0;
    }

    /// Starts a skeleton rebuild over `n` vertices: clears the arc
    /// buffer, all barriers, the query state, and resets the contraction
    /// labels to singletons.
    pub fn begin_skeleton(&mut self, n: usize) {
        self.n = n;
        self.arc_buf.clear();
        crate::csr::grow(&mut self.barrier, n, false, &mut self.allocs);
        crate::csr::grow(&mut self.visit, n, 0u32, &mut self.allocs);
        crate::csr::grow(&mut self.parent_edge, n, 0u32, &mut self.allocs);
        crate::csr::grow(&mut self.parent_vertex, n, 0u32, &mut self.allocs);
        self.query_epoch = 0;
        self.collect_epoch = 0;
        self.id_bound = 0;
        if self.comps.len() == n {
            self.comps.reset(n);
        } else {
            self.comps = UnionFind::new(n);
            self.comps.reserve_history(n + 1);
            self.allocs += 1;
        }
    }

    /// Flags `v` as a barrier: queries may end *at* it (it is never a
    /// valid endpoint, though) but never traverse *through* it. Call
    /// between [`Self::begin_skeleton`] and [`Self::finish_skeleton`].
    pub fn set_barrier(&mut self, v: VertexId) {
        self.barrier[v.index()] = true;
    }

    /// Adds the directed skeleton arc `u → v` carrying caller-chosen
    /// `id` (an edge or arc id, returned verbatim by the forced-path
    /// walk).
    pub fn add_arc(&mut self, u: VertexId, v: VertexId, id: u32) {
        self.id_bound = self.id_bound.max(id as usize + 1);
        crate::csr::push_tracked(&mut self.arc_buf, (u, v, id), &mut self.allocs);
    }

    /// Adds the undirected skeleton edge `{u, v}` (both arc directions).
    pub fn add_edge(&mut self, u: VertexId, v: VertexId, id: u32) {
        self.add_arc(u, v, id);
        self.add_arc(v, u, id);
    }

    /// Finalizes the skeleton: counting-sorts the buffered arcs into the
    /// CSR. After this call the structure is ready for forced-path
    /// queries and contract deltas.
    pub fn finish_skeleton(&mut self) {
        let n = self.n;
        crate::csr::grow(&mut self.off, n + 1, 0u32, &mut self.allocs);
        for &(u, _, _) in &self.arc_buf {
            self.off[u.index() + 1] += 1;
        }
        for i in 0..n {
            self.off[i + 1] += self.off[i];
        }
        crate::csr::grow(
            &mut self.adj,
            self.arc_buf.len(),
            (VertexId(0), 0u32),
            &mut self.allocs,
        );
        for i in 0..self.arc_buf.len() {
            let (u, v, id) = self.arc_buf[i];
            self.adj[self.off[u.index()] as usize] = (v, id);
            self.off[u.index()] += 1;
        }
        for v in (1..=n).rev() {
            self.off[v] = self.off[v - 1];
        }
        self.off[0] = 0;
        crate::csr::grow(&mut self.edge_stamp, self.id_bound, 0u32, &mut self.allocs);
    }

    /// Number of vertices the skeleton was built over.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// **Contract delta.** Merges the component classes of `u` and `v`
    /// (an edge of the partial solution was added). Returns whether the
    /// classes were distinct. O(log n), O(1) to undo.
    pub fn contract(&mut self, u: VertexId, v: VertexId) -> bool {
        self.comps.union(u, v)
    }

    /// Whether `u` and `v` carry the same component label under the
    /// contract deltas applied so far.
    #[inline]
    pub fn connected(&self, u: VertexId, v: VertexId) -> bool {
        self.comps.same(u, v)
    }

    /// The current checkpoint of the contract-delta layer.
    pub fn mark(&self) -> SpanMark {
        SpanMark {
            unions: self.comps.snapshot(),
        }
    }

    /// Restores the exact state at `mark`: rolls the contraction labels
    /// back. O(undone deltas).
    pub fn undo_to(&mut self, mark: SpanMark) {
        self.comps.rollback(mark.unions);
    }

    /// **Cross-epoch reclassification.** Attempts to carry the prepared
    /// skeleton across a graph mutation batch instead of re-running
    /// skeleton construction. `regions` must be the *pre-mutation* region
    /// map the skeleton was prepared against; `delta` is the epoch log
    /// entry ([`crate::EpochGraph::deltas_since`]).
    ///
    /// Returns `true` when every mutated edge — and every edge the
    /// dense-id invariant renumbered — lies in regions the skeleton does
    /// not occupy: such edits cannot create, destroy, or renumber a
    /// skeleton edge, so the prepared classification state is still exact
    /// and the caller skips `prepare()`. Returns `false` otherwise (the
    /// caller rebuilds). Conservative by design: a `false` is never
    /// wrong, merely slower. O(n + |delta| · log R), allocation-free
    /// after warm-up.
    pub fn carry_over(&mut self, regions: &RegionMap, delta: &[EdgeDelta]) -> bool {
        if delta.is_empty() {
            return true;
        }
        if regions.num_vertices() != self.n {
            return false;
        }
        self.carry_scratch.clear();
        for v in 0..self.n {
            let occupied = self.off[v] < self.off[v + 1] || self.barrier[v];
            if occupied {
                if let Some(r) = regions.region_of(VertexId::new(v)) {
                    self.carry_scratch.push(r);
                }
            }
        }
        self.carry_scratch.sort_unstable();
        self.carry_scratch.dedup();
        for d in delta {
            let affected = match *d {
                EdgeDelta::Inserted { u, v, .. } => {
                    self.occupies_region_of(regions, u) || self.occupies_region_of(regions, v)
                }
                EdgeDelta::Removed { u, v, moved, .. } => {
                    self.occupies_region_of(regions, u)
                        || self.occupies_region_of(regions, v)
                        || moved.is_some_and(|(_, a, b)| {
                            self.occupies_region_of(regions, a)
                                || self.occupies_region_of(regions, b)
                        })
                }
            };
            if affected {
                return false;
            }
        }
        true
    }

    /// Whether the skeleton occupies `v`'s region (conservatively `true`
    /// for vertices the region map does not cover).
    fn occupies_region_of(&self, regions: &RegionMap, v: VertexId) -> bool {
        regions
            .region_of(v)
            .is_none_or(|r| self.carry_scratch.binary_search(&r).is_ok())
    }

    /// **Forced query.** Whether `w` has a skeleton path to a non-barrier
    /// source (per the `is_source` oracle — normally the problem's
    /// partial-solution membership mask) whose interior avoids barriers
    /// and sources — i.e. whether the partial solution forces a unique
    /// valid extension to `w`. Early-exiting BFS from `w`: O(explored),
    /// bounded by the skeleton component of `w`.
    pub fn is_forced(&mut self, w: VertexId, is_source: impl Fn(VertexId) -> bool) -> bool {
        self.forced_search(w, &is_source).is_some()
    }

    /// Starts a forced-path extraction: subsequent
    /// [`Self::collect_forced_path`] calls share one dedup generation,
    /// so overlapping paths contribute each skeleton edge once.
    pub fn begin_collect(&mut self) {
        if self.collect_epoch == u32::MAX {
            self.edge_stamp.iter_mut().for_each(|s| *s = 0);
            self.collect_epoch = 0;
        }
        self.collect_epoch += 1;
    }

    /// The all-forced scan-and-collect shared by the enumerators' Unique
    /// fast paths: starts a fresh extraction generation, then for every
    /// terminal not already in the solution collects its forced path.
    /// Returns `true` iff **all** terminals were forced; on `false` the
    /// caller discards whatever was pushed (the scan aborts at the first
    /// unforced terminal).
    pub fn collect_all_forced(
        &mut self,
        terminals: &[VertexId],
        is_source: impl Fn(VertexId) -> bool,
        mut push: impl FnMut(u32),
    ) -> bool {
        self.begin_collect();
        terminals
            .iter()
            .all(|&w| is_source(w) || self.collect_forced_path(w, &is_source, &mut push))
    }

    /// Re-runs the forced query for `w` and hands the skeleton edge ids
    /// of its forced path to `push` (nearest-source path, deduplicated
    /// against the other paths of this extraction generation). Returns
    /// whether `w` was forced; pushes nothing otherwise.
    pub fn collect_forced_path(
        &mut self,
        w: VertexId,
        is_source: impl Fn(VertexId) -> bool,
        mut push: impl FnMut(u32),
    ) -> bool {
        let Some(found) = self.forced_search(w, &is_source) else {
            return false;
        };
        let mut cur = found;
        while cur != w {
            let id = self.parent_edge[cur.index()];
            if self.edge_stamp[id as usize] != self.collect_epoch {
                self.edge_stamp[id as usize] = self.collect_epoch;
                push(id);
            }
            cur = VertexId(self.parent_vertex[cur.index()]);
        }
        true
    }

    /// The BFS core of the forced queries: explores from `w` (always
    /// expanding `w` itself, even if it is a barrier — the queried
    /// terminal's own edges are usable), never expanding other
    /// barriers, until the first non-barrier source. Returns the found
    /// source; BFS parents are left for path extraction.
    fn forced_search(
        &mut self,
        w: VertexId,
        is_source: &dyn Fn(VertexId) -> bool,
    ) -> Option<VertexId> {
        self.queries += 1;
        if is_source(w) && !self.barrier[w.index()] {
            return Some(w);
        }
        if self.query_epoch == u32::MAX {
            self.visit.iter_mut().for_each(|s| *s = 0);
            self.query_epoch = 0;
        }
        self.query_epoch += 1;
        let qe = self.query_epoch;
        self.visit[w.index()] = qe;
        self.queue.clear();
        self.queue.push(w);
        let mut head = 0usize;
        let mut found = None;
        'bfs: while head < self.queue.len() {
            let u = self.queue[head];
            head += 1;
            if u != w && self.barrier[u.index()] {
                continue; // endpoint-only: never traversed through
            }
            let (lo, hi) = (
                self.off[u.index()] as usize,
                self.off[u.index() + 1] as usize,
            );
            for k in lo..hi {
                let (v, id) = self.adj[k];
                if self.visit[v.index()] == qe {
                    continue;
                }
                self.visit[v.index()] = qe;
                self.parent_edge[v.index()] = id;
                self.parent_vertex[v.index()] = u.0;
                if is_source(v) {
                    if !self.barrier[v.index()] {
                        found = Some(v);
                        break 'bfs;
                    }
                    continue; // an in-solution barrier is not an endpoint
                }
                if self.queue.len() == self.queue.capacity() {
                    self.allocs += 1;
                }
                self.queue.push(v);
            }
        }
        // Discovered vertices (enqueued, whether or not expanded before
        // the early exit) — the query's O(affected) footprint.
        let explored = self.queue.len() as u64;
        self.explored += explored;
        self.max_explored = self.max_explored.max(explored);
        found
    }

    /// Cumulative query statistics: `(forced queries, vertices explored
    /// by them, largest single query exploration)` — the enumeration
    /// problems fold these into their run statistics.
    pub fn repair_stats(&self) -> (u64, u64, u64) {
        (self.queries, self.explored, self.max_explored)
    }

    /// Growth events recorded by the internal buffers.
    pub fn alloc_events(&self) -> u64 {
        self.allocs
    }

    /// Bytes of owned buffer capacity.
    pub fn capacity_bytes(&self) -> u64 {
        ((self.off.capacity()
            + self.visit.capacity()
            + self.parent_edge.capacity()
            + self.parent_vertex.capacity()
            + self.edge_stamp.capacity())
            * std::mem::size_of::<u32>()
            + self.adj.capacity() * std::mem::size_of::<(VertexId, u32)>()
            + self.arc_buf.capacity() * std::mem::size_of::<(VertexId, VertexId, u32)>()
            + self.barrier.capacity() * std::mem::size_of::<bool>()
            + self.queue.capacity() * std::mem::size_of::<VertexId>()) as u64
            + self.comps.capacity_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grow_spans_component_and_contains_base() {
        // Square with a pendant: 0-1-2-3-0, 3-4.
        let g = UndirectedGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 0), (3, 4)]).unwrap();
        let grown = grow_spanning_tree(&g, &[VertexId(0)], &[], None);
        assert_eq!(grown.edges.len(), 4, "spanning tree of 5 vertices");
        // Growing around base edge {1,2} keeps it.
        let grown2 = grow_spanning_tree(&g, &[VertexId(1), VertexId(2)], &[EdgeId(1)], None);
        assert!(grown2.edges.contains(&EdgeId(1)));
        assert_eq!(grown2.edges.len(), 4);
    }

    #[test]
    fn prune_removes_non_terminal_branches() {
        // Star with center 0, leaves 1..=3; keep only 1.
        let g = UndirectedGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        let keep = |v: VertexId| v == VertexId(1);
        let pruned = prune_leaves(&g, &[EdgeId(0), EdgeId(1), EdgeId(2)], keep);
        // 2 and 3 are pruned; then 0 has degree 1 but pruning it would make
        // 1 isolated... 0 is degree-1 and not kept, so edge {0,1} also goes.
        assert!(pruned.is_empty());
    }

    #[test]
    fn prune_keeps_kept_leaves() {
        // Path 0-1-2-3; keep 0 and 2: edge {2,3} goes, rest stays.
        let g = UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let keep = |v: VertexId| v == VertexId(0) || v == VertexId(2);
        let pruned = prune_leaves(&g, &[EdgeId(0), EdgeId(1), EdgeId(2)], keep);
        assert_eq!(pruned, vec![EdgeId(0), EdgeId(1)]);
    }

    #[test]
    fn prune_spanning_tree_to_steiner_tree() {
        // Grow a spanning tree of a path graph and prune to terminals {0, 2}.
        let g = UndirectedGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let grown = grow_spanning_tree(&g, &[VertexId(0)], &[], None);
        let terminals = [VertexId(0), VertexId(2)];
        let pruned = prune_leaves(&g, &grown.edges, |v| terminals.contains(&v));
        assert_eq!(pruned.len(), 2);
        let verts = g.edge_set_vertices(&pruned);
        assert_eq!(verts, vec![VertexId(0), VertexId(1), VertexId(2)]);
    }

    #[test]
    fn csr_pipeline_matches_allocating_pipeline() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x5ca);
        let mut scratch = CompletionScratch::default();
        for case in 0..40 {
            let n = 3 + case % 8;
            let g = crate::generators::random_connected_graph(n, n + case % 4, &mut rng);
            let csr = crate::csr::CsrUndirected::from_graph(&g);
            let seed = VertexId::new(rng.gen_range(0..n));
            let keep_set: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.4)).collect();
            let keep = |v: VertexId| keep_set[v.index()] || v == seed;

            let grown = grow_spanning_tree(&g, &[seed], &[], None);
            let pruned = prune_leaves(&g, &grown.edges, keep);

            grow_spanning_tree_csr(&csr, &[seed], &[], None, &mut scratch);
            assert_eq!(scratch.edges, grown.edges, "grow, graph {g:?}");
            prune_leaves_csr(&csr, keep, &mut scratch);
            assert_eq!(scratch.edges, pruned, "prune, graph {g:?}");
        }
    }

    /// Skeleton from the bridges of a graph: the structure's reach state
    /// must match a fresh BFS over bridge edges from the attached set.
    fn fresh_bridge_reach(g: &UndirectedGraph, bridge: &[bool], sources: &[VertexId]) -> Vec<bool> {
        let n = g.num_vertices();
        let mut reached = vec![false; n];
        let mut stack: Vec<VertexId> = Vec::new();
        for &s in sources {
            if !reached[s.index()] {
                reached[s.index()] = true;
                stack.push(s);
            }
        }
        while let Some(u) = stack.pop() {
            for (v, e) in g.neighbors(u) {
                if bridge[e.index()] && !reached[v.index()] {
                    reached[v.index()] = true;
                    stack.push(v);
                }
            }
        }
        reached
    }

    #[test]
    fn dynamic_spanning_matches_fresh_flood() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xdba5e);
        for case in 0..30 {
            let n = 4 + case % 7;
            let g = crate::generators::random_connected_graph(n, n + case % 4, &mut rng);
            let bridge = crate::bridges::bridges(&g, None);
            let mut ds = DynamicSpanning::new();
            ds.begin_skeleton(n);
            for e in g.edges() {
                if bridge[e.index()] {
                    let (u, v) = g.endpoints(e);
                    ds.add_edge(u, v, e.index() as u32);
                }
            }
            ds.finish_skeleton();
            // Random growing/shrinking source sets (the trail-backed mask
            // lives with the caller), checking every vertex's forced
            // verdict against a fresh flood at every step.
            let mut in_sol = vec![false; n];
            let mut stack: Vec<VertexId> = Vec::new();
            for _ in 0..24 {
                if !stack.is_empty() && rng.gen_bool(0.4) {
                    let v = stack.pop().unwrap();
                    in_sol[v.index()] = false;
                } else {
                    let v = VertexId::new(rng.gen_range(0..n));
                    if !in_sol[v.index()] {
                        in_sol[v.index()] = true;
                        stack.push(v);
                    }
                }
                let sources: Vec<VertexId> = (0..n)
                    .map(VertexId::new)
                    .filter(|v| in_sol[v.index()])
                    .collect();
                let fresh = fresh_bridge_reach(&g, &bridge, &sources);
                for (v, &want) in fresh.iter().enumerate() {
                    assert_eq!(
                        ds.is_forced(VertexId::new(v), |x| in_sol[x.index()]),
                        want,
                        "graph {g:?} sources {sources:?} vertex {v}"
                    );
                }
            }
        }
    }

    #[test]
    fn barriers_are_endpoints_but_not_traversed() {
        // Path 0-1-2-3, all edges in the skeleton; 1 is a barrier.
        let g = UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let mut ds = DynamicSpanning::new();
        ds.begin_skeleton(4);
        ds.set_barrier(VertexId(1));
        for e in g.edges() {
            let (u, v) = g.endpoints(e);
            ds.add_edge(u, v, e.index() as u32);
        }
        ds.finish_skeleton();
        let src0 = |v: VertexId| v == VertexId(0);
        assert!(
            ds.is_forced(VertexId(1), src0),
            "a barrier query expands its own edges"
        );
        assert!(
            !ds.is_forced(VertexId(2), src0),
            "but other paths never pass through a barrier"
        );
        // An in-solution barrier is not a valid endpoint.
        let src01 = |v: VertexId| v == VertexId(0) || v == VertexId(1);
        assert!(
            !ds.is_forced(VertexId(2), src01),
            "an in-solution barrier does not terminate a query"
        );
        let src2 = |v: VertexId| v == VertexId(2);
        assert!(ds.is_forced(VertexId(3), src2), "3 reaches the source 2");
    }

    #[test]
    fn carry_over_absorbs_foreign_region_edits_only() {
        use crate::epoch::EpochGraph;
        // Two components: skeleton lives on {0,1,2}; {3,4,5} is foreign.
        let g = UndirectedGraph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]).unwrap();
        let mut eg = EpochGraph::new(g);
        let mut ds = DynamicSpanning::new();
        ds.begin_skeleton(6);
        for e in [EdgeId(0), EdgeId(1)] {
            let (u, v) = eg.graph().endpoints(e);
            ds.add_edge(u, v, e.index() as u32);
        }
        ds.finish_skeleton();
        assert!(ds.is_forced(VertexId(2), |v| v == VertexId(0)));

        // Insert inside the foreign region: absorbed, state still exact.
        let pre = eg.regions().clone();
        eg.insert_edge(VertexId(3), VertexId(5)).unwrap();
        let delta = &eg.deltas_since(0).unwrap().last().unwrap().edits;
        assert!(ds.carry_over(&pre, delta), "foreign insert absorbed");
        assert!(ds.is_forced(VertexId(2), |v| v == VertexId(0)));

        // Remove the last edge (no renumbering) in the foreign region.
        let pre = eg.regions().clone();
        let since = eg.epoch();
        eg.remove_edge(EdgeId(4)).unwrap();
        let delta = &eg.deltas_since(since).unwrap()[0].edits;
        assert!(ds.carry_over(&pre, delta), "foreign removal absorbed");

        // Insert touching the skeleton region: signals rebuild.
        let pre = eg.regions().clone();
        let since = eg.epoch();
        eg.insert_edge(VertexId(0), VertexId(2)).unwrap();
        let delta = &eg.deltas_since(since).unwrap()[0].edits;
        assert!(!ds.carry_over(&pre, delta), "in-region insert rebuilds");

        // A removal that renumbers an edge with a skeleton-region endpoint
        // must also signal rebuild, even if the removed edge is foreign.
        let pre = eg.regions().clone();
        let since = eg.epoch();
        // Current edges: last-added {0,2} holds the largest id; removing a
        // foreign edge renumbers it.
        eg.remove_edge(EdgeId(2)).unwrap();
        let delta = &eg.deltas_since(since).unwrap()[0].edits;
        assert!(
            !ds.carry_over(&pre, delta),
            "renumbered skeleton edge rebuilds"
        );

        // Empty delta is always absorbed.
        assert!(ds.carry_over(&pre, &[]));
    }

    #[test]
    fn contract_labels_roll_back() {
        let mut ds = DynamicSpanning::new();
        ds.begin_skeleton(5);
        ds.finish_skeleton();
        assert!(ds.contract(VertexId(0), VertexId(1)));
        let mark = ds.mark();
        assert!(ds.contract(VertexId(1), VertexId(2)));
        assert!(ds.connected(VertexId(0), VertexId(2)));
        ds.undo_to(mark);
        assert!(ds.connected(VertexId(0), VertexId(1)), "pre-mark survives");
        assert!(!ds.connected(VertexId(0), VertexId(2)));
    }

    #[test]
    fn forced_path_collection_dedups_shared_trunks() {
        // A bridge trunk 4-5-6 with two leaves 0, 2 off its end: paths
        // from 0 and 2 to the source 4 share the trunk, which the union
        // must contain exactly once.
        let g = UndirectedGraph::from_edges(7, &[(4, 5), (5, 6), (6, 0), (6, 2), (4, 1), (4, 3)])
            .unwrap();
        let mut ds = DynamicSpanning::new();
        ds.begin_skeleton(7);
        for e in g.edges() {
            let (u, v) = g.endpoints(e);
            ds.add_edge(u, v, e.index() as u32);
        }
        ds.finish_skeleton();
        let src = |v: VertexId| v == VertexId(4);
        ds.begin_collect();
        let mut got: Vec<u32> = Vec::new();
        assert!(ds.collect_forced_path(VertexId(0), src, |e| got.push(e)));
        assert!(ds.collect_forced_path(VertexId(2), src, |e| got.push(e)));
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3], "shared trunk collected exactly once");
        let mut again: Vec<u32> = Vec::new();
        assert!(ds.collect_forced_path(VertexId(0), src, |e| again.push(e)));
        assert!(again.is_empty(), "same generation: already collected");
        ds.begin_collect();
        let mut fresh = Vec::new();
        assert!(ds.collect_forced_path(VertexId(0), src, |e| fresh.push(e)));
        fresh.sort_unstable();
        assert_eq!(fresh, vec![0, 1, 2], "a new generation re-emits");
    }

    #[test]
    fn directed_skeleton_walks_reversed_chains() {
        // Arcs 0→1→2 (unique in-arcs) inserted reversed, as the directed
        // enumerator does: queries from 2 walk back to the source 0.
        let mut ds = DynamicSpanning::new();
        ds.begin_skeleton(3);
        ds.add_arc(VertexId(1), VertexId(0), 0); // reverse of 0→1
        ds.add_arc(VertexId(2), VertexId(1), 1); // reverse of 1→2
        ds.finish_skeleton();
        let src = |v: VertexId| v == VertexId(0);
        let mut got = Vec::new();
        ds.begin_collect();
        assert!(ds.collect_forced_path(VertexId(2), src, |a| got.push(a)));
        got.sort_unstable();
        assert_eq!(got, vec![0, 1]);
        assert!(
            ds.is_forced(VertexId(1), src),
            "mid-chain vertices are forced"
        );
        let (queries, explored, max_explored) = ds.repair_stats();
        assert!(queries >= 2 && explored >= 1 && max_explored >= 1);
    }

    #[test]
    fn prune_directed_keeps_root() {
        // r=0 -> 1 -> 2, 0 -> 3; keep terminal 2 only.
        let d = DiGraph::from_arcs(4, &[(0, 1), (1, 2), (0, 3)]).unwrap();
        let pruned =
            prune_directed_leaves(&d, &[ArcId(0), ArcId(1), ArcId(2)], |v| v == VertexId(2));
        assert_eq!(pruned, vec![ArcId(0), ArcId(1)]);
    }

    #[test]
    fn prune_directed_cascades() {
        // r=0 -> 1 -> 2 -> 3; keep only 1: arcs (2,3) then (1,2) go.
        let d = DiGraph::from_arcs(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let pruned =
            prune_directed_leaves(&d, &[ArcId(0), ArcId(1), ArcId(2)], |v| v == VertexId(1));
        assert_eq!(pruned, vec![ArcId(0)]);
    }
}
