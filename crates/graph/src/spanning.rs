//! Spanning trees containing a required subtree, and leaf pruning.
//!
//! These two operations implement the "completion" steps the paper uses
//! over and over: Lemma 13 (grow a partial Steiner tree into a spanning
//! tree, then remove non-terminal leaves — Proposition 3), Lemma 28
//! (terminal Steiner trees, Proposition 26) and Lemma 33 (directed Steiner
//! trees, Proposition 32).

use crate::digraph::DiGraph;
use crate::ids::{ArcId, EdgeId, VertexId};
use crate::traversal::{bfs, BfsForest};
use crate::undirected::UndirectedGraph;

/// A tree grown from seed vertices around a base edge set.
#[derive(Clone, Debug)]
pub struct GrownTree {
    /// All tree edges: the base edges plus BFS parent edges.
    pub edges: Vec<EdgeId>,
    /// The BFS forest used to grow the tree (parents point toward seeds).
    pub forest: BfsForest,
}

/// Grows a tree that contains all `base_edges` and spans every `allowed`
/// vertex reachable from `seeds`.
///
/// `seeds` must cover the vertex set of `base_edges`, and the base edges
/// must form a forest — both hold for the partial Steiner trees the
/// enumerators maintain. O(n + m).
pub fn grow_spanning_tree(
    g: &UndirectedGraph,
    seeds: &[VertexId],
    base_edges: &[EdgeId],
    allowed: Option<&[bool]>,
) -> GrownTree {
    let forest = bfs(g, seeds, allowed);
    let mut edges = Vec::with_capacity(base_edges.len() + forest.order.len());
    edges.extend_from_slice(base_edges);
    for &v in &forest.order {
        if let Some(e) = forest.parent_edge[v.index()] {
            edges.push(e);
        }
    }
    GrownTree { edges, forest }
}

/// Repeatedly deletes degree-≤1 vertices not accepted by `keep` from the
/// edge set `tree_edges`, returning the surviving edges (in their original
/// order). This is the Proposition 3 reduction: the result's leaves all
/// satisfy `keep`.
///
/// `tree_edges` must be a forest. O(n + |tree_edges|).
pub fn prune_leaves(
    g: &UndirectedGraph,
    tree_edges: &[EdgeId],
    keep: impl Fn(VertexId) -> bool,
) -> Vec<EdgeId> {
    let n = g.num_vertices();
    // Incidence restricted to the tree edges.
    let mut incident: Vec<Vec<EdgeId>> = vec![Vec::new(); n];
    let mut degree = vec![0u32; n];
    for &e in tree_edges {
        let (u, v) = g.endpoints(e);
        incident[u.index()].push(e);
        incident[v.index()].push(e);
        degree[u.index()] += 1;
        degree[v.index()] += 1;
    }
    let mut removed_edge = vec![false; g.num_edges()];
    let mut queue: Vec<VertexId> = Vec::new();
    for &e in tree_edges {
        let (u, v) = g.endpoints(e);
        for w in [u, v] {
            if degree[w.index()] == 1 && !keep(w) {
                queue.push(w);
            }
        }
    }
    queue.sort_unstable();
    queue.dedup();
    while let Some(v) = queue.pop() {
        if degree[v.index()] != 1 || keep(v) {
            continue;
        }
        let e = *incident[v.index()]
            .iter()
            .find(|e| !removed_edge[e.index()])
            .expect("degree-1 vertex has a live incident edge");
        removed_edge[e.index()] = true;
        degree[v.index()] = 0;
        let u = g.other_endpoint(e, v);
        degree[u.index()] -= 1;
        if degree[u.index()] == 1 && !keep(u) {
            queue.push(u);
        }
    }
    tree_edges
        .iter()
        .copied()
        .filter(|e| !removed_edge[e.index()])
        .collect()
}

/// Reusable buffers for the allocation-free completion pipeline
/// ([`grow_spanning_tree_csr`] + [`prune_leaves_csr`]): one instance per
/// problem, sized at `prepare()`, reused every node.
#[derive(Clone, Debug, Default)]
pub struct CompletionScratch {
    /// In/out edge buffer: the grown tree, pruned in place.
    pub edges: Vec<EdgeId>,
    visited: Vec<bool>,
    /// BFS parent edge per visited vertex (`u32::MAX` for seeds); written
    /// by [`grow_spanning_tree_csr`], consumed by [`prune_leaves_csr`].
    parent_edge: Vec<u32>,
    queue: Vec<VertexId>,
    degree: Vec<u32>,
    /// Epoch-stamped removal marks (`removed_stamp[e] == epoch` ⇔ pruned
    /// this call) — avoids an O(m) clear per node.
    removed_stamp: Vec<u32>,
    epoch: u32,
    prune_queue: Vec<VertexId>,
    allocs: u64,
}

impl CompletionScratch {
    /// Reserves for graphs with `n` vertices and `m` edges, so later runs
    /// do not allocate. The edge buffer is sized for a grown tree plus a
    /// base forest plus one leaf edge per terminal (≤ 3n).
    pub fn preallocate(&mut self, n: usize, m: usize) {
        let edges_cap = 3 * n + 4;
        if self.edges.capacity() < edges_cap {
            self.edges.reserve(edges_cap - self.edges.capacity());
        }
        if self.visited.capacity() < n {
            self.visited.reserve(n - self.visited.capacity());
        }
        crate::csr::grow(&mut self.parent_edge, n, u32::MAX, &mut self.allocs);
        if self.queue.capacity() < n {
            self.queue.reserve(n - self.queue.capacity());
        }
        if self.degree.capacity() < n {
            self.degree.reserve(n - self.degree.capacity());
        }
        crate::csr::grow(&mut self.removed_stamp, m, 0u32, &mut self.allocs);
        let pq_cap = 6 * n + 16;
        if self.prune_queue.capacity() < pq_cap {
            self.prune_queue
                .reserve(pq_cap - self.prune_queue.capacity());
        }
        self.allocs = 0;
    }

    /// Growth events recorded by the scratch buffers.
    pub fn alloc_events(&self) -> u64 {
        self.allocs
    }

    /// Bytes of owned buffer capacity.
    pub fn capacity_bytes(&self) -> u64 {
        (self.edges.capacity() * std::mem::size_of::<EdgeId>()
            + self.visited.capacity() * std::mem::size_of::<bool>()
            + (self.queue.capacity() + self.prune_queue.capacity())
                * std::mem::size_of::<VertexId>()
            + (self.degree.capacity()
                + self.parent_edge.capacity()
                + self.removed_stamp.capacity())
                * std::mem::size_of::<u32>()) as u64
    }
}

/// As [`grow_spanning_tree`], but over a CSR view, writing the grown edge
/// set into `scratch.edges` without allocating (after warm-up). The BFS
/// forest itself is not exposed — the enumeration hot path only needs the
/// edge set.
pub fn grow_spanning_tree_csr(
    g: &crate::csr::CsrUndirected,
    seeds: &[VertexId],
    base_edges: &[EdgeId],
    allowed: Option<&[bool]>,
    scratch: &mut CompletionScratch,
) {
    let n = g.num_vertices();
    crate::csr::grow(&mut scratch.visited, n, false, &mut scratch.allocs);
    if scratch.parent_edge.len() != n {
        crate::csr::grow(&mut scratch.parent_edge, n, u32::MAX, &mut scratch.allocs);
    }
    scratch.queue.clear();
    if scratch.queue.capacity() < n {
        scratch.allocs += 1;
        scratch.queue.reserve(n);
    }
    scratch.edges.clear();
    if scratch.edges.capacity() < n + base_edges.len() {
        scratch.allocs += 1;
        scratch.edges.reserve(n + base_edges.len());
    }
    scratch.edges.extend_from_slice(base_edges);
    let ok = |v: VertexId| allowed.is_none_or(|mask| mask[v.index()]);
    for &r in seeds {
        if ok(r) && !scratch.visited[r.index()] {
            scratch.visited[r.index()] = true;
            scratch.parent_edge[r.index()] = u32::MAX;
            scratch.queue.push(r);
        }
    }
    let mut head = 0;
    while head < scratch.queue.len() {
        let u = scratch.queue[head];
        head += 1;
        for &(v, e) in g.adjacency(u) {
            if ok(v) && !scratch.visited[v.index()] {
                scratch.visited[v.index()] = true;
                scratch.parent_edge[v.index()] = e.index() as u32;
                scratch.edges.push(e);
                scratch.queue.push(v);
            }
        }
    }
}

/// As [`prune_leaves`], but pruning `scratch.edges` **in place** without
/// allocating — and without the incidence-index build or any O(n + m)
/// clearing: degrees are reset through the edge list itself and removal
/// marks are epoch stamps. Must be called on the scratch of the matching
/// [`grow_spanning_tree_csr`] run (optionally with extra leaf edges
/// appended whose kept endpoint is a `keep` vertex): the unique live edge
/// of a removable leaf is then its BFS parent edge — base edges join kept
/// vertices, leaf edges hang off kept vertices and give their inner
/// endpoint degree ≥ 2, and child edges are gone once a vertex reaches
/// degree 1.
pub fn prune_leaves_csr(
    g: &crate::csr::CsrUndirected,
    keep: impl Fn(VertexId) -> bool,
    scratch: &mut CompletionScratch,
) {
    let n = g.num_vertices();
    if scratch.degree.len() != n {
        crate::csr::grow(&mut scratch.degree, n, 0u32, &mut scratch.allocs);
    }
    if scratch.removed_stamp.len() != g.num_edges() {
        crate::csr::grow(
            &mut scratch.removed_stamp,
            g.num_edges(),
            0u32,
            &mut scratch.allocs,
        );
    }
    scratch.epoch += 1;
    let ep = scratch.epoch;
    for &e in &scratch.edges {
        let (u, v) = g.endpoints(e);
        scratch.degree[u.index()] = 0;
        scratch.degree[v.index()] = 0;
    }
    for &e in &scratch.edges {
        let (u, v) = g.endpoints(e);
        scratch.degree[u.index()] += 1;
        scratch.degree[v.index()] += 1;
    }
    scratch.prune_queue.clear();
    for &e in &scratch.edges {
        let (u, v) = g.endpoints(e);
        for w in [u, v] {
            if scratch.degree[w.index()] == 1 && !keep(w) {
                scratch.prune_queue.push(w);
            }
        }
    }
    while let Some(v) = scratch.prune_queue.pop() {
        if scratch.degree[v.index()] != 1 || keep(v) {
            continue;
        }
        let e = scratch.parent_edge[v.index()];
        debug_assert_ne!(e, u32::MAX, "removable leaves are BFS-discovered");
        debug_assert_ne!(
            scratch.removed_stamp[e as usize], ep,
            "a live leaf's parent edge is still present"
        );
        scratch.removed_stamp[e as usize] = ep;
        scratch.degree[v.index()] = 0;
        let u = g.other_endpoint(EdgeId::new(e as usize), v);
        scratch.degree[u.index()] -= 1;
        if scratch.degree[u.index()] == 1 && !keep(u) {
            scratch.prune_queue.push(u);
        }
    }
    let stamps = &scratch.removed_stamp;
    scratch.edges.retain(|e| stamps[e.index()] != ep);
}

/// Repeatedly deletes sink leaves not accepted by `keep` from a directed
/// tree given as an arc set, returning the surviving arcs. This is the
/// Proposition 32 reduction for directed Steiner trees: afterwards every
/// leaf (vertex without outgoing arcs) satisfies `keep`.
///
/// `tree_arcs` must form a directed tree (every non-root vertex has exactly
/// one incoming arc). The root is never deleted. O(n + |tree_arcs|).
pub fn prune_directed_leaves(
    d: &DiGraph,
    tree_arcs: &[ArcId],
    keep: impl Fn(VertexId) -> bool,
) -> Vec<ArcId> {
    let n = d.num_vertices();
    let mut out_degree = vec![0u32; n];
    let mut in_arc: Vec<Option<ArcId>> = vec![None; n];
    let mut in_tree = vec![false; n];
    for &a in tree_arcs {
        let (t, h) = d.arc(a);
        out_degree[t.index()] += 1;
        debug_assert!(in_arc[h.index()].is_none(), "directed tree: unique in-arc");
        in_arc[h.index()] = Some(a);
        in_tree[t.index()] = true;
        in_tree[h.index()] = true;
    }
    let mut removed_arc = vec![false; d.num_arcs()];
    let mut queue: Vec<VertexId> = Vec::new();
    for v in 0..n {
        let v = VertexId::new(v);
        // A deletable leaf has no outgoing arcs and *does* have an incoming
        // arc (so the root, which has none, is safe).
        if in_tree[v.index()]
            && out_degree[v.index()] == 0
            && in_arc[v.index()].is_some()
            && !keep(v)
        {
            queue.push(v);
        }
    }
    while let Some(v) = queue.pop() {
        let a = in_arc[v.index()].expect("queued leaf has an in-arc");
        if removed_arc[a.index()] {
            continue;
        }
        removed_arc[a.index()] = true;
        let t = d.tail(a);
        out_degree[t.index()] -= 1;
        if out_degree[t.index()] == 0 && in_arc[t.index()].is_some() && !keep(t) {
            queue.push(t);
        }
    }
    tree_arcs
        .iter()
        .copied()
        .filter(|a| !removed_arc[a.index()])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grow_spans_component_and_contains_base() {
        // Square with a pendant: 0-1-2-3-0, 3-4.
        let g = UndirectedGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 0), (3, 4)]).unwrap();
        let grown = grow_spanning_tree(&g, &[VertexId(0)], &[], None);
        assert_eq!(grown.edges.len(), 4, "spanning tree of 5 vertices");
        // Growing around base edge {1,2} keeps it.
        let grown2 = grow_spanning_tree(&g, &[VertexId(1), VertexId(2)], &[EdgeId(1)], None);
        assert!(grown2.edges.contains(&EdgeId(1)));
        assert_eq!(grown2.edges.len(), 4);
    }

    #[test]
    fn prune_removes_non_terminal_branches() {
        // Star with center 0, leaves 1..=3; keep only 1.
        let g = UndirectedGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        let keep = |v: VertexId| v == VertexId(1);
        let pruned = prune_leaves(&g, &[EdgeId(0), EdgeId(1), EdgeId(2)], keep);
        // 2 and 3 are pruned; then 0 has degree 1 but pruning it would make
        // 1 isolated... 0 is degree-1 and not kept, so edge {0,1} also goes.
        assert!(pruned.is_empty());
    }

    #[test]
    fn prune_keeps_kept_leaves() {
        // Path 0-1-2-3; keep 0 and 2: edge {2,3} goes, rest stays.
        let g = UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let keep = |v: VertexId| v == VertexId(0) || v == VertexId(2);
        let pruned = prune_leaves(&g, &[EdgeId(0), EdgeId(1), EdgeId(2)], keep);
        assert_eq!(pruned, vec![EdgeId(0), EdgeId(1)]);
    }

    #[test]
    fn prune_spanning_tree_to_steiner_tree() {
        // Grow a spanning tree of a path graph and prune to terminals {0, 2}.
        let g = UndirectedGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let grown = grow_spanning_tree(&g, &[VertexId(0)], &[], None);
        let terminals = [VertexId(0), VertexId(2)];
        let pruned = prune_leaves(&g, &grown.edges, |v| terminals.contains(&v));
        assert_eq!(pruned.len(), 2);
        let verts = g.edge_set_vertices(&pruned);
        assert_eq!(verts, vec![VertexId(0), VertexId(1), VertexId(2)]);
    }

    #[test]
    fn csr_pipeline_matches_allocating_pipeline() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x5ca);
        let mut scratch = CompletionScratch::default();
        for case in 0..40 {
            let n = 3 + case % 8;
            let g = crate::generators::random_connected_graph(n, n + case % 4, &mut rng);
            let csr = crate::csr::CsrUndirected::from_graph(&g);
            let seed = VertexId::new(rng.gen_range(0..n));
            let keep_set: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.4)).collect();
            let keep = |v: VertexId| keep_set[v.index()] || v == seed;

            let grown = grow_spanning_tree(&g, &[seed], &[], None);
            let pruned = prune_leaves(&g, &grown.edges, keep);

            grow_spanning_tree_csr(&csr, &[seed], &[], None, &mut scratch);
            assert_eq!(scratch.edges, grown.edges, "grow, graph {g:?}");
            prune_leaves_csr(&csr, keep, &mut scratch);
            assert_eq!(scratch.edges, pruned, "prune, graph {g:?}");
        }
    }

    #[test]
    fn prune_directed_keeps_root() {
        // r=0 -> 1 -> 2, 0 -> 3; keep terminal 2 only.
        let d = DiGraph::from_arcs(4, &[(0, 1), (1, 2), (0, 3)]).unwrap();
        let pruned =
            prune_directed_leaves(&d, &[ArcId(0), ArcId(1), ArcId(2)], |v| v == VertexId(2));
        assert_eq!(pruned, vec![ArcId(0), ArcId(1)]);
    }

    #[test]
    fn prune_directed_cascades() {
        // r=0 -> 1 -> 2 -> 3; keep only 1: arcs (2,3) then (1,2) go.
        let d = DiGraph::from_arcs(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let pruned =
            prune_directed_leaves(&d, &[ArcId(0), ArcId(1), ArcId(2)], |v| v == VertexId(1));
        assert_eq!(pruned, vec![ArcId(0)]);
    }
}
