//! Plain-text graph I/O.
//!
//! Format (both directions): a header line `n m`, followed by `m` lines of
//! `u v` endpoint pairs (0-based). Blank lines and lines starting with `#`
//! or `c ` (DIMACS-style comments) are ignored. Edge/arc ids follow file
//! order, which keeps enumeration deterministic across save/load.

use crate::digraph::DiGraph;
use crate::undirected::UndirectedGraph;
use crate::{GraphError, Result};

/// Serializes an undirected multigraph.
pub fn write_edge_list(g: &UndirectedGraph) -> String {
    let mut out = String::with_capacity(12 * (g.num_edges() + 1));
    out.push_str(&format!("{} {}\n", g.num_vertices(), g.num_edges()));
    for e in g.edges() {
        let (u, v) = g.endpoints(e);
        out.push_str(&format!("{} {}\n", u.0, v.0));
    }
    out
}

/// Serializes a directed multigraph (`tail head` per line).
pub fn write_arc_list(d: &DiGraph) -> String {
    let mut out = String::with_capacity(12 * (d.num_arcs() + 1));
    out.push_str(&format!("{} {}\n", d.num_vertices(), d.num_arcs()));
    for a in d.arcs() {
        let (t, h) = d.arc(a);
        out.push_str(&format!("{} {}\n", t.0, h.0));
    }
    out
}

/// Parsed header `(n, m)` plus the endpoint pairs of a graph file.
type ParsedPairs = (usize, usize, Vec<(usize, usize)>);

fn parse_pairs(text: &str) -> Result<ParsedPairs> {
    let mut header: Option<(usize, usize)> = None;
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with("c ") {
            continue;
        }
        let mut fields = line.split_whitespace();
        let parse_field = |field: Option<&str>| -> Result<usize> {
            field
                .ok_or_else(|| GraphError::Parse {
                    line: line_no,
                    message: "expected two integers".to_string(),
                })?
                .parse::<usize>()
                .map_err(|e| GraphError::Parse {
                    line: line_no,
                    message: e.to_string(),
                })
        };
        let a = parse_field(fields.next())?;
        let b = parse_field(fields.next())?;
        if fields.next().is_some() {
            return Err(GraphError::Parse {
                line: line_no,
                message: "expected exactly two integers".to_string(),
            });
        }
        match header {
            None => header = Some((a, b)),
            Some(_) => pairs.push((a, b)),
        }
    }
    let (n, m) = header.ok_or_else(|| GraphError::Parse {
        line: 0,
        message: "missing `n m` header line".to_string(),
    })?;
    if pairs.len() != m {
        return Err(GraphError::Parse {
            line: 0,
            message: format!("header promises {m} edges, found {}", pairs.len()),
        });
    }
    Ok((n, m, pairs))
}

/// Parses an undirected multigraph from the edge-list format.
pub fn parse_edge_list(text: &str) -> Result<UndirectedGraph> {
    let (n, _m, pairs) = parse_pairs(text)?;
    UndirectedGraph::from_edges(n, &pairs)
}

/// Parses a directed multigraph from the arc-list format.
pub fn parse_arc_list(text: &str) -> Result<DiGraph> {
    let (n, _m, pairs) = parse_pairs(text)?;
    DiGraph::from_arcs(n, &pairs)
}

/// Renders an undirected graph in Graphviz DOT format, optionally
/// highlighting a solution: `highlight_edges` are drawn bold red and
/// `terminals` as filled boxes — handy for eyeballing enumerated Steiner
/// trees (`dot -Tsvg`).
pub fn to_dot(
    g: &UndirectedGraph,
    terminals: &[crate::VertexId],
    highlight_edges: &[crate::EdgeId],
) -> String {
    let mut term = vec![false; g.num_vertices()];
    for &w in terminals {
        term[w.index()] = true;
    }
    let mut hot = vec![false; g.num_edges()];
    for &e in highlight_edges {
        hot[e.index()] = true;
    }
    let mut out = String::from("graph g {\n  node [shape=circle];\n");
    for v in g.vertices() {
        if term[v.index()] {
            out.push_str(&format!(
                "  {} [shape=box style=filled fillcolor=gold];\n",
                v.0
            ));
        }
    }
    for e in g.edges() {
        let (u, v) = g.endpoints(e);
        if hot[e.index()] {
            out.push_str(&format!("  {} -- {} [color=red penwidth=2.5];\n", u.0, v.0));
        } else {
            out.push_str(&format!("  {} -- {};\n", u.0, v.0));
        }
    }
    out.push_str("}\n");
    out
}

/// Renders a digraph in Graphviz DOT format with optional highlighted arcs
/// and boxed terminals.
pub fn to_dot_directed(
    d: &DiGraph,
    terminals: &[crate::VertexId],
    highlight_arcs: &[crate::ArcId],
) -> String {
    let mut term = vec![false; d.num_vertices()];
    for &w in terminals {
        term[w.index()] = true;
    }
    let mut hot = vec![false; d.num_arcs()];
    for &a in highlight_arcs {
        hot[a.index()] = true;
    }
    let mut out = String::from("digraph g {\n  node [shape=circle];\n");
    for v in d.vertices() {
        if term[v.index()] {
            out.push_str(&format!(
                "  {} [shape=box style=filled fillcolor=gold];\n",
                v.0
            ));
        }
    }
    for a in d.arcs() {
        let (t, h) = d.arc(a);
        if hot[a.index()] {
            out.push_str(&format!("  {} -> {} [color=red penwidth=2.5];\n", t.0, h.0));
        } else {
            out.push_str(&format!("  {} -> {};\n", t.0, h.0));
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::SeedableRng;

    #[test]
    fn round_trip_undirected() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let g = generators::random_connected_graph(9, 14, &mut rng);
        let text = write_edge_list(&g);
        let g2 = parse_edge_list(&text).unwrap();
        assert_eq!(g.num_vertices(), g2.num_vertices());
        assert_eq!(g.num_edges(), g2.num_edges());
        for e in g.edges() {
            assert_eq!(g.endpoints(e), g2.endpoints(e));
        }
    }

    #[test]
    fn round_trip_directed() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let d = generators::random_digraph(8, 17, &mut rng);
        let text = write_arc_list(&d);
        let d2 = parse_arc_list(&text).unwrap();
        assert_eq!(d.num_arcs(), d2.num_arcs());
        for a in d.arcs() {
            assert_eq!(d.arc(a), d2.arc(a));
        }
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let text = "# a comment\n\n3 2\nc dimacs comment\n0 1\n1 2\n";
        let g = parse_edge_list(text).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn header_mismatch_is_an_error() {
        let text = "3 5\n0 1\n";
        assert!(matches!(
            parse_edge_list(text),
            Err(GraphError::Parse { .. })
        ));
    }

    #[test]
    fn junk_line_is_an_error() {
        let text = "2 1\n0 1 junk\n";
        assert!(matches!(
            parse_edge_list(text),
            Err(GraphError::Parse { .. })
        ));
        let text2 = "2 1\nzero one\n";
        assert!(matches!(
            parse_edge_list(text2),
            Err(GraphError::Parse { .. })
        ));
    }

    #[test]
    fn self_loop_in_file_is_rejected() {
        let text = "2 1\n1 1\n";
        assert!(matches!(
            parse_edge_list(text),
            Err(GraphError::SelfLoop { .. })
        ));
    }

    #[test]
    fn dot_output_marks_terminals_and_solution() {
        use crate::{EdgeId, VertexId};
        let g = UndirectedGraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let dot = to_dot(&g, &[VertexId(0), VertexId(2)], &[EdgeId(0)]);
        assert!(dot.starts_with("graph g {"));
        assert!(dot.contains("0 [shape=box"));
        assert!(dot.contains("2 [shape=box"));
        assert!(dot.contains("0 -- 1 [color=red"));
        assert!(dot.contains("1 -- 2;"));
    }

    #[test]
    fn dot_directed_output() {
        use crate::{ArcId, VertexId};
        let d = DiGraph::from_arcs(3, &[(0, 1), (1, 2)]).unwrap();
        let dot = to_dot_directed(&d, &[VertexId(2)], &[ArcId(1)]);
        assert!(dot.starts_with("digraph g {"));
        assert!(dot.contains("1 -> 2 [color=red"));
        assert!(dot.contains("0 -> 1;"));
    }
}
