//! Line graphs and the Theorem 39 construction.
//!
//! §7 of the paper reduces Steiner Tree Enumeration to minimal *induced*
//! Steiner subgraph enumeration on claw-free graphs: starting from the line
//! graph `L(G)`, one attaches a fresh vertex `w'` for every terminal `w`,
//! adjacent to the (clique of) edges incident to `w`. The resulting graph
//! `H` is claw-free, and connected Steiner subgraphs of `(G, W)` correspond
//! to connected induced Steiner subgraphs of `(H, W_H)`.

use crate::ids::{EdgeId, VertexId};
use crate::undirected::UndirectedGraph;
use std::collections::HashSet;

/// The line graph `L(G)`: one vertex per edge of `G` (vertex `i` is edge
/// `i`), with vertices adjacent iff the edges share an endpoint. The result
/// is simple even if `G` has parallel edges.
pub fn line_graph(g: &UndirectedGraph) -> UndirectedGraph {
    let mut lg = UndirectedGraph::new(g.num_edges());
    let mut seen: HashSet<(u32, u32)> = HashSet::new();
    for v in g.vertices() {
        let incident = g.adjacency(v);
        for i in 0..incident.len() {
            for j in i + 1..incident.len() {
                let (e, f) = (incident[i].1, incident[j].1);
                let key = if e.0 < f.0 { (e.0, f.0) } else { (f.0, e.0) };
                if seen.insert(key) {
                    lg.add_edge(VertexId(e.0), VertexId(f.0))
                        .expect("line graph edge");
                }
            }
        }
    }
    lg
}

/// The Theorem 39 instance `(H, W_H)` built from `(G, W)`.
#[derive(Clone, Debug)]
pub struct Theorem39Instance {
    /// The host graph `H` (line graph plus one pendant-clique vertex per
    /// terminal). Vertices `0..m` are `G`'s edges; vertex `m + i` is the
    /// terminal vertex for `terminals[i]`.
    pub h: UndirectedGraph,
    /// The terminals `W_H` of the induced-Steiner instance, aligned with
    /// the `terminals` argument.
    pub h_terminals: Vec<VertexId>,
    /// The original terminal list.
    pub g_terminals: Vec<VertexId>,
    /// Number of edges of `G` (so `H` vertices `< edge_count` are edges).
    pub edge_count: usize,
}

impl Theorem39Instance {
    /// Builds `H` from `(G, W)` as in Theorem 39.
    pub fn new(g: &UndirectedGraph, terminals: &[VertexId]) -> Self {
        let mut h = line_graph(g);
        let mut h_terminals = Vec::with_capacity(terminals.len());
        for &w in terminals {
            let wt = h.add_vertex();
            h_terminals.push(wt);
            for (_, e) in g.neighbors(w) {
                h.add_edge(wt, VertexId(e.0))
                    .expect("terminal attachment edge");
            }
        }
        Theorem39Instance {
            h,
            h_terminals,
            g_terminals: terminals.to_vec(),
            edge_count: g.num_edges(),
        }
    }

    /// Whether an `H` vertex represents an edge of `G`.
    pub fn is_edge_vertex(&self, v: VertexId) -> bool {
        v.index() < self.edge_count
    }

    /// Maps an induced-Steiner solution of `(H, W_H)` — a vertex set — back
    /// to the edge set of `G` it represents (dropping the terminal
    /// vertices).
    pub fn solution_to_edges(&self, solution: &[VertexId]) -> Vec<EdgeId> {
        solution
            .iter()
            .filter(|v| self.is_edge_vertex(**v))
            .map(|v| EdgeId(v.0))
            .collect()
    }

    /// Maps an edge set of `G` to the corresponding `H` vertex set
    /// (including all terminal vertices), sorted.
    pub fn edges_to_solution(&self, edges: &[EdgeId]) -> Vec<VertexId> {
        let mut sol: Vec<VertexId> = edges.iter().map(|e| VertexId(e.0)).collect();
        sol.extend_from_slice(&self.h_terminals);
        sol.sort_unstable();
        sol
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clawfree::is_claw_free;

    #[test]
    fn line_graph_of_path_is_path() {
        let g = UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let lg = line_graph(&g);
        assert_eq!(lg.num_vertices(), 3);
        assert_eq!(lg.num_edges(), 2);
        assert!(lg.has_edge_between(VertexId(0), VertexId(1)));
        assert!(lg.has_edge_between(VertexId(1), VertexId(2)));
        assert!(!lg.has_edge_between(VertexId(0), VertexId(2)));
    }

    #[test]
    fn line_graph_of_star_is_complete() {
        let g = UndirectedGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        let lg = line_graph(&g);
        assert_eq!(lg.num_vertices(), 3);
        assert_eq!(lg.num_edges(), 3, "K_3");
    }

    #[test]
    fn line_graph_of_parallel_edges_is_simple() {
        let g = UndirectedGraph::from_edges(2, &[(0, 1), (0, 1)]).unwrap();
        let lg = line_graph(&g);
        assert_eq!(lg.num_vertices(), 2);
        assert_eq!(
            lg.num_edges(),
            1,
            "parallel edges meet at both endpoints but once in L(G)"
        );
    }

    #[test]
    fn theorem39_instance_is_claw_free() {
        let g = UndirectedGraph::from_edges(
            6,
            &[(0, 1), (1, 2), (2, 3), (3, 0), (1, 4), (4, 5), (2, 5)],
        )
        .unwrap();
        let inst = Theorem39Instance::new(&g, &[VertexId(0), VertexId(5)]);
        assert!(is_claw_free(&inst.h), "Theorem 39 guarantees claw-freeness");
        assert_eq!(inst.h.num_vertices(), g.num_edges() + 2);
        assert_eq!(inst.h_terminals, vec![VertexId(7), VertexId(8)]);
    }

    #[test]
    fn theorem39_round_trip_mapping() {
        let g = UndirectedGraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let inst = Theorem39Instance::new(&g, &[VertexId(0), VertexId(2)]);
        let edges = vec![EdgeId(0), EdgeId(1)];
        let sol = inst.edges_to_solution(&edges);
        assert_eq!(inst.solution_to_edges(&sol), edges);
    }
}
