//! Claw (`K_{1,3}`) detection.
//!
//! §7's supergraph enumerator is correct only on claw-free graphs (the
//! "exactly two components after deleting a cut vertex" argument). The
//! enumerator validates its input with [`is_claw_free`]; [`find_claw`]
//! additionally reports a witness for error messages and tests.

use crate::ids::VertexId;
use crate::undirected::UndirectedGraph;
use std::collections::HashSet;

/// Searches for an induced claw: a center `c` with three pairwise
/// non-adjacent neighbors `x, y, z`. Returns `[c, x, y, z]` if one exists.
///
/// Runs in O(Σ_v deg(v)³) worst case with an O(m) adjacency set — fine for
/// the moderate instances enumeration is feasible on anyway.
pub fn find_claw(g: &UndirectedGraph) -> Option<[VertexId; 4]> {
    // Adjacency set for O(1) pair tests; parallel edges collapse.
    let mut adjacent: HashSet<(u32, u32)> = HashSet::with_capacity(2 * g.num_edges());
    for e in g.edges() {
        let (u, v) = g.endpoints(e);
        adjacent.insert((u.0, v.0));
        adjacent.insert((v.0, u.0));
    }
    let is_adj = |a: VertexId, b: VertexId| adjacent.contains(&(a.0, b.0));
    for c in g.vertices() {
        // Deduplicated neighbor list (parallel edges repeat neighbors).
        let mut nbrs: Vec<VertexId> = g.neighbors(c).map(|(v, _)| v).collect();
        nbrs.sort_unstable();
        nbrs.dedup();
        let k = nbrs.len();
        for i in 0..k {
            for j in i + 1..k {
                if is_adj(nbrs[i], nbrs[j]) {
                    continue;
                }
                for l in j + 1..k {
                    if !is_adj(nbrs[i], nbrs[l]) && !is_adj(nbrs[j], nbrs[l]) {
                        return Some([c, nbrs[i], nbrs[j], nbrs[l]]);
                    }
                }
            }
        }
    }
    None
}

/// Whether the graph contains no induced `K_{1,3}`.
pub fn is_claw_free(g: &UndirectedGraph) -> bool {
    find_claw(g).is_none()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::line_graph::line_graph;
    use rand::SeedableRng;

    #[test]
    fn star_is_a_claw() {
        let g = UndirectedGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        let claw = find_claw(&g).expect("K_{1,3} is a claw");
        assert_eq!(claw[0], VertexId(0));
        assert!(!is_claw_free(&g));
    }

    #[test]
    fn cycle_and_complete_are_claw_free() {
        assert!(is_claw_free(&generators::cycle(7)));
        assert!(is_claw_free(&generators::complete(5)));
        assert!(is_claw_free(&generators::path(6)));
    }

    #[test]
    fn spider_with_long_legs_has_claw() {
        // Center 0 with three legs of length 2.
        let g = UndirectedGraph::from_edges(7, &[(0, 1), (1, 2), (0, 3), (3, 4), (0, 5), (5, 6)])
            .unwrap();
        assert!(!is_claw_free(&g));
        let claw = find_claw(&g).unwrap();
        assert_eq!(claw[0], VertexId(0));
    }

    #[test]
    fn line_graphs_are_claw_free() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for case in 0..20 {
            let n = 4 + case % 8;
            let g = generators::random_connected_graph(n, n + case % 4, &mut rng);
            assert!(
                is_claw_free(&line_graph(&g)),
                "line graphs are claw-free (Beineke)"
            );
        }
    }

    #[test]
    fn claw_witness_is_an_induced_claw() {
        let g = UndirectedGraph::from_edges(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (1, 2), (4, 5)])
            .unwrap();
        if let Some([c, x, y, z]) = find_claw(&g) {
            for v in [x, y, z] {
                assert!(g.has_edge_between(c, v));
            }
            assert!(!g.has_edge_between(x, y));
            assert!(!g.has_edge_between(x, z));
            assert!(!g.has_edge_between(y, z));
        } else {
            panic!("graph has a claw (center 0 with 1/3/4 or similar)");
        }
    }
}
