//! Undirected multigraphs with dense vertex/edge ids.
//!
//! The paper's preliminaries (§2) allow parallel edges (they arise from the
//! contraction `G/F`) but forbid self-loops. This type mirrors that model:
//! [`UndirectedGraph::add_edge`] rejects self-loops and happily records
//! parallel edges under distinct [`EdgeId`]s.

use crate::ids::{EdgeId, VertexId};
use crate::{GraphError, Result};

/// Outcome of [`UndirectedGraph::remove_edge`]: the endpoints that were
/// removed, plus the id reassignment (if any) the dense-id invariant forced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RemovedEdge {
    /// Endpoints of the edge that was removed.
    pub endpoints: (VertexId, VertexId),
    /// When the removed edge was not the last one, the previous last edge
    /// takes over the freed id: `(old_id, u, v)` of that relocated edge.
    pub moved: Option<(EdgeId, VertexId, VertexId)>,
}

/// An undirected multigraph stored as an adjacency list plus an endpoint
/// table indexed by edge id.
///
/// Invariants:
/// * no self-loops,
/// * edge ids are dense: `0..num_edges()`,
/// * each edge `{u, v}` appears once in `adj[u]` and once in `adj[v]`,
/// * adjacency lists are sorted by edge id ([`Self::add_edge`] appends the
///   largest id; [`Self::remove_edge`] repositions the renumbered edge) —
///   the neighbor order every enumeration stream depends on is therefore a
///   pure function of the edge id assignment.
#[derive(Clone, Debug, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct UndirectedGraph {
    endpoints: Vec<(VertexId, VertexId)>,
    adj: Vec<Vec<(VertexId, EdgeId)>>,
}

impl UndirectedGraph {
    /// Creates a graph with `n` isolated vertices.
    pub fn new(n: usize) -> Self {
        UndirectedGraph {
            endpoints: Vec::new(),
            adj: vec![Vec::new(); n],
        }
    }

    /// Creates a graph with `n` isolated vertices, reserving room for `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        UndirectedGraph {
            endpoints: Vec::with_capacity(m),
            adj: vec![Vec::new(); n],
        }
    }

    /// Builds a graph from `(u, v)` pairs. Edge ids follow input order.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Result<Self> {
        let mut g = UndirectedGraph::with_capacity(n, edges.len());
        for &(u, v) in edges {
            g.add_edge_indices(u, v)?;
        }
        Ok(g)
    }

    /// Adds the edge `{u, v}` and returns its id. Rejects self-loops and
    /// out-of-range endpoints. Parallel edges are allowed.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> Result<EdgeId> {
        self.add_edge_indices(u.index(), v.index())
    }

    /// As [`Self::add_edge`], taking raw indices.
    pub fn add_edge_indices(&mut self, u: usize, v: usize) -> Result<EdgeId> {
        let n = self.num_vertices();
        if u >= n {
            return Err(GraphError::VertexOutOfRange {
                vertex: u,
                num_vertices: n,
            });
        }
        if v >= n {
            return Err(GraphError::VertexOutOfRange {
                vertex: v,
                num_vertices: n,
            });
        }
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u });
        }
        let e = EdgeId::new(self.endpoints.len());
        let (u, v) = (VertexId::new(u), VertexId::new(v));
        self.endpoints.push((u, v));
        self.adj[u.index()].push((v, e));
        self.adj[v.index()].push((u, e));
        Ok(e)
    }

    /// Appends an isolated vertex and returns its id.
    pub fn add_vertex(&mut self) -> VertexId {
        self.adj.push(Vec::new());
        VertexId::new(self.adj.len() - 1)
    }

    /// Removes edge `e`, keeping edge ids dense: the edge with the
    /// largest id takes over the freed id (`swap_remove` semantics), and
    /// its adjacency entries are repositioned so lists stay sorted by
    /// edge id. O(deg(u) + deg(v) + deg(moved endpoints)).
    ///
    /// Returns the removed endpoints plus the renumbering performed, so
    /// delta-aware consumers (epoch logs, CSR views, caches) can mirror
    /// the id reassignment without rescanning the graph.
    pub fn remove_edge(&mut self, e: EdgeId) -> Result<RemovedEdge> {
        let m = self.num_edges();
        if e.index() >= m {
            return Err(GraphError::EdgeOutOfRange {
                edge: e.index(),
                num_edges: m,
            });
        }
        let (u, v) = self.endpoints[e.index()];
        Self::drop_adj_entry(&mut self.adj[u.index()], e);
        Self::drop_adj_entry(&mut self.adj[v.index()], e);
        let last = EdgeId::new(m - 1);
        self.endpoints.swap_remove(e.index());
        let moved = if e != last {
            let (a, b) = self.endpoints[e.index()];
            Self::renumber_adj_entry(&mut self.adj[a.index()], last, e);
            Self::renumber_adj_entry(&mut self.adj[b.index()], last, e);
            Some((last, a, b))
        } else {
            None
        };
        Ok(RemovedEdge {
            endpoints: (u, v),
            moved,
        })
    }

    /// Removes the entry for `e` from one adjacency list, preserving the
    /// sorted-by-edge-id order of the remaining entries.
    fn drop_adj_entry(list: &mut Vec<(VertexId, EdgeId)>, e: EdgeId) {
        let pos = list
            .binary_search_by_key(&e, |&(_, id)| id)
            .expect("edge is present in its endpoint's adjacency");
        list.remove(pos);
    }

    /// Rewrites the entry for `old` (the largest id in the list) to carry
    /// id `new`, re-inserting it at its sorted position.
    fn renumber_adj_entry(list: &mut Vec<(VertexId, EdgeId)>, old: EdgeId, new: EdgeId) {
        let pos = list
            .binary_search_by_key(&old, |&(_, id)| id)
            .expect("renumbered edge is present in its endpoint's adjacency");
        let (nbr, _) = list.remove(pos);
        let insert_at = list
            .binary_search_by_key(&new, |&(_, id)| id)
            .expect_err("freed id was just removed from this list");
        list.insert(insert_at, (nbr, new));
    }

    /// Number of vertices `n`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges `m` (parallel edges counted separately).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.endpoints.len()
    }

    /// The two endpoints of edge `e`, in insertion order.
    #[inline]
    pub fn endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        self.endpoints[e.index()]
    }

    /// The endpoint of `e` that is not `v`.
    ///
    /// Panics (in debug builds) if `v` is not an endpoint of `e`.
    #[inline]
    pub fn other_endpoint(&self, e: EdgeId, v: VertexId) -> VertexId {
        let (a, b) = self.endpoints[e.index()];
        debug_assert!(
            v == a || v == b,
            "vertex {v} is not an endpoint of edge {e}"
        );
        if v == a {
            b
        } else {
            a
        }
    }

    /// Iterates over `(neighbor, edge)` pairs incident to `v`, in edge
    /// insertion order. Parallel edges yield the same neighbor repeatedly.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, EdgeId)> + '_ {
        self.adj[v.index()].iter().copied()
    }

    /// Degree of `v` (parallel edges counted separately).
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.adj[v.index()].len()
    }

    /// The adjacency list of `v` as a slice, for indexed access in
    /// iterative traversals.
    #[inline]
    pub fn adjacency(&self, v: VertexId) -> &[(VertexId, EdgeId)] {
        &self.adj[v.index()]
    }

    /// Iterates over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        (0..self.num_vertices()).map(VertexId::new)
    }

    /// Iterates over all edge ids.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> {
        (0..self.num_edges()).map(EdgeId::new)
    }

    /// Whether at least one edge joins `u` and `v` (O(min degree) scan).
    pub fn has_edge_between(&self, u: VertexId, v: VertexId) -> bool {
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).any(|(w, _)| w == b)
    }

    /// The vertex set `V(F)` spanned by an edge set, deduplicated and sorted.
    pub fn edge_set_vertices(&self, edges: &[EdgeId]) -> Vec<VertexId> {
        let mut verts: Vec<VertexId> = Vec::with_capacity(edges.len() + 1);
        for &e in edges {
            let (u, v) = self.endpoints(e);
            verts.push(u);
            verts.push(v);
        }
        verts.sort_unstable();
        verts.dedup();
        verts
    }

    /// Builds the subgraph induced by the vertex set `keep` (given as a mask
    /// of length `n`). Returns the subgraph together with maps from new
    /// vertex/edge ids back to the original ids.
    pub fn induced_subgraph(&self, keep: &[bool]) -> InducedSubgraph {
        debug_assert_eq!(keep.len(), self.num_vertices());
        let mut old_to_new: Vec<Option<VertexId>> = vec![None; self.num_vertices()];
        let mut new_to_old: Vec<VertexId> = Vec::new();
        for v in self.vertices() {
            if keep[v.index()] {
                old_to_new[v.index()] = Some(VertexId::new(new_to_old.len()));
                new_to_old.push(v);
            }
        }
        let mut graph = UndirectedGraph::new(new_to_old.len());
        let mut edge_to_old: Vec<EdgeId> = Vec::new();
        for e in self.edges() {
            let (u, v) = self.endpoints(e);
            if let (Some(nu), Some(nv)) = (old_to_new[u.index()], old_to_new[v.index()]) {
                graph.add_edge(nu, nv).expect("induced edge is valid");
                edge_to_old.push(e);
            }
        }
        InducedSubgraph {
            graph,
            vertex_to_old: new_to_old,
            edge_to_old,
            old_to_new,
        }
    }

    /// Degree of every vertex restricted to an edge subset, as a vector.
    pub fn degrees_in_edge_set(&self, edges: &[EdgeId]) -> Vec<u32> {
        let mut deg = vec![0u32; self.num_vertices()];
        for &e in edges {
            let (u, v) = self.endpoints(e);
            deg[u.index()] += 1;
            deg[v.index()] += 1;
        }
        deg
    }
}

/// An induced subgraph together with id translations back to the host graph.
#[derive(Clone, Debug)]
pub struct InducedSubgraph {
    /// The induced subgraph with fresh dense ids.
    pub graph: UndirectedGraph,
    /// `vertex_to_old[new.index()]` is the original vertex id.
    pub vertex_to_old: Vec<VertexId>,
    /// `edge_to_old[new.index()]` is the original edge id.
    pub edge_to_old: Vec<EdgeId>,
    /// `old_to_new[old.index()]` is the new id, if the vertex was kept.
    pub old_to_new: Vec<Option<VertexId>>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> UndirectedGraph {
        UndirectedGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap()
    }

    #[test]
    fn builds_triangle() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(VertexId(0)), 2);
        assert!(g.has_edge_between(VertexId(0), VertexId(2)));
    }

    #[test]
    fn rejects_self_loop() {
        let mut g = UndirectedGraph::new(2);
        assert_eq!(
            g.add_edge_indices(1, 1),
            Err(GraphError::SelfLoop { vertex: 1 })
        );
    }

    #[test]
    fn rejects_out_of_range() {
        let mut g = UndirectedGraph::new(2);
        assert_eq!(
            g.add_edge_indices(0, 5),
            Err(GraphError::VertexOutOfRange {
                vertex: 5,
                num_vertices: 2
            })
        );
    }

    #[test]
    fn allows_parallel_edges() {
        let g = UndirectedGraph::from_edges(2, &[(0, 1), (0, 1)]).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(VertexId(0)), 2);
        let ids: Vec<EdgeId> = g.neighbors(VertexId(0)).map(|(_, e)| e).collect();
        assert_eq!(ids, vec![EdgeId(0), EdgeId(1)]);
    }

    #[test]
    fn other_endpoint_flips() {
        let g = triangle();
        assert_eq!(g.other_endpoint(EdgeId(0), VertexId(0)), VertexId(1));
        assert_eq!(g.other_endpoint(EdgeId(0), VertexId(1)), VertexId(0));
    }

    #[test]
    fn edge_set_vertices_dedups() {
        let g = triangle();
        let verts = g.edge_set_vertices(&[EdgeId(0), EdgeId(1)]);
        assert_eq!(verts, vec![VertexId(0), VertexId(1), VertexId(2)]);
    }

    #[test]
    fn induced_subgraph_remaps_ids() {
        let g = UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let sub = g.induced_subgraph(&[true, true, true, false]);
        assert_eq!(sub.graph.num_vertices(), 3);
        assert_eq!(sub.graph.num_edges(), 2);
        assert_eq!(sub.edge_to_old, vec![EdgeId(0), EdgeId(1)]);
        assert_eq!(
            sub.vertex_to_old,
            vec![VertexId(0), VertexId(1), VertexId(2)]
        );
        assert_eq!(sub.old_to_new[3], None);
    }

    #[test]
    fn add_vertex_extends_graph() {
        let mut g = triangle();
        let v = g.add_vertex();
        assert_eq!(v, VertexId(3));
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.degree(v), 0);
    }

    #[test]
    fn degrees_in_edge_set_counts_only_selected() {
        let g = triangle();
        let deg = g.degrees_in_edge_set(&[EdgeId(0)]);
        assert_eq!(deg, vec![1, 1, 0]);
    }
}
