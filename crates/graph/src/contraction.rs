//! Edge-set and vertex-set contraction producing multigraphs that remember
//! original edge identities.
//!
//! The paper's §5 enumerators work on `G/E(F)` (Steiner forests) and
//! `D/E(T)` (directed Steiner trees). Because there is a one-to-one
//! correspondence between the non-contracted edges of `G` and the edges of
//! `G/E(F)` (§5, after Lemma 22), each contracted graph carries a table
//! mapping its edges back to original ids; paths found in the contracted
//! graph translate to original edge sets for free.
//!
//! Contraction can create parallel edges — they are kept, with distinct
//! original ids — and self-loops — they are dropped, since no simple path
//! can use them.

use crate::digraph::DiGraph;
use crate::ids::{ArcId, EdgeId, VertexId};
use crate::undirected::UndirectedGraph;
use crate::union_find::UnionFind;

/// The multigraph `G/F` with translation tables.
#[derive(Clone, Debug)]
pub struct ContractedGraph {
    /// The contracted multigraph (fresh dense vertex and edge ids).
    pub graph: UndirectedGraph,
    /// `vertex_map[v]` — the contracted vertex that original vertex `v`
    /// belongs to.
    pub vertex_map: Vec<VertexId>,
    /// `orig_edge[e']` — the original edge behind contracted edge `e'`.
    pub orig_edge: Vec<EdgeId>,
}

impl ContractedGraph {
    /// The contracted image of an original vertex.
    #[inline]
    pub fn image(&self, v: VertexId) -> VertexId {
        self.vertex_map[v.index()]
    }

    /// Translates a set of contracted edge ids back to original ids.
    pub fn to_original_edges(&self, edges: &[EdgeId]) -> Vec<EdgeId> {
        edges.iter().map(|e| self.orig_edge[e.index()]).collect()
    }
}

/// Contracts the edge set `contract` in `g` (i.e. computes `G/F`).
///
/// Original edges outside `contract` whose endpoints fall into different
/// classes survive with their id recorded; self-loops are dropped.
pub fn contract_edge_set(g: &UndirectedGraph, contract: &[EdgeId]) -> ContractedGraph {
    let n = g.num_vertices();
    let mut uf = UnionFind::new(n);
    let mut contracted_mask = vec![false; g.num_edges()];
    for &e in contract {
        contracted_mask[e.index()] = true;
        let (u, v) = g.endpoints(e);
        uf.union(u, v);
    }
    // Compact class representatives to dense new ids.
    let mut new_id: Vec<Option<VertexId>> = vec![None; n];
    let mut vertex_map: Vec<VertexId> = Vec::with_capacity(n);
    let mut count = 0usize;
    for v in 0..n {
        let rep = uf.find(VertexId::new(v));
        let id = *new_id[rep.index()].get_or_insert_with(|| {
            let id = VertexId::new(count);
            count += 1;
            id
        });
        vertex_map.push(id);
    }
    let mut graph = UndirectedGraph::new(count);
    let mut orig_edge = Vec::new();
    for e in g.edges() {
        if contracted_mask[e.index()] {
            continue;
        }
        let (u, v) = g.endpoints(e);
        let (nu, nv) = (vertex_map[u.index()], vertex_map[v.index()]);
        if nu == nv {
            continue; // self-loop after contraction
        }
        graph.add_edge(nu, nv).expect("contracted edge is valid");
        orig_edge.push(e);
    }
    ContractedGraph {
        graph,
        vertex_map,
        orig_edge,
    }
}

/// The digraph `D` with a vertex set contracted into a single super-vertex,
/// with translation tables.
#[derive(Clone, Debug)]
pub struct ContractedDigraph {
    /// The contracted digraph (fresh dense vertex and arc ids).
    pub graph: DiGraph,
    /// `vertex_map[v]` — the contracted vertex original `v` maps to.
    pub vertex_map: Vec<VertexId>,
    /// `orig_arc[a']` — the original arc behind contracted arc `a'`.
    pub orig_arc: Vec<ArcId>,
    /// The super-vertex all contracted originals map to.
    pub super_vertex: VertexId,
}

impl ContractedDigraph {
    /// Translates a set of contracted arc ids back to original ids.
    pub fn to_original_arcs(&self, arcs: &[ArcId]) -> Vec<ArcId> {
        arcs.iter().map(|a| self.orig_arc[a.index()]).collect()
    }
}

/// Contracts every vertex with `in_set[v] == true` into one super-vertex.
///
/// This implements `D/E(T)` for a connected directed tree `T`: contracting
/// `T`'s edges identifies exactly `V(T)`. Arcs inside the set are dropped
/// (self-loops); all other arcs survive with their id recorded. Vertices
/// outside the set keep their relative order; the super-vertex is appended
/// last.
pub fn contract_vertex_set(d: &DiGraph, in_set: &[bool]) -> ContractedDigraph {
    let n = d.num_vertices();
    debug_assert_eq!(in_set.len(), n);
    let mut vertex_map: Vec<VertexId> = Vec::with_capacity(n);
    let mut outside = 0usize;
    for &inside in in_set.iter() {
        if inside {
            vertex_map.push(VertexId(u32::MAX)); // patched below
        } else {
            vertex_map.push(VertexId::new(outside));
            outside += 1;
        }
    }
    let super_vertex = VertexId::new(outside);
    for v in 0..n {
        if in_set[v] {
            vertex_map[v] = super_vertex;
        }
    }
    let mut graph = DiGraph::new(outside + 1);
    let mut orig_arc = Vec::new();
    for a in d.arcs() {
        let (t, h) = d.arc(a);
        let (nt, nh) = (vertex_map[t.index()], vertex_map[h.index()]);
        if nt == nh {
            continue;
        }
        graph.add_arc(nt, nh).expect("contracted arc is valid");
        orig_arc.push(a);
    }
    ContractedDigraph {
        graph,
        vertex_map,
        orig_arc,
        super_vertex,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contracting_a_path_merges_vertices() {
        // Square 0-1-2-3-0, contract edge {0,1}.
        let g = UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let c = contract_edge_set(&g, &[EdgeId(0)]);
        assert_eq!(c.graph.num_vertices(), 3);
        assert_eq!(c.graph.num_edges(), 3);
        assert_eq!(c.image(VertexId(0)), c.image(VertexId(1)));
        assert_eq!(c.orig_edge, vec![EdgeId(1), EdgeId(2), EdgeId(3)]);
    }

    #[test]
    fn contraction_creates_parallel_edges() {
        // Triangle; contract one edge -> two parallel edges remain.
        let g = UndirectedGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        let c = contract_edge_set(&g, &[EdgeId(0)]);
        assert_eq!(c.graph.num_vertices(), 2);
        assert_eq!(c.graph.num_edges(), 2);
        let (a, b) = c.graph.endpoints(EdgeId(0));
        let (x, y) = c.graph.endpoints(EdgeId(1));
        let norm = |p: VertexId, q: VertexId| (p.min(q), p.max(q));
        assert_eq!(norm(a, b), norm(x, y), "both edges join the same pair");
        assert_eq!(
            c.to_original_edges(&[EdgeId(0), EdgeId(1)]),
            vec![EdgeId(1), EdgeId(2)]
        );
    }

    #[test]
    fn contraction_drops_self_loops() {
        // Parallel pair {0,1}x2: contracting one drops the other.
        let g = UndirectedGraph::from_edges(2, &[(0, 1), (0, 1)]).unwrap();
        let c = contract_edge_set(&g, &[EdgeId(0)]);
        assert_eq!(c.graph.num_vertices(), 1);
        assert_eq!(c.graph.num_edges(), 0);
    }

    #[test]
    fn empty_contraction_is_isomorphic_copy() {
        let g = UndirectedGraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let c = contract_edge_set(&g, &[]);
        assert_eq!(c.graph.num_vertices(), 3);
        assert_eq!(c.graph.num_edges(), 2);
        for v in g.vertices() {
            assert_eq!(c.image(v), v);
        }
    }

    #[test]
    fn digraph_vertex_set_contraction() {
        // 0 -> 1 -> 2 -> 3, 0 -> 2; contract {0, 1}.
        let d = DiGraph::from_arcs(4, &[(0, 1), (1, 2), (2, 3), (0, 2)]).unwrap();
        let c = contract_vertex_set(&d, &[true, true, false, false]);
        assert_eq!(c.graph.num_vertices(), 3);
        assert_eq!(c.super_vertex, VertexId(2));
        // Arc (0,1) became a self-loop and vanished; (1,2) and (0,2) became
        // parallel super->2 arcs; (2,3) survived.
        assert_eq!(c.graph.num_arcs(), 3);
        assert_eq!(c.orig_arc, vec![ArcId(1), ArcId(2), ArcId(3)]);
        assert_eq!(c.graph.out_degree(c.super_vertex), 2);
        assert_eq!(
            c.vertex_map,
            vec![VertexId(2), VertexId(2), VertexId(0), VertexId(1)]
        );
    }
}
