//! Dense integer identifiers for vertices, undirected edges and arcs.
//!
//! All graphs in this workspace index vertices and edges densely from zero,
//! so ids are thin `u32` newtypes. Using 32-bit ids halves the memory
//! footprint of adjacency structures relative to `usize` on 64-bit targets
//! (the Rust Performance Book's "smaller integers" advice) while still
//! supporting graphs with billions of incidences.

/// Identifier of a vertex: a dense index in `0..n`.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct VertexId(pub u32);

/// Identifier of an undirected edge: a dense index in `0..m`.
///
/// Parallel edges receive distinct ids; algorithms that must distinguish
/// parallel edges (bridge finding, path enumeration on contracted
/// multigraphs) always work with edge ids, never with endpoint pairs.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EdgeId(pub u32);

/// Identifier of a directed arc: a dense index in `0..m` of a [`crate::DiGraph`].
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ArcId(pub u32);

macro_rules! impl_id {
    ($name:ident) => {
        impl $name {
            /// Wraps a `usize` index (panics if it does not fit in `u32`).
            #[inline]
            pub fn new(index: usize) -> Self {
                debug_assert!(index <= u32::MAX as usize, "id overflow");
                $name(index as u32)
            }

            /// The underlying index as a `usize`, for direct slice access.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<usize> for $name {
            #[inline]
            fn from(index: usize) -> Self {
                $name::new(index)
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}", self.0)
            }
        }
    };
}

impl_id!(VertexId);
impl_id!(EdgeId);
impl_id!(ArcId);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_usize() {
        assert_eq!(VertexId::new(7).index(), 7);
        assert_eq!(EdgeId::new(0).index(), 0);
        assert_eq!(ArcId::from(11).index(), 11);
    }

    #[test]
    fn ids_order_by_index() {
        assert!(VertexId(1) < VertexId(2));
        assert!(EdgeId(0) < EdgeId(9));
    }

    #[test]
    fn ids_display_as_numbers() {
        assert_eq!(VertexId(3).to_string(), "3");
        assert_eq!(ArcId(12).to_string(), "12");
    }
}
