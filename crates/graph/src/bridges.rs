//! Multigraph-aware bridge finding (Tarjan's low-link algorithm, the paper's reference \[32\]).
//!
//! A *bridge* is an edge whose removal increases the number of connected
//! components. The Steiner enumerators use bridges to decide whether a
//! partial solution extends uniquely (Lemmas 16, 24 and 30 of the paper).
//!
//! Two details matter for correctness here:
//!
//! * **parallel edges**: the DFS must skip only the *edge* it entered a
//!   vertex through, not every edge to the parent vertex — a parallel pair
//!   `{u, v}, {u, v}` contains no bridge, and an implementation keyed on
//!   parent vertices would wrongly report both as bridges;
//! * **recursion depth**: the DFS is iterative, since enumeration workloads
//!   contain path-like graphs of depth Θ(n).

use crate::ids::{EdgeId, VertexId};
use crate::undirected::UndirectedGraph;

/// Computes the bridges of the graph (restricted to `allowed` vertices if a
/// mask is given). Returns a mask over edge ids: `true` means bridge.
///
/// Runs in O(n + m) time and space.
pub fn bridges(g: &UndirectedGraph, allowed: Option<&[bool]>) -> Vec<bool> {
    let n = g.num_vertices();
    let m = g.num_edges();
    let mut is_bridge = vec![false; m];
    let mut disc = vec![u32::MAX; n]; // discovery time; MAX = unvisited
    let mut low = vec![u32::MAX; n];
    let mut timer: u32 = 0;
    let ok = |v: VertexId| allowed.is_none_or(|mask| mask[v.index()]);

    // Stack entries: (vertex, edge used to enter it, index of next incident
    // edge to inspect).
    let mut stack: Vec<(VertexId, Option<EdgeId>, usize)> = Vec::new();
    for start in 0..n {
        let start_v = VertexId::new(start);
        if !ok(start_v) || disc[start] != u32::MAX {
            continue;
        }
        disc[start] = timer;
        low[start] = timer;
        timer += 1;
        stack.push((start_v, None, 0));
        while let Some(&mut (u, entry_edge, ref mut next)) = stack.last_mut() {
            if let Some(&(v, e)) = g.adjacency(u).get(*next) {
                *next += 1;
                if Some(e) == entry_edge {
                    // The exact edge we came through; a *parallel* edge to
                    // the parent falls through to the back-edge case below.
                    continue;
                }
                if !ok(v) {
                    continue;
                }
                if disc[v.index()] == u32::MAX {
                    disc[v.index()] = timer;
                    low[v.index()] = timer;
                    timer += 1;
                    stack.push((v, Some(e), 0));
                } else {
                    // Back edge (or forward edge to an already-finished
                    // vertex): pull its discovery time into low(u).
                    low[u.index()] = low[u.index()].min(disc[v.index()]);
                }
            } else {
                // u is finished: propagate low-link to the parent and test
                // the tree edge for bridge-ness.
                stack.pop();
                if let Some(&mut (p, _, _)) = stack.last_mut() {
                    let lu = low[u.index()];
                    low[p.index()] = low[p.index()].min(lu);
                    if lu > disc[p.index()] {
                        is_bridge[entry_edge.expect("non-root has entry edge").index()] = true;
                    }
                }
            }
        }
    }
    is_bridge
}

/// Reusable buffers for [`bridges_csr_into`] — the allocation-free bridge
/// finder the enumeration hot paths call once per node.
#[derive(Clone, Debug, Default)]
pub struct BridgeScratch {
    /// Output mask (`is_bridge[e]`), valid after [`bridges_csr_into`].
    pub is_bridge: Vec<bool>,
    disc: Vec<u32>,
    low: Vec<u32>,
    stack: Vec<(VertexId, u32, u32)>,
    allocs: u64,
}

impl BridgeScratch {
    /// Reserves for graphs with `n` vertices and `m` edges, so later runs
    /// do not allocate.
    pub fn preallocate(&mut self, n: usize, m: usize) {
        if self.is_bridge.capacity() < m {
            self.is_bridge.reserve(m - self.is_bridge.capacity());
        }
        if self.disc.capacity() < n {
            self.disc.reserve(n - self.disc.capacity());
        }
        if self.low.capacity() < n {
            self.low.reserve(n - self.low.capacity());
        }
        if self.stack.capacity() < n {
            self.stack.reserve(n - self.stack.capacity());
        }
    }

    /// Growth events recorded by the scratch buffers.
    pub fn alloc_events(&self) -> u64 {
        self.allocs
    }

    /// Bytes of owned buffer capacity.
    pub fn capacity_bytes(&self) -> u64 {
        (self.is_bridge.capacity() * std::mem::size_of::<bool>()
            + (self.disc.capacity() + self.low.capacity()) * std::mem::size_of::<u32>()
            + self.stack.capacity() * std::mem::size_of::<(VertexId, u32, u32)>()) as u64
    }
}

/// As [`bridges`], but over a [`CsrUndirected`](crate::csr::CsrUndirected)
/// view and writing into
/// `scratch.is_bridge` without allocating (after warm-up). Same algorithm,
/// same parallel-edge handling.
pub fn bridges_csr_into(
    g: &crate::csr::CsrUndirected,
    allowed: Option<&[bool]>,
    scratch: &mut BridgeScratch,
) {
    let n = g.num_vertices();
    let m = g.num_edges();
    crate::csr::grow(&mut scratch.is_bridge, m, false, &mut scratch.allocs);
    crate::csr::grow(&mut scratch.disc, n, u32::MAX, &mut scratch.allocs);
    crate::csr::grow(&mut scratch.low, n, u32::MAX, &mut scratch.allocs);
    if scratch.stack.capacity() < n {
        scratch.allocs += 1;
        scratch.stack.reserve(n - scratch.stack.capacity());
    }
    scratch.stack.clear();
    let disc = &mut scratch.disc;
    let low = &mut scratch.low;
    let is_bridge = &mut scratch.is_bridge;
    let stack = &mut scratch.stack;
    let mut timer: u32 = 0;
    let ok = |v: VertexId| allowed.is_none_or(|mask| mask[v.index()]);
    // Stack entries: (vertex, entry edge id or MAX, next incident index).
    const NO_EDGE: u32 = u32::MAX;
    for start in 0..n {
        let start_v = VertexId::new(start);
        if !ok(start_v) || disc[start] != u32::MAX {
            continue;
        }
        disc[start] = timer;
        low[start] = timer;
        timer += 1;
        stack.push((start_v, NO_EDGE, 0));
        while let Some(&mut (u, entry_edge, ref mut next)) = stack.last_mut() {
            if let Some(&(v, e)) = g.adjacency(u).get(*next as usize) {
                *next += 1;
                if e.index() as u32 == entry_edge {
                    continue; // the exact edge we entered through
                }
                if !ok(v) {
                    continue;
                }
                if disc[v.index()] == u32::MAX {
                    disc[v.index()] = timer;
                    low[v.index()] = timer;
                    timer += 1;
                    stack.push((v, e.index() as u32, 0));
                } else {
                    low[u.index()] = low[u.index()].min(disc[v.index()]);
                }
            } else {
                stack.pop();
                if let Some(&mut (p, _, _)) = stack.last_mut() {
                    let lu = low[u.index()];
                    low[p.index()] = low[p.index()].min(lu);
                    if lu > disc[p.index()] {
                        is_bridge[entry_edge as usize] = true;
                    }
                }
            }
        }
    }
}

/// Brute-force bridge computation by edge removal, used as a test oracle.
/// O(m · (n + m)).
pub fn bridges_naive(g: &UndirectedGraph, allowed: Option<&[bool]>) -> Vec<bool> {
    let base = components_ignoring_edge(g, allowed, None);
    g.edges()
        .map(|e| {
            let (u, v) = g.endpoints(e);
            let present = |w: VertexId| allowed.is_none_or(|mask| mask[w.index()]);
            if !present(u) || !present(v) {
                return false;
            }
            components_ignoring_edge(g, allowed, Some(e)) > base
        })
        .collect()
}

fn components_ignoring_edge(
    g: &UndirectedGraph,
    allowed: Option<&[bool]>,
    skip: Option<EdgeId>,
) -> usize {
    let n = g.num_vertices();
    let ok = |v: usize| allowed.is_none_or(|mask| mask[v]);
    let mut seen = vec![false; n];
    let mut count = 0;
    let mut stack = Vec::new();
    for s in 0..n {
        if !ok(s) || seen[s] {
            continue;
        }
        count += 1;
        seen[s] = true;
        stack.push(VertexId::new(s));
        while let Some(u) = stack.pop() {
            for (v, e) in g.neighbors(u) {
                if Some(e) == skip || !ok(v.index()) || seen[v.index()] {
                    continue;
                }
                seen[v.index()] = true;
                stack.push(v);
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::SeedableRng;

    #[test]
    fn path_edges_are_all_bridges() {
        let g = UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_eq!(bridges(&g, None), vec![true, true, true]);
    }

    #[test]
    fn cycle_has_no_bridges() {
        let g = UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        assert_eq!(bridges(&g, None), vec![false; 4]);
    }

    #[test]
    fn parallel_edges_are_never_bridges() {
        let g = UndirectedGraph::from_edges(3, &[(0, 1), (0, 1), (1, 2)]).unwrap();
        assert_eq!(bridges(&g, None), vec![false, false, true]);
    }

    #[test]
    fn barbell_bridge() {
        // Two triangles joined by one edge: only the joining edge is a bridge.
        let g = UndirectedGraph::from_edges(
            6,
            &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)],
        )
        .unwrap();
        let b = bridges(&g, None);
        assert_eq!(b, vec![false, false, false, false, false, false, true]);
    }

    #[test]
    fn mask_changes_bridges() {
        // Square 0-1-2-3-0: no bridges; masking vertex 3 leaves a path.
        let g = UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let mask = vec![true, true, true, false];
        let b = bridges(&g, Some(&mask));
        assert_eq!(b, vec![true, true, false, false]);
    }

    #[test]
    fn matches_naive_on_random_graphs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xb51d9e5);
        for case in 0..60 {
            let n = 2 + case % 12;
            let extra = case % 7;
            let g = generators::random_connected_graph(n, n - 1 + extra, &mut rng);
            assert_eq!(bridges(&g, None), bridges_naive(&g, None), "graph: {g:?}");
        }
    }

    #[test]
    fn csr_variant_matches_allocating_variant() {
        use rand::Rng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xc5a);
        let mut scratch = BridgeScratch::default();
        for case in 0..40 {
            let n = 3 + case % 10;
            let g = generators::random_connected_graph(n, n + case % 5, &mut rng);
            let csr = crate::csr::CsrUndirected::from_graph(&g);
            let mask: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.85)).collect();
            for allowed in [None, Some(&mask[..])] {
                bridges_csr_into(&csr, allowed, &mut scratch);
                assert_eq!(scratch.is_bridge, bridges(&g, allowed), "graph: {g:?}");
            }
        }
    }

    #[test]
    fn matches_naive_on_masked_random_graphs() {
        use rand::Rng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x77aa);
        for case in 0..40 {
            let n = 3 + case % 10;
            let g = generators::random_connected_graph(n, n + case % 5, &mut rng);
            let mask: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.8)).collect();
            assert_eq!(
                bridges(&g, Some(&mask)),
                bridges_naive(&g, Some(&mask)),
                "graph: {g:?}, mask: {mask:?}"
            );
        }
    }
}
