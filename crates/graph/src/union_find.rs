//! Union–find with rollback.
//!
//! The Steiner-forest enumerator (§5 of the paper) maintains a partial
//! forest `F` along a root-to-leaf path of the enumeration tree, extending
//! it when recursing and restoring it when backtracking. A union-by-size
//! union–find without path compression supports exact rollback in O(1) per
//! undone union while keeping `find` at O(log n) — the right trade-off for
//! this access pattern.

use crate::ids::VertexId;

/// Union–find over `0..n` with union by size and O(1) rollback.
#[derive(Clone, Debug, Default)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    /// Roots that were attached to another root, in union order.
    history: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            history: Vec::new(),
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets.
    pub fn num_components(&self) -> usize {
        self.components
    }

    /// Representative of the set containing `x` (no path compression, so
    /// rollback stays exact).
    pub fn find(&self, x: VertexId) -> VertexId {
        let mut cur = x.0;
        while self.parent[cur as usize] != cur {
            cur = self.parent[cur as usize];
        }
        VertexId(cur)
    }

    /// Whether `x` and `y` are in the same set.
    pub fn same(&self, x: VertexId, y: VertexId) -> bool {
        self.find(x) == self.find(y)
    }

    /// Merges the sets of `x` and `y`. Returns `true` if they were distinct.
    pub fn union(&mut self, x: VertexId, y: VertexId) -> bool {
        let (rx, ry) = (self.find(x), self.find(y));
        if rx == ry {
            return false;
        }
        // Attach the smaller root below the larger.
        let (big, small) = if self.size[rx.index()] >= self.size[ry.index()] {
            (rx, ry)
        } else {
            (ry, rx)
        };
        self.parent[small.index()] = big.0;
        self.size[big.index()] += self.size[small.index()];
        self.history.push(small.0);
        self.components -= 1;
        true
    }

    /// Reserves room for `cap` recorded unions so steady-state operation
    /// never grows the history log.
    pub fn reserve_history(&mut self, cap: usize) {
        if self.history.capacity() < cap {
            self.history.reserve(cap - self.history.capacity());
        }
    }

    /// Resets to `n` singleton sets **in place**, reusing the existing
    /// buffers: the allocation-free analogue of `UnionFind::new(n)` for
    /// per-node scratch reuse in the enumeration hot path.
    pub fn reset(&mut self, n: usize) {
        self.parent.clear();
        self.parent.extend(0..n as u32);
        self.size.clear();
        self.size.resize(n, 1);
        self.history.clear();
        self.components = n;
    }

    /// Bytes of owned buffer capacity (scratch accounting for the
    /// enumeration hot paths that embed a rollback union–find).
    pub fn capacity_bytes(&self) -> u64 {
        ((self.parent.capacity() + self.size.capacity() + self.history.capacity())
            * std::mem::size_of::<u32>()) as u64
    }

    /// A checkpoint token for [`Self::rollback`].
    pub fn snapshot(&self) -> usize {
        self.history.len()
    }

    /// Undoes all unions performed after `snapshot` was taken.
    pub fn rollback(&mut self, snapshot: usize) {
        while self.history.len() > snapshot {
            let small = self.history.pop().expect("history nonempty") as usize;
            let big = self.parent[small] as usize;
            self.parent[small] = small as u32;
            self.size[big] -= self.size[small];
            self.components += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_and_find() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(VertexId(0), VertexId(1)));
        assert!(uf.union(VertexId(1), VertexId(2)));
        assert!(!uf.union(VertexId(0), VertexId(2)), "already joined");
        assert!(uf.same(VertexId(0), VertexId(2)));
        assert!(!uf.same(VertexId(0), VertexId(3)));
        assert_eq!(uf.num_components(), 3);
    }

    #[test]
    fn rollback_restores_state() {
        let mut uf = UnionFind::new(6);
        uf.union(VertexId(0), VertexId(1));
        let snap = uf.snapshot();
        uf.union(VertexId(2), VertexId(3));
        uf.union(VertexId(0), VertexId(2));
        assert!(uf.same(VertexId(1), VertexId(3)));
        uf.rollback(snap);
        assert!(
            uf.same(VertexId(0), VertexId(1)),
            "pre-snapshot union survives"
        );
        assert!(!uf.same(VertexId(2), VertexId(3)));
        assert!(!uf.same(VertexId(0), VertexId(2)));
        assert_eq!(uf.num_components(), 5);
    }

    #[test]
    fn nested_rollbacks() {
        let mut uf = UnionFind::new(4);
        let s0 = uf.snapshot();
        uf.union(VertexId(0), VertexId(1));
        let s1 = uf.snapshot();
        uf.union(VertexId(2), VertexId(3));
        uf.rollback(s1);
        assert!(!uf.same(VertexId(2), VertexId(3)));
        uf.rollback(s0);
        assert!(!uf.same(VertexId(0), VertexId(1)));
        assert_eq!(uf.num_components(), 4);
    }

    #[test]
    fn sizes_accumulate() {
        let mut uf = UnionFind::new(8);
        for i in 0..7 {
            uf.union(VertexId(i), VertexId(i + 1));
        }
        assert_eq!(uf.num_components(), 1);
        let root = uf.find(VertexId(0));
        assert_eq!(uf.size[root.index()], 8);
    }
}
