//! Directed multigraphs with dense arc ids.
//!
//! Used by the §3 path enumerator (which treats undirected graphs by
//! doubling every edge into two opposite arcs) and by the §5.2 directed
//! Steiner tree enumerator.

use crate::ids::{ArcId, EdgeId, VertexId};
use crate::undirected::UndirectedGraph;
use crate::{GraphError, Result};

/// Outcome of [`DiGraph::remove_arc`]: the endpoints that were removed,
/// plus the id reassignment (if any) the dense-id invariant forced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RemovedArc {
    /// `(tail, head)` of the arc that was removed.
    pub endpoints: (VertexId, VertexId),
    /// When the removed arc was not the last one, the previous last arc
    /// takes over the freed id: `(old_id, tail, head)` of that relocated arc.
    pub moved: Option<(ArcId, VertexId, VertexId)>,
}

/// A directed multigraph stored as out/in adjacency lists plus an endpoint
/// table indexed by arc id.
///
/// Invariants: no self-loops; arc ids are dense `0..num_arcs()`; adjacency
/// lists are sorted by arc id ([`Self::add_arc`] appends the largest id;
/// [`Self::remove_arc`] repositions the renumbered arc), so the `≺_v`
/// out-arc order is a pure function of the arc id assignment.
#[derive(Clone, Debug, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DiGraph {
    endpoints: Vec<(VertexId, VertexId)>,
    out_adj: Vec<Vec<(VertexId, ArcId)>>,
    in_adj: Vec<Vec<(VertexId, ArcId)>>,
}

impl DiGraph {
    /// Creates a digraph with `n` isolated vertices.
    pub fn new(n: usize) -> Self {
        DiGraph {
            endpoints: Vec::new(),
            out_adj: vec![Vec::new(); n],
            in_adj: vec![Vec::new(); n],
        }
    }

    /// Creates a digraph with `n` isolated vertices, reserving room for `m` arcs.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        DiGraph {
            endpoints: Vec::with_capacity(m),
            out_adj: vec![Vec::new(); n],
            in_adj: vec![Vec::new(); n],
        }
    }

    /// Builds a digraph from `(tail, head)` pairs. Arc ids follow input order.
    pub fn from_arcs(n: usize, arcs: &[(usize, usize)]) -> Result<Self> {
        let mut d = DiGraph::with_capacity(n, arcs.len());
        for &(u, v) in arcs {
            d.add_arc_indices(u, v)?;
        }
        Ok(d)
    }

    /// Adds the arc `(tail, head)` and returns its id. Rejects self-loops
    /// and out-of-range endpoints. Parallel arcs are allowed.
    pub fn add_arc(&mut self, tail: VertexId, head: VertexId) -> Result<ArcId> {
        self.add_arc_indices(tail.index(), head.index())
    }

    /// As [`Self::add_arc`], taking raw indices.
    pub fn add_arc_indices(&mut self, tail: usize, head: usize) -> Result<ArcId> {
        let n = self.num_vertices();
        if tail >= n {
            return Err(GraphError::VertexOutOfRange {
                vertex: tail,
                num_vertices: n,
            });
        }
        if head >= n {
            return Err(GraphError::VertexOutOfRange {
                vertex: head,
                num_vertices: n,
            });
        }
        if tail == head {
            return Err(GraphError::SelfLoop { vertex: tail });
        }
        let a = ArcId::new(self.endpoints.len());
        let (tail, head) = (VertexId::new(tail), VertexId::new(head));
        self.endpoints.push((tail, head));
        self.out_adj[tail.index()].push((head, a));
        self.in_adj[head.index()].push((tail, a));
        Ok(a)
    }

    /// Appends an isolated vertex and returns its id.
    pub fn add_vertex(&mut self) -> VertexId {
        self.out_adj.push(Vec::new());
        self.in_adj.push(Vec::new());
        VertexId::new(self.out_adj.len() - 1)
    }

    /// Removes arc `a`, keeping arc ids dense: the arc with the largest id
    /// takes over the freed id (`swap_remove` semantics), and its adjacency
    /// entries are repositioned so lists stay sorted by arc id.
    ///
    /// Returns the removed endpoints plus the renumbering performed, so
    /// delta-aware consumers can mirror the id reassignment.
    pub fn remove_arc(&mut self, a: ArcId) -> Result<RemovedArc> {
        let m = self.num_arcs();
        if a.index() >= m {
            return Err(GraphError::EdgeOutOfRange {
                edge: a.index(),
                num_edges: m,
            });
        }
        let (tail, head) = self.endpoints[a.index()];
        Self::drop_adj_entry(&mut self.out_adj[tail.index()], a);
        Self::drop_adj_entry(&mut self.in_adj[head.index()], a);
        let last = ArcId::new(m - 1);
        self.endpoints.swap_remove(a.index());
        let moved = if a != last {
            let (t, h) = self.endpoints[a.index()];
            Self::renumber_adj_entry(&mut self.out_adj[t.index()], last, a);
            Self::renumber_adj_entry(&mut self.in_adj[h.index()], last, a);
            Some((last, t, h))
        } else {
            None
        };
        Ok(RemovedArc {
            endpoints: (tail, head),
            moved,
        })
    }

    /// Removes the entry for `a` from one adjacency list, preserving the
    /// sorted-by-arc-id order of the remaining entries.
    fn drop_adj_entry(list: &mut Vec<(VertexId, ArcId)>, a: ArcId) {
        let pos = list
            .binary_search_by_key(&a, |&(_, id)| id)
            .expect("arc is present in its endpoint's adjacency");
        list.remove(pos);
    }

    /// Rewrites the entry for `old` (the largest id in the list) to carry
    /// id `new`, re-inserting it at its sorted position.
    fn renumber_adj_entry(list: &mut Vec<(VertexId, ArcId)>, old: ArcId, new: ArcId) {
        let pos = list
            .binary_search_by_key(&old, |&(_, id)| id)
            .expect("renumbered arc is present in its endpoint's adjacency");
        let (nbr, _) = list.remove(pos);
        let insert_at = list
            .binary_search_by_key(&new, |&(_, id)| id)
            .expect_err("freed id was just removed from this list");
        list.insert(insert_at, (nbr, new));
    }

    /// Number of vertices `n`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.out_adj.len()
    }

    /// Number of arcs `m`.
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.endpoints.len()
    }

    /// `(tail, head)` of arc `a`.
    #[inline]
    pub fn arc(&self, a: ArcId) -> (VertexId, VertexId) {
        self.endpoints[a.index()]
    }

    /// Tail (source endpoint) of arc `a`.
    #[inline]
    pub fn tail(&self, a: ArcId) -> VertexId {
        self.endpoints[a.index()].0
    }

    /// Head (target endpoint) of arc `a`.
    #[inline]
    pub fn head(&self, a: ArcId) -> VertexId {
        self.endpoints[a.index()].1
    }

    /// Iterates over `(head, arc)` pairs leaving `v`, in arc insertion order.
    ///
    /// This order is the total order `≺_v` on outgoing arcs that the paper's
    /// `F-STP` subroutine requires (§3).
    #[inline]
    pub fn out_neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, ArcId)> + '_ {
        self.out_adj[v.index()].iter().copied()
    }

    /// Iterates over `(tail, arc)` pairs entering `v`.
    #[inline]
    pub fn in_neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, ArcId)> + '_ {
        self.in_adj[v.index()].iter().copied()
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.out_adj[v.index()].len()
    }

    /// The out-adjacency list of `v` as a slice, for indexed access in
    /// iterative traversals.
    #[inline]
    pub fn out_adjacency(&self, v: VertexId) -> &[(VertexId, ArcId)] {
        &self.out_adj[v.index()]
    }

    /// The in-adjacency list of `v` as a slice.
    #[inline]
    pub fn in_adjacency(&self, v: VertexId) -> &[(VertexId, ArcId)] {
        &self.in_adj[v.index()]
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.in_adj[v.index()].len()
    }

    /// Iterates over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        (0..self.num_vertices()).map(VertexId::new)
    }

    /// Iterates over all arc ids.
    pub fn arcs(&self) -> impl Iterator<Item = ArcId> {
        (0..self.num_arcs()).map(ArcId::new)
    }
}

/// A digraph obtained from an undirected graph by replacing every edge `e`
/// with the two arcs `2e` (forward) and `2e + 1` (backward).
///
/// This is exactly the reduction the paper uses to run the directed path
/// enumerator on undirected inputs (Theorem 12). The arc/edge id mapping is
/// arithmetic, so no tables are needed.
#[derive(Clone, Debug)]
pub struct DoubledDigraph {
    /// The doubled digraph.
    pub digraph: DiGraph,
}

impl DoubledDigraph {
    /// Doubles an undirected multigraph.
    pub fn new(g: &UndirectedGraph) -> Self {
        let mut d = DiGraph::with_capacity(g.num_vertices(), 2 * g.num_edges());
        for e in g.edges() {
            let (u, v) = g.endpoints(e);
            let f = d.add_arc(u, v).expect("no self-loops in source graph");
            let b = d.add_arc(v, u).expect("no self-loops in source graph");
            debug_assert_eq!(f.index(), 2 * e.index());
            debug_assert_eq!(b.index(), 2 * e.index() + 1);
        }
        DoubledDigraph { digraph: d }
    }

    /// The undirected edge an arc came from.
    #[inline]
    pub fn arc_to_edge(&self, a: ArcId) -> EdgeId {
        EdgeId::new(a.index() / 2)
    }

    /// The forward arc of an undirected edge.
    #[inline]
    pub fn forward_arc(&self, e: EdgeId) -> ArcId {
        ArcId::new(2 * e.index())
    }

    /// The backward arc of an undirected edge.
    #[inline]
    pub fn backward_arc(&self, e: EdgeId) -> ArcId {
        ArcId::new(2 * e.index() + 1)
    }

    /// The arc opposite to `a` (same undirected edge, other direction).
    #[inline]
    pub fn reverse_arc(&self, a: ArcId) -> ArcId {
        ArcId::new(a.index() ^ 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_queries_arcs() {
        let d = DiGraph::from_arcs(3, &[(0, 1), (1, 2), (2, 0), (0, 1)]).unwrap();
        assert_eq!(d.num_arcs(), 4);
        assert_eq!(d.out_degree(VertexId(0)), 2);
        assert_eq!(d.in_degree(VertexId(1)), 2);
        assert_eq!(d.arc(ArcId(2)), (VertexId(2), VertexId(0)));
        assert_eq!(d.tail(ArcId(1)), VertexId(1));
        assert_eq!(d.head(ArcId(1)), VertexId(2));
    }

    #[test]
    fn rejects_self_loop_and_out_of_range() {
        let mut d = DiGraph::new(2);
        assert!(matches!(
            d.add_arc_indices(0, 0),
            Err(GraphError::SelfLoop { .. })
        ));
        assert!(matches!(
            d.add_arc_indices(0, 9),
            Err(GraphError::VertexOutOfRange { .. })
        ));
    }

    #[test]
    fn doubling_maps_arcs_to_edges() {
        let g = UndirectedGraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let dd = DoubledDigraph::new(&g);
        assert_eq!(dd.digraph.num_arcs(), 4);
        assert_eq!(dd.arc_to_edge(ArcId(0)), EdgeId(0));
        assert_eq!(dd.arc_to_edge(ArcId(1)), EdgeId(0));
        assert_eq!(dd.arc_to_edge(ArcId(3)), EdgeId(1));
        assert_eq!(dd.forward_arc(EdgeId(1)), ArcId(2));
        assert_eq!(dd.backward_arc(EdgeId(1)), ArcId(3));
        assert_eq!(dd.reverse_arc(ArcId(2)), ArcId(3));
        assert_eq!(dd.reverse_arc(ArcId(3)), ArcId(2));
        // Directions agree with the source edge.
        assert_eq!(dd.digraph.arc(ArcId(0)), (VertexId(0), VertexId(1)));
        assert_eq!(dd.digraph.arc(ArcId(1)), (VertexId(1), VertexId(0)));
    }

    #[test]
    fn out_neighbor_order_is_insertion_order() {
        let d = DiGraph::from_arcs(4, &[(0, 3), (0, 1), (0, 2)]).unwrap();
        let heads: Vec<VertexId> = d.out_neighbors(VertexId(0)).map(|(h, _)| h).collect();
        assert_eq!(heads, vec![VertexId(3), VertexId(1), VertexId(2)]);
    }
}
