//! Property-based tests for the graph substrate.

use proptest::prelude::*;
use steiner_graph::bridges::{bridges, bridges_naive};
use steiner_graph::connectivity::connected_components;
use steiner_graph::contraction::contract_edge_set;
use steiner_graph::io::{parse_edge_list, write_edge_list};
use steiner_graph::spanning::{grow_spanning_tree, prune_leaves};
use steiner_graph::{EdgeId, UndirectedGraph, VertexId};

/// Arbitrary multigraph: n ∈ [1, 10], up to 20 random edges (parallel
/// edges allowed).
fn multigraph() -> impl Strategy<Value = UndirectedGraph> {
    (1usize..=10).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..20).prop_map(move |pairs| {
            let mut g = UndirectedGraph::new(n);
            for (u, v) in pairs {
                if u != v {
                    g.add_edge_indices(u, v).unwrap();
                }
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bridges_match_naive(g in multigraph()) {
        prop_assert_eq!(bridges(&g, None), bridges_naive(&g, None));
    }

    #[test]
    fn bridges_match_naive_masked(g in multigraph(), mask_bits in any::<u16>()) {
        let n = g.num_vertices();
        let mask: Vec<bool> = (0..n).map(|i| mask_bits & (1 << i) != 0).collect();
        prop_assert_eq!(bridges(&g, Some(&mask)), bridges_naive(&g, Some(&mask)));
    }

    #[test]
    fn removing_a_bridge_increases_components(g in multigraph()) {
        let base = connected_components(&g, None).count;
        for (e, is_bridge) in bridges(&g, None).into_iter().enumerate() {
            if !is_bridge {
                continue;
            }
            // Rebuild without edge e and recount.
            let mut h = UndirectedGraph::new(g.num_vertices());
            for e2 in g.edges() {
                if e2.index() != e {
                    let (u, v) = g.endpoints(e2);
                    h.add_edge(u, v).unwrap();
                }
            }
            prop_assert_eq!(connected_components(&h, None).count, base + 1);
        }
    }

    #[test]
    fn contraction_preserves_component_count(g in multigraph(), pick in any::<u32>()) {
        // Contracting any edge subset never changes the number of
        // connected components (self-loops dropped, classes merged).
        let m = g.num_edges();
        let subset: Vec<EdgeId> =
            (0..m).filter(|i| pick & (1 << (i % 32)) != 0).map(EdgeId::new).collect();
        let c = contract_edge_set(&g, &subset);
        prop_assert_eq!(
            connected_components(&g, None).count,
            connected_components(&c.graph, None).count
        );
        // Id translation stays within range and preserves endpoints.
        for e in c.graph.edges() {
            let orig = c.orig_edge[e.index()];
            let (u, v) = g.endpoints(orig);
            let (cu, cv) = c.graph.endpoints(e);
            let (iu, iv) = (c.image(u), c.image(v));
            prop_assert!((cu == iu && cv == iv) || (cu == iv && cv == iu));
        }
    }

    #[test]
    fn spanning_tree_spans_component(g in multigraph(), seed in 0usize..10) {
        let n = g.num_vertices();
        let seed = VertexId::new(seed % n);
        let grown = grow_spanning_tree(&g, &[seed], &[], None);
        // Edge count = reachable vertices - 1.
        let reached = grown.forest.visited.iter().filter(|&&b| b).count();
        prop_assert_eq!(grown.edges.len(), reached - 1);
        // It is acyclic and connected on its span (a tree).
        let verts = g.edge_set_vertices(&grown.edges);
        if !grown.edges.is_empty() {
            prop_assert_eq!(verts.len(), grown.edges.len() + 1);
        }
    }

    #[test]
    fn pruned_leaves_all_satisfy_keep(g in multigraph(), keep_bits in any::<u16>(), seed in 0usize..10) {
        let n = g.num_vertices();
        let seed = VertexId::new(seed % n);
        let grown = grow_spanning_tree(&g, &[seed], &[], None);
        let keep = move |v: VertexId| keep_bits & (1 << (v.index() % 16)) != 0;
        let pruned = prune_leaves(&g, &grown.edges, keep);
        let deg = g.degrees_in_edge_set(&pruned);
        for v in g.vertices() {
            if deg[v.index()] == 1 {
                prop_assert!(keep(v), "leaf {v} survived pruning without keep");
            }
        }
        // Pruning is a subset operation.
        prop_assert!(pruned.iter().all(|e| grown.edges.contains(e)));
    }

    #[test]
    fn io_round_trip(g in multigraph()) {
        let text = write_edge_list(&g);
        let g2 = parse_edge_list(&text).unwrap();
        prop_assert_eq!(g.num_vertices(), g2.num_vertices());
        prop_assert_eq!(g.num_edges(), g2.num_edges());
        for e in g.edges() {
            prop_assert_eq!(g.endpoints(e), g2.endpoints(e));
        }
    }

    #[test]
    fn line_graph_is_claw_free(g in multigraph()) {
        let lg = steiner_graph::line_graph::line_graph(&g);
        prop_assert!(steiner_graph::clawfree::is_claw_free(&lg));
    }
}
