//! Hardness constructions of §6 of *Linear-Delay Enumeration for Minimal
//! Steiner Problems* (PODS 2022), made executable.
//!
//! * [`hypergraph`] — hypergraphs and generators;
//! * [`transversal`] — minimal hypergraph transversal (hitting set)
//!   enumeration: an MMCS-style branch-and-bound with critical-edge
//!   pruning, plus a brute-force oracle. This is the problem Group
//!   Steiner Tree Enumeration is at least as hard as (Theorem 38), and
//!   whose output-polynomial solvability is a famous open problem \[13\];
//! * [`group_steiner`] — minimal group Steiner trees: a brute-force
//!   enumerator for small graphs and the **Theorem 38 star-graph
//!   reduction** in both directions;
//! * [`internal`] — internal Steiner trees (Definition 5) and the
//!   **Theorem 37 equivalence** with `s`-`t` Hamiltonian paths
//!   (`W = V ∖ {s, t}`), with a bitmask-DP Hamiltonian path solver.

#![deny(unsafe_code)]

pub mod group_steiner;
pub mod hypergraph;
pub mod internal;
pub mod transversal;
