//! Internal Steiner trees and the Theorem 37 reduction.
//!
//! An *internal Steiner tree* of `(G, W)` is a Steiner tree in which every
//! terminal is an internal (non-leaf) vertex — note that solutions are not
//! required to be minimal (Definition 5). With `W = V ∖ {s, t}` an
//! internal Steiner tree exists iff `G` has an `s`-`t` Hamiltonian path
//! (any tree whose leaves are confined to `{s, t}` *is* such a path), so
//! even deciding emptiness of the enumeration is NP-hard (Theorem 37) —
//! no incremental-polynomial enumeration exists unless P = NP.

use steiner_core::verify::is_tree;
use steiner_graph::{EdgeId, UndirectedGraph, VertexId};

/// Whether `g` has a Hamiltonian path from `s` to `t` (bitmask DP over
/// vertex subsets; `n ≤ 24`).
pub fn hamiltonian_st_path_exists(g: &UndirectedGraph, s: VertexId, t: VertexId) -> bool {
    let n = g.num_vertices();
    assert!(n <= 24, "bitmask DP limited to 24 vertices");
    if n == 0 {
        return false;
    }
    if n == 1 {
        return s == t;
    }
    if s == t {
        return false; // a Hamiltonian path with n ≥ 2 has distinct ends
    }
    // Adjacency bitmasks (parallel edges collapse).
    let mut adj = vec![0u32; n];
    for e in g.edges() {
        let (u, v) = g.endpoints(e);
        adj[u.index()] |= 1 << v.index();
        adj[v.index()] |= 1 << u.index();
    }
    let full: u32 = if n == 32 { u32::MAX } else { (1 << n) - 1 };
    // dp[mask] = bitset of possible current endpoints of a simple path
    // starting at s and visiting exactly `mask`.
    let mut dp = vec![0u32; 1 << n];
    dp[1 << s.index()] = 1 << s.index();
    for mask in 0..=full {
        let ends = dp[mask as usize];
        if ends == 0 {
            continue;
        }
        let mut rest = ends;
        while rest != 0 {
            let v = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            let mut nexts = adj[v] & !mask;
            while nexts != 0 {
                let u = nexts.trailing_zeros() as usize;
                nexts &= nexts - 1;
                dp[(mask | (1 << u)) as usize] |= 1 << u;
            }
        }
    }
    dp[full as usize] & (1 << t.index()) != 0
}

/// Whether an internal Steiner tree of `(g, terminals)` exists, by brute
/// force over edge subsets (`m ≤ 20`): a tree containing all terminals
/// with every terminal of degree ≥ 2.
pub fn internal_steiner_tree_exists_brute(g: &UndirectedGraph, terminals: &[VertexId]) -> bool {
    let m = g.num_edges();
    assert!(m <= 20, "brute force limited to 20 edges");
    for mask in 1u32..(1 << m) {
        let edges: Vec<EdgeId> = (0..m)
            .filter(|i| mask & (1 << i) != 0)
            .map(EdgeId::new)
            .collect();
        if !is_tree(g, &edges) {
            continue;
        }
        let deg = g.degrees_in_edge_set(&edges);
        if terminals.iter().all(|w| deg[w.index()] >= 2) {
            return true;
        }
    }
    false
}

/// The Theorem 37 reduction: deciding whether `(g, V ∖ {s, t})` has an
/// internal Steiner tree, answered through the Hamiltonian-path DP.
pub fn internal_steiner_full_terminals_exists(
    g: &UndirectedGraph,
    s: VertexId,
    t: VertexId,
) -> bool {
    hamiltonian_st_path_exists(g, s, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use steiner_graph::generators;

    #[test]
    fn path_graph_has_end_to_end_hamiltonian_path() {
        let g = generators::path(5);
        assert!(hamiltonian_st_path_exists(&g, VertexId(0), VertexId(4)));
        assert!(!hamiltonian_st_path_exists(&g, VertexId(0), VertexId(2)));
    }

    #[test]
    fn complete_graph_all_pairs() {
        let g = generators::complete(5);
        for s in 0..5 {
            for t in 0..5 {
                if s != t {
                    assert!(hamiltonian_st_path_exists(
                        &g,
                        VertexId::new(s),
                        VertexId::new(t)
                    ));
                }
            }
        }
    }

    #[test]
    fn star_has_no_hamiltonian_path() {
        let g = generators::star(3);
        assert!(!hamiltonian_st_path_exists(&g, VertexId(1), VertexId(2)));
    }

    #[test]
    fn internal_tree_needs_terminal_degree_two() {
        // Path 0-1-2: terminal {1} internal works; terminal {0} cannot be
        // internal in any subtree of a path's end.
        let g = generators::path(3);
        assert!(internal_steiner_tree_exists_brute(&g, &[VertexId(1)]));
        assert!(!internal_steiner_tree_exists_brute(&g, &[VertexId(0)]));
    }

    /// The executable content of Theorem 37: with W = V ∖ {s, t}, internal
    /// Steiner tree existence coincides with s-t Hamiltonian path
    /// existence, on every tested graph.
    #[test]
    fn theorem37_equivalence_on_random_graphs() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x37_37);
        for case in 0..40 {
            let n = 3 + case % 4;
            let max_m = (n * (n - 1) / 2).min(18);
            let m = rng.gen_range(n - 1..=max_m);
            let g = generators::random_connected_graph(n, m, &mut rng);
            if g.num_edges() > 18 {
                continue;
            }
            let s = VertexId::new(rng.gen_range(0..n));
            let t = VertexId::new(rng.gen_range(0..n));
            if s == t {
                continue;
            }
            let w: Vec<VertexId> = g.vertices().filter(|&v| v != s && v != t).collect();
            assert_eq!(
                internal_steiner_tree_exists_brute(&g, &w),
                hamiltonian_st_path_exists(&g, s, t),
                "graph {g:?} s={s} t={t}"
            );
        }
    }

    #[test]
    fn theorem37_on_structured_graphs() {
        for (g, s, t, expected) in [
            (generators::cycle(6), VertexId(0), VertexId(1), true),
            (generators::cycle(6), VertexId(0), VertexId(3), false),
            (generators::grid(2, 3), VertexId(0), VertexId(5), true),
        ] {
            let w: Vec<VertexId> = g.vertices().filter(|&v| v != s && v != t).collect();
            assert_eq!(internal_steiner_tree_exists_brute(&g, &w), expected);
            assert_eq!(internal_steiner_full_terminals_exists(&g, s, t), expected);
        }
    }
}
