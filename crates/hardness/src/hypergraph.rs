//! Hypergraphs for the transversal-enumeration hardness results.

use rand::Rng;

/// A hypergraph over vertices `0..n`: a list of hyperedges, each a sorted
/// set of vertex indices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hypergraph {
    /// Number of vertices.
    pub n: usize,
    /// Hyperedges (each sorted and deduplicated; empty edges are rejected).
    pub edges: Vec<Vec<usize>>,
}

impl Hypergraph {
    /// Builds a hypergraph, normalizing each edge (sort + dedup).
    ///
    /// Panics on an empty edge (no transversal can hit it) or an
    /// out-of-range vertex.
    pub fn new(n: usize, edges: Vec<Vec<usize>>) -> Self {
        let mut normalized = Vec::with_capacity(edges.len());
        for mut e in edges {
            e.sort_unstable();
            e.dedup();
            assert!(!e.is_empty(), "empty hyperedge has no transversal");
            assert!(e.iter().all(|&v| v < n), "hyperedge vertex out of range");
            normalized.push(e);
        }
        Hypergraph {
            n,
            edges: normalized,
        }
    }

    /// Whether `set` (a sorted or unsorted vertex list) hits every edge.
    pub fn is_transversal(&self, set: &[usize]) -> bool {
        let mut mask = vec![false; self.n];
        for &v in set {
            mask[v] = true;
        }
        self.edges.iter().all(|e| e.iter().any(|&v| mask[v]))
    }

    /// Whether `set` is a minimal transversal: hits every edge, and every
    /// member has a *critical* edge (an edge only it hits).
    pub fn is_minimal_transversal(&self, set: &[usize]) -> bool {
        if !self.is_transversal(set) {
            return false;
        }
        let mut mask = vec![false; self.n];
        for &v in set {
            mask[v] = true;
        }
        set.iter().all(|&v| {
            self.edges
                .iter()
                .any(|e| e.iter().all(|&u| u == v || !mask[u]) && e.contains(&v))
        })
    }

    /// A random hypergraph with `m` edges of sizes in `2..=max_edge`.
    pub fn random<R: Rng>(n: usize, m: usize, max_edge: usize, rng: &mut R) -> Self {
        assert!(n >= 1 && max_edge >= 1);
        let mut edges = Vec::with_capacity(m);
        for _ in 0..m {
            let k = rng.gen_range(1..=max_edge.min(n));
            let mut e: Vec<usize> = (0..n).collect();
            for i in 0..k {
                let j = rng.gen_range(i..n);
                e.swap(i, j);
            }
            e.truncate(k);
            edges.push(e);
        }
        Hypergraph::new(n, edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn transversal_checks() {
        let h = Hypergraph::new(4, vec![vec![0, 1], vec![1, 2], vec![2, 3]]);
        assert!(h.is_transversal(&[1, 2]));
        assert!(h.is_minimal_transversal(&[1, 2]));
        assert!(h.is_transversal(&[0, 1, 2]));
        assert!(
            !h.is_minimal_transversal(&[0, 1, 2]),
            "0 has no critical edge"
        );
        assert!(!h.is_transversal(&[0, 3]), "misses edge {{1,2}}");
    }

    #[test]
    fn normalization_sorts_and_dedups() {
        let h = Hypergraph::new(3, vec![vec![2, 0, 2]]);
        assert_eq!(h.edges, vec![vec![0, 2]]);
    }

    #[test]
    #[should_panic(expected = "empty hyperedge")]
    fn empty_edge_rejected() {
        Hypergraph::new(3, vec![vec![]]);
    }

    #[test]
    fn random_hypergraphs_have_valid_edges() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for _ in 0..20 {
            let h = Hypergraph::random(6, 5, 3, &mut rng);
            assert_eq!(h.edges.len(), 5);
            for e in &h.edges {
                assert!(!e.is_empty() && e.len() <= 3);
                assert!(e.windows(2).all(|w| w[0] < w[1]));
            }
        }
    }
}
