//! Minimal hypergraph transversal enumeration.
//!
//! Theorem 38 shows Group Steiner Tree Enumeration is at least as hard as
//! this problem, whose output-polynomial solvability is one of the big
//! open problems in enumeration (best known: quasi-polynomial, Fredman &
//! Khachiyan \[13\]). To make the reduction executable we implement a
//! practical enumerator in the style of Murakami & Uno's MMCS:
//! depth-first search over candidate vertices with *critical-edge*
//! maintenance — every chosen vertex must keep at least one hyperedge it
//! alone hits, which prunes non-minimal branches early and guarantees
//! every emitted set is a minimal transversal, each exactly once.

use crate::hypergraph::Hypergraph;
use std::ops::ControlFlow;

/// Rollback journal entry for one vertex addition.
struct Undo {
    vertex: usize,
    /// Edges whose unique hitter changed from `Some(u)` to shared.
    demoted: Vec<(usize, usize)>, // (edge, previous unique hitter)
    /// Edges that became covered (hits 0 → 1) with `vertex` critical.
    promoted: Vec<usize>,
}

struct Mmcs<'h, 's> {
    h: &'h Hypergraph,
    /// Per-edge count of chosen vertices hitting it.
    hits: Vec<u32>,
    /// For edges with `hits == 1`: the unique hitter.
    unique_hitter: Vec<usize>,
    /// Per-vertex count of edges it critically covers.
    crit_count: Vec<u32>,
    /// Number of chosen vertices whose `crit_count` is zero (must be 0 for
    /// the partial set to stay minimizable).
    violations: usize,
    chosen: Vec<usize>,
    in_chosen: Vec<bool>,
    cand: Vec<bool>,
    uncovered: usize,
    emitted: u64,
    sink: &'s mut dyn FnMut(&[usize]) -> ControlFlow<()>,
}

impl Mmcs<'_, '_> {
    fn add(&mut self, v: usize) -> Undo {
        let mut undo = Undo {
            vertex: v,
            demoted: Vec::new(),
            promoted: Vec::new(),
        };
        self.chosen.push(v);
        self.in_chosen[v] = true;
        for (ei, e) in self.h.edges.iter().enumerate() {
            if !e.contains(&v) {
                continue;
            }
            match self.hits[ei] {
                0 => {
                    self.hits[ei] = 1;
                    self.unique_hitter[ei] = v;
                    self.crit_count[v] += 1;
                    self.uncovered -= 1;
                    undo.promoted.push(ei);
                }
                1 => {
                    let u = self.unique_hitter[ei];
                    self.hits[ei] = 2;
                    self.crit_count[u] -= 1;
                    if self.crit_count[u] == 0 {
                        self.violations += 1;
                    }
                    undo.demoted.push((ei, u));
                }
                _ => {
                    self.hits[ei] += 1;
                }
            }
        }
        undo
    }

    fn remove(&mut self, undo: Undo) {
        let v = undo.vertex;
        for &(ei, u) in undo.demoted.iter().rev() {
            if self.crit_count[u] == 0 {
                self.violations -= 1;
            }
            self.crit_count[u] += 1;
            self.hits[ei] = 1;
            self.unique_hitter[ei] = u;
        }
        for &ei in undo.promoted.iter().rev() {
            self.hits[ei] = 0;
            self.crit_count[v] -= 1;
            self.uncovered += 1;
        }
        // Generic decrement for edges counted with `_ => hits += 1`.
        for (ei, e) in self.h.edges.iter().enumerate() {
            if e.contains(&v) && self.hits[ei] >= 2 && !undo.demoted.iter().any(|&(d, _)| d == ei) {
                self.hits[ei] -= 1;
            }
        }
        debug_assert_eq!(self.chosen.last(), Some(&v));
        self.chosen.pop();
        self.in_chosen[v] = false;
    }

    fn recurse(&mut self) -> ControlFlow<()> {
        if self.uncovered == 0 {
            debug_assert_eq!(self.violations, 0);
            let mut out = self.chosen.clone();
            out.sort_unstable();
            self.emitted += 1;
            return (self.sink)(&out);
        }
        // Choose the uncovered edge with the fewest candidates.
        let mut best: Option<(usize, usize)> = None; // (candidate count, edge)
        for (ei, e) in self.h.edges.iter().enumerate() {
            if self.hits[ei] != 0 {
                continue;
            }
            let c = e.iter().filter(|&&v| self.cand[v]).count();
            if best.is_none_or(|(bc, _)| c < bc) {
                best = Some((c, ei));
            }
        }
        let (_, ei) = best.expect("uncovered > 0 implies an uncovered edge");
        let branch: Vec<usize> = self.h.edges[ei]
            .iter()
            .copied()
            .filter(|&v| self.cand[v])
            .collect();
        if branch.is_empty() {
            return ControlFlow::Continue(()); // dead branch
        }
        // Remove the whole branch set from cand; re-add each vertex after
        // its subtree so later siblings may use it (no-duplicate rule).
        for &v in &branch {
            self.cand[v] = false;
        }
        for &v in &branch {
            let undo = self.add(v);
            let flow = if self.violations == 0 {
                self.recurse()
            } else {
                ControlFlow::Continue(())
            };
            self.remove(undo);
            if flow.is_break() {
                // Restore cand for the unprocessed part before unwinding.
                for &u in &branch {
                    self.cand[u] = true;
                }
                return ControlFlow::Break(());
            }
            self.cand[v] = true;
        }
        ControlFlow::Continue(())
    }
}

/// Enumerates all minimal transversals (minimal hitting sets) of `h`,
/// invoking `sink` with each as a sorted vertex list. Returns the number
/// emitted.
///
/// ```
/// use steiner_hardness::hypergraph::Hypergraph;
/// use steiner_hardness::transversal::enumerate_minimal_transversals;
/// use std::ops::ControlFlow;
///
/// let h = Hypergraph::new(3, vec![vec![0, 1], vec![1, 2]]);
/// let mut sols = Vec::new();
/// enumerate_minimal_transversals(&h, &mut |t| {
///     sols.push(t.to_vec());
///     ControlFlow::Continue(())
/// });
/// sols.sort();
/// assert_eq!(sols, vec![vec![0, 2], vec![1]]);
/// ```
pub fn enumerate_minimal_transversals(
    h: &Hypergraph,
    sink: &mut dyn FnMut(&[usize]) -> ControlFlow<()>,
) -> u64 {
    if h.edges.is_empty() {
        // The empty set is the unique minimal transversal.
        let _ = sink(&[]);
        return 1;
    }
    let m = h.edges.len();
    let mut mmcs = Mmcs {
        h,
        hits: vec![0; m],
        unique_hitter: vec![usize::MAX; m],
        crit_count: vec![0; h.n],
        violations: 0,
        chosen: Vec::new(),
        in_chosen: vec![false; h.n],
        cand: vec![true; h.n],
        uncovered: m,
        emitted: 0,
        sink,
    };
    let _ = mmcs.recurse();
    mmcs.emitted
}

/// Brute-force minimal transversal enumeration (test oracle), n ≤ 20.
pub fn minimal_transversals_brute(h: &Hypergraph) -> std::collections::BTreeSet<Vec<usize>> {
    assert!(h.n <= 20, "brute force limited to 20 vertices");
    let mut out = std::collections::BTreeSet::new();
    for mask in 0..(1u32 << h.n) {
        let set: Vec<usize> = (0..h.n).filter(|i| mask & (1 << i) != 0).collect();
        if h.is_minimal_transversal(&set) {
            out.insert(set);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::collections::BTreeSet;

    fn collect(h: &Hypergraph) -> BTreeSet<Vec<usize>> {
        let mut out = BTreeSet::new();
        enumerate_minimal_transversals(h, &mut |s| {
            assert!(out.insert(s.to_vec()), "duplicate transversal {s:?}");
            ControlFlow::Continue(())
        });
        out
    }

    #[test]
    fn path_hypergraph() {
        let h = Hypergraph::new(4, vec![vec![0, 1], vec![1, 2], vec![2, 3]]);
        let got = collect(&h);
        assert_eq!(got, minimal_transversals_brute(&h));
        let expected: BTreeSet<Vec<usize>> =
            [vec![0, 2], vec![1, 2], vec![1, 3]].into_iter().collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn disjoint_edges_cross_product() {
        let h = Hypergraph::new(6, vec![vec![0, 1], vec![2, 3], vec![4, 5]]);
        let got = collect(&h);
        assert_eq!(got.len(), 8, "2 × 2 × 2 choices");
        assert_eq!(got, minimal_transversals_brute(&h));
    }

    #[test]
    fn empty_hypergraph_has_empty_transversal() {
        let h = Hypergraph::new(3, vec![]);
        let got = collect(&h);
        assert_eq!(got.len(), 1);
        assert!(got.contains(&Vec::new()));
    }

    #[test]
    fn single_vertex_edges_force_inclusion() {
        let h = Hypergraph::new(3, vec![vec![0], vec![1, 2]]);
        let got = collect(&h);
        let expected: BTreeSet<Vec<usize>> = [vec![0, 1], vec![0, 2]].into_iter().collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn matches_brute_force_on_random_hypergraphs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x7ab5);
        for case in 0..60 {
            let n = 3 + case % 6;
            let m = 1 + case % 5;
            let h = Hypergraph::random(n, m, 4, &mut rng);
            assert_eq!(
                collect(&h),
                minimal_transversals_brute(&h),
                "hypergraph {h:?}"
            );
        }
    }

    #[test]
    fn early_break_stops() {
        let h = Hypergraph::new(8, vec![vec![0, 1], vec![2, 3], vec![4, 5], vec![6, 7]]);
        let mut count = 0;
        enumerate_minimal_transversals(&h, &mut |_| {
            count += 1;
            if count == 3 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        assert_eq!(count, 3);
    }
}
