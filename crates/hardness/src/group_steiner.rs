//! Minimal group Steiner trees and the Theorem 38 reduction.
//!
//! A *group Steiner tree* of `(G, {W₁, …, W_s})` is a tree intersecting
//! every group; minimality is subgraph-minimality. Theorem 38: on a star
//! with a leaf `ℓ_u` per hypergraph vertex `u` and a group per hyperedge,
//! the minimal group Steiner trees are exactly `G[X ∪ {r}]` for the
//! minimal transversals `X` — so an output-polynomial group Steiner
//! enumerator would solve minimal hypergraph transversal enumeration in
//! output-polynomial time, a long-open problem. Both directions of the
//! reduction are implemented and tested here.

use crate::hypergraph::Hypergraph;
use crate::transversal::enumerate_minimal_transversals;
use std::collections::BTreeSet;
use std::ops::ControlFlow;
use steiner_graph::{EdgeId, UndirectedGraph, VertexId};

/// A group Steiner tree reported as its (sorted) vertex and edge sets.
/// Single-vertex trees have an empty edge set, so vertices are needed to
/// identify the solution.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct GroupSteinerTree {
    /// The tree's vertices, sorted.
    pub vertices: Vec<VertexId>,
    /// The tree's edges, sorted.
    pub edges: Vec<EdgeId>,
}

fn tree_hits_all_groups(vertices: &[VertexId], groups: &[Vec<VertexId>]) -> bool {
    groups
        .iter()
        .all(|g| g.iter().any(|w| vertices.binary_search(w).is_ok()))
}

/// Brute-force enumeration of all minimal group Steiner trees of
/// `(g, groups)` (test oracle; `m ≤ 20`).
///
/// A tree is minimal iff removing any leaf (with its edge) breaks some
/// group — group coverage is monotone in the vertex set, so checking the
/// maximal proper subtrees suffices.
pub fn minimal_group_steiner_trees_brute(
    g: &UndirectedGraph,
    groups: &[Vec<VertexId>],
) -> BTreeSet<GroupSteinerTree> {
    let m = g.num_edges();
    assert!(m <= 20, "brute force limited to 20 edges");
    let mut out = BTreeSet::new();
    // Single-vertex trees.
    for v in g.vertices() {
        let vs = vec![v];
        if tree_hits_all_groups(&vs, groups) {
            out.insert(GroupSteinerTree {
                vertices: vs,
                edges: Vec::new(),
            });
        }
    }
    // Trees with at least one edge.
    for mask in 1u32..(1 << m) {
        let edges: Vec<EdgeId> = (0..m)
            .filter(|i| mask & (1 << i) != 0)
            .map(EdgeId::new)
            .collect();
        if !steiner_core::verify::is_tree(g, &edges) {
            continue;
        }
        let vertices = g.edge_set_vertices(&edges);
        if !tree_hits_all_groups(&vertices, groups) {
            continue;
        }
        // Minimality: every leaf removal must break coverage.
        let deg = g.degrees_in_edge_set(&edges);
        let minimal = vertices.iter().all(|&v| {
            if deg[v.index()] != 1 {
                return true;
            }
            let reduced: Vec<VertexId> = vertices.iter().copied().filter(|&u| u != v).collect();
            !tree_hits_all_groups(&reduced, groups)
        });
        if minimal {
            out.insert(GroupSteinerTree { vertices, edges });
        }
    }
    out
}

/// The Theorem 38 instance: a star with center `r = 0` and one leaf
/// `ℓ_u = u + 1` per hypergraph vertex, with one group per hyperedge.
pub struct StarInstance {
    /// The star graph.
    pub graph: UndirectedGraph,
    /// One group per hyperedge: the leaves of that edge's vertices.
    pub groups: Vec<Vec<VertexId>>,
}

impl StarInstance {
    /// Builds the reduction instance from a hypergraph.
    pub fn new(h: &Hypergraph) -> Self {
        let graph = steiner_graph::generators::star(h.n);
        let groups = h
            .edges
            .iter()
            .map(|e| e.iter().map(|&u| VertexId::new(u + 1)).collect())
            .collect();
        StarInstance { graph, groups }
    }

    /// The leaf vertex representing hypergraph vertex `u`.
    pub fn leaf(&self, u: usize) -> VertexId {
        VertexId::new(u + 1)
    }

    /// Maps a transversal `X` to its group Steiner tree `G[X ∪ {r}]`.
    /// Singleton transversals map to single-leaf trees (no center needed).
    pub fn transversal_to_tree(&self, x: &[usize]) -> GroupSteinerTree {
        if x.len() == 1 {
            return GroupSteinerTree {
                vertices: vec![self.leaf(x[0])],
                edges: Vec::new(),
            };
        }
        let mut vertices: Vec<VertexId> = x.iter().map(|&u| self.leaf(u)).collect();
        vertices.push(VertexId(0));
        vertices.sort_unstable();
        // Star edge ids: edge u joins the center to leaf u + 1.
        let mut edges: Vec<EdgeId> = x.iter().map(|&u| EdgeId::new(u)).collect();
        edges.sort_unstable();
        GroupSteinerTree { vertices, edges }
    }

    /// Maps a group Steiner tree of the star back to a vertex set of the
    /// hypergraph.
    pub fn tree_to_transversal(&self, t: &GroupSteinerTree) -> Vec<usize> {
        t.vertices
            .iter()
            .filter(|v| v.index() >= 1)
            .map(|v| v.index() - 1)
            .collect()
    }
}

/// Solves Minimal Transversal Enumeration *through* group Steiner
/// enumeration on the star instance (the hardness direction, executed):
/// enumerate minimal group Steiner trees by brute force and map them back.
pub fn minimal_transversals_via_group_steiner(h: &Hypergraph) -> BTreeSet<Vec<usize>> {
    let inst = StarInstance::new(h);
    minimal_group_steiner_trees_brute(&inst.graph, &inst.groups)
        .iter()
        .map(|t| inst.tree_to_transversal(t))
        .collect()
}

/// Solves group Steiner enumeration on star instances *through* the
/// transversal enumerator (the easy direction of the equivalence).
pub fn star_group_steiner_via_transversals(h: &Hypergraph) -> BTreeSet<GroupSteinerTree> {
    let inst = StarInstance::new(h);
    let mut out = BTreeSet::new();
    enumerate_minimal_transversals(h, &mut |x| {
        out.insert(inst.transversal_to_tree(x));
        ControlFlow::Continue(())
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transversal::minimal_transversals_brute;
    use rand::SeedableRng;

    #[test]
    fn theorem38_equivalence_on_a_path_hypergraph() {
        let h = Hypergraph::new(4, vec![vec![0, 1], vec![1, 2], vec![2, 3]]);
        assert_eq!(
            minimal_transversals_via_group_steiner(&h),
            minimal_transversals_brute(&h)
        );
    }

    #[test]
    fn theorem38_equivalence_both_directions_random() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x38_38);
        for case in 0..30 {
            let n = 2 + case % 5;
            let m = 1 + case % 4;
            let h = Hypergraph::random(n, m, 3, &mut rng);
            let via_gst = minimal_transversals_via_group_steiner(&h);
            let brute = minimal_transversals_brute(&h);
            assert_eq!(via_gst, brute, "hypergraph {h:?}");
            // And the other direction: transversal enumerator solves the
            // star group Steiner instance.
            let inst = StarInstance::new(&h);
            let gst_direct = minimal_group_steiner_trees_brute(&inst.graph, &inst.groups);
            let gst_via_tr = star_group_steiner_via_transversals(&h);
            assert_eq!(gst_direct, gst_via_tr, "hypergraph {h:?}");
        }
    }

    #[test]
    fn singleton_transversal_is_a_single_leaf_tree() {
        // Vertex 1 hits both edges: the tree {ℓ₁} has no center.
        let h = Hypergraph::new(3, vec![vec![0, 1], vec![1, 2]]);
        let inst = StarInstance::new(&h);
        let trees = star_group_steiner_via_transversals(&h);
        assert!(trees.contains(&GroupSteinerTree {
            vertices: vec![inst.leaf(1)],
            edges: vec![]
        }));
    }

    #[test]
    fn group_steiner_on_general_graph() {
        // Square with groups on opposite corners: minimal group Steiner
        // trees are single edges or vertices covering both groups.
        let g = UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let groups = vec![
            vec![VertexId(0), VertexId(2)],
            vec![VertexId(1), VertexId(3)],
        ];
        let sols = minimal_group_steiner_trees_brute(&g, &groups);
        // Every single edge covers one vertex of each group.
        assert_eq!(sols.len(), 4);
        assert!(sols.iter().all(|t| t.edges.len() == 1));
    }
}
